//! Semi-naive bottom-up evaluation with derivation tracking.
//!
//! Computes the least model of a positive Datalog program. Each derived
//! ground atom remembers one derivation (the rule and the body atoms used),
//! which the Cache Datalog scheduler ([`cache`](crate::cache)) turns into a
//! small-cache inference strategy (the paper's Lemma 4.6).

use crate::ast::{Atom, Const, GroundAtom, PredId, Program, Rule, Term};
use parra_obs::{Counter, Recorder};
use std::collections::{HashMap, HashSet, VecDeque};

/// The set of derived ground atoms, with one recorded derivation each.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Atom → its index in `atoms`.
    index: HashMap<GroundAtom, usize>,
    /// All derived atoms in derivation order.
    atoms: Vec<GroundAtom>,
    /// For each atom: the rule index and the database indices of the body
    /// atoms used to derive it first.
    derivations: Vec<(usize, Vec<usize>)>,
    /// Per-predicate index into `atoms` (join acceleration).
    by_pred: HashMap<PredId, Vec<usize>>,
}

impl Database {
    /// Whether `g` was derived.
    pub fn contains(&self, g: &GroundAtom) -> bool {
        self.index.contains_key(g)
    }

    /// Number of derived atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether nothing was derived.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The derived atoms in derivation order.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }

    /// The database index of `g`, if derived.
    pub fn index_of(&self, g: &GroundAtom) -> Option<usize> {
        self.index.get(g).copied()
    }

    /// The recorded derivation of the atom at `idx`: the rule index and the
    /// indices of the body atoms used.
    pub fn derivation(&self, idx: usize) -> (usize, &[usize]) {
        let (r, ref body) = self.derivations[idx];
        (r, body)
    }

    /// All atoms of a predicate.
    pub fn of_pred(&self, p: PredId) -> impl Iterator<Item = &GroundAtom> {
        self.atoms.iter().filter(move |a| a.pred == p)
    }

    fn insert(&mut self, g: GroundAtom, rule: usize, body: Vec<usize>) -> Option<usize> {
        if self.index.contains_key(&g) {
            return None;
        }
        let idx = self.atoms.len();
        self.index.insert(g.clone(), idx);
        self.by_pred.entry(g.pred).or_default().push(idx);
        self.atoms.push(g);
        self.derivations.push((rule, body));
        Some(idx)
    }
}

/// A variable substitution during rule matching.
type Subst = HashMap<u32, Const>;

/// The evaluator's hot-loop counters, passed by reference through the
/// join recursion (near-no-ops when the recorder is disabled).
struct JoinCounters<'a> {
    fired: &'a Counter,
    joins: &'a Counter,
}

fn match_atom(pattern: &Atom, ground: &GroundAtom, subst: &mut Subst) -> bool {
    if pattern.pred != ground.pred || pattern.terms.len() != ground.args.len() {
        return false;
    }
    let mut added: Vec<u32> = Vec::new();
    for (t, c) in pattern.terms.iter().zip(&ground.args) {
        let ok = match t {
            Term::Const(k) => k == c,
            Term::Var(v) => match subst.get(v) {
                Some(bound) => bound == c,
                None => {
                    subst.insert(*v, *c);
                    added.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in added {
                subst.remove(&v);
            }
            return false;
        }
    }
    true
}

fn instantiate(head: &Atom, subst: &Subst) -> GroundAtom {
    GroundAtom {
        pred: head.pred,
        args: head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *subst.get(v).expect("safe rule: head var bound"),
            })
            .collect(),
    }
}

/// Bottom-up evaluator.
///
/// # Example
///
/// ```
/// use parra_datalog::eval::Evaluator;
/// use parra_datalog::parser::{parse_ground_atom, parse_program};
///
/// let mut prog = parse_program(
///     "edge(a, b). edge(b, c).
///      path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).",
/// )?;
/// let goal = parse_ground_atom(&mut prog, "path(a, c)")?;
/// assert!(Evaluator::new(&prog).query(&goal));
/// # Ok::<(), parra_datalog::parser::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
    rec: Recorder,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator for `program`.
    pub fn new(program: &'p Program) -> Evaluator<'p> {
        Evaluator {
            program,
            rec: Recorder::disabled(),
        }
    }

    /// The same evaluator reporting metrics through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Evaluator<'p> {
        self.rec = rec;
        self
    }

    /// Computes the least model, stopping early if `stop_at` is derived.
    pub fn run_until(&self, stop_at: Option<&GroundAtom>) -> Database {
        let db = self.run_until_inner(stop_at);
        // Per-predicate atom counts, keyed by predicate name so traces
        // across guesses aggregate.
        if self.rec.is_enabled() {
            let mut by_pred: HashMap<PredId, u64> = HashMap::new();
            for a in db.atoms() {
                *by_pred.entry(a.pred).or_default() += 1;
            }
            for (p, n) in by_pred {
                self.rec
                    .counter(&format!("atoms/{}", self.program.pred_name(p)))
                    .add(n);
            }
        }
        db
    }

    fn run_until_inner(&self, stop_at: Option<&GroundAtom>) -> Database {
        let c_rules_fired = self.rec.counter("rules_fired");
        let c_joins = self.rec.counter("join_attempts");
        let mut db = Database::default();
        let mut queue: VecDeque<usize> = VecDeque::new();

        // Facts.
        for (ri, rule) in self.program.rules().iter().enumerate() {
            if rule.is_fact() {
                let g = rule.head.to_ground();
                if let Some(idx) = db.insert(g, ri, Vec::new()) {
                    c_rules_fired.incr();
                    queue.push_back(idx);
                }
            }
        }
        if let Some(goal) = stop_at {
            if db.contains(goal) {
                return db;
            }
        }

        // Index rules by the predicates occurring in their bodies.
        let mut by_body_pred: HashMap<PredId, Vec<(usize, usize)>> = HashMap::new();
        for (ri, rule) in self.program.rules().iter().enumerate() {
            for (bi, atom) in rule.body.iter().enumerate() {
                by_body_pred.entry(atom.pred).or_default().push((ri, bi));
            }
        }

        // Semi-naive: each new atom is matched as the "delta" occurrence.
        while let Some(new_idx) = queue.pop_front() {
            let new_atom = db.atoms[new_idx].clone();
            let Some(uses) = by_body_pred.get(&new_atom.pred) else {
                continue;
            };
            for &(ri, bi) in uses.clone().iter() {
                let rule = &self.program.rules()[ri];
                let mut subst = Subst::new();
                c_joins.incr();
                if !match_atom(&rule.body[bi], &new_atom, &mut subst) {
                    continue;
                }
                let mut used = vec![0usize; rule.body.len()];
                used[bi] = new_idx;
                let ctx = JoinCounters {
                    fired: &c_rules_fired,
                    joins: &c_joins,
                };
                if self.join_rest(
                    rule, ri, bi, 0, &mut subst, &mut used, &mut db, &mut queue, stop_at, &ctx,
                ) && stop_at.is_some()
                {
                    return db;
                }
            }
            if let Some(goal) = stop_at {
                if db.contains(goal) {
                    return db;
                }
            }
        }
        db
    }

    /// Computes the full least model.
    pub fn run(&self) -> Database {
        self.run_until(None)
    }

    /// `Prog ⊢ g`: query evaluation with early exit.
    pub fn query(&self, goal: &GroundAtom) -> bool {
        self.run_until(Some(goal)).contains(goal)
    }

    /// Joins the remaining body atoms (all but `skip`) against the
    /// database; returns true if the goal was derived.
    #[allow(clippy::too_many_arguments)]
    fn join_rest(
        &self,
        rule: &Rule,
        ri: usize,
        skip: usize,
        from: usize,
        subst: &mut Subst,
        used: &mut Vec<usize>,
        db: &mut Database,
        queue: &mut VecDeque<usize>,
        stop_at: Option<&GroundAtom>,
        counters: &JoinCounters<'_>,
    ) -> bool {
        // Find the next body index to solve.
        let mut next = from;
        if next == skip {
            next += 1;
        }
        if next >= rule.body.len() {
            let g = instantiate(&rule.head, subst);
            let hit = stop_at.map(|s| *s == g).unwrap_or(false);
            if let Some(idx) = db.insert(g, ri, used.clone()) {
                counters.fired.incr();
                queue.push_back(idx);
            }
            return hit;
        }
        let pattern = &rule.body[next];
        // Snapshot of the per-predicate candidates: atoms added during
        // this join are matched later via their own delta turn.
        let candidates: Vec<usize> = db.by_pred.get(&pattern.pred).cloned().unwrap_or_default();
        for idx in candidates {
            let ground = db.atoms[idx].clone();
            let before: Vec<(u32, Option<Const>)> = pattern
                .variables()
                .into_iter()
                .map(|v| (v, subst.get(&v).copied()))
                .collect();
            counters.joins.incr();
            if match_atom(pattern, &ground, subst) {
                used[next] = idx;
                if self.join_rest(
                    rule,
                    ri,
                    skip,
                    next + 1,
                    subst,
                    used,
                    db,
                    queue,
                    stop_at,
                    counters,
                ) {
                    return true;
                }
            }
            // Restore bindings introduced by this match.
            for (v, old) in before {
                match old {
                    Some(c) => {
                        subst.insert(v, c);
                    }
                    None => {
                        subst.remove(&v);
                    }
                }
            }
        }
        false
    }
}

/// The set of ground atoms needed for `goal`'s recorded derivation — the
/// derivation DAG unwound from the goal.
pub fn derivation_cone(db: &Database, goal: &GroundAtom) -> Option<HashSet<usize>> {
    let root = db.index_of(goal)?;
    let mut cone = HashSet::new();
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if cone.insert(i) {
            let (_, body) = db.derivation(i);
            stack.extend(body.iter().copied());
        }
    }
    Some(cone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;

    /// Transitive closure over a path a → b → c → d.
    fn tc_program() -> (Program, PredId, Vec<Const>) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2);
        let path = p.predicate("path", 2);
        let names = ["a", "b", "c", "d"];
        let consts: Vec<Const> = names.iter().map(|n| p.constant(n)).collect();
        for w in consts.windows(2) {
            p.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
            ],
        )
        .unwrap();
        (p, path, consts)
    }

    #[test]
    fn transitive_closure() {
        let (p, path, c) = tc_program();
        let db = Evaluator::new(&p).run();
        // paths: all i < j pairs: 6.
        let n_paths = db.of_pred(path).count();
        assert_eq!(n_paths, 6);
        assert!(db.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
        assert!(!db.contains(&GroundAtom::new(path, vec![c[3], c[0]])));
    }

    #[test]
    fn query_early_exit() {
        let (p, path, c) = tc_program();
        let goal = GroundAtom::new(path, vec![c[0], c[1]]);
        assert!(Evaluator::new(&p).query(&goal));
        let bad = GroundAtom::new(path, vec![c[1], c[0]]);
        assert!(!Evaluator::new(&p).query(&bad));
    }

    #[test]
    fn derivations_are_recorded() {
        let (p, path, c) = tc_program();
        let db = Evaluator::new(&p).run();
        let goal = GroundAtom::new(path, vec![c[0], c[3]]);
        let idx = db.index_of(&goal).unwrap();
        let (_rule, body) = db.derivation(idx);
        assert!(!body.is_empty());
        // The derivation cone contains the goal, a path prefix, and edges.
        let cone = derivation_cone(&db, &goal).unwrap();
        assert!(cone.len() >= 4);
    }

    #[test]
    fn facts_have_empty_derivations() {
        let (p, _path, _c) = tc_program();
        let db = Evaluator::new(&p).run();
        let (_, body) = db.derivation(0);
        assert!(body.is_empty());
    }

    /// Rule bodies with repeated variables filter correctly.
    #[test]
    fn repeated_variables_in_body() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let loopy = p.predicate("loopy", 1);
        let a = p.constant("a");
        let b = p.constant("b");
        p.fact(e, vec![a, a]).unwrap();
        p.fact(e, vec![a, b]).unwrap();
        p.rule(
            Atom::new(loopy, vec![Term::Var(0)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(0)])],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert!(db.contains(&GroundAtom::new(loopy, vec![a])));
        assert!(!db.contains(&GroundAtom::new(loopy, vec![b])));
    }

    /// Three-atom bodies join correctly.
    #[test]
    fn triple_join() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let tri = p.predicate("tri", 3);
        let a = p.constant("a");
        let b = p.constant("b");
        let c = p.constant("c");
        p.fact(e, vec![a, b]).unwrap();
        p.fact(e, vec![b, c]).unwrap();
        p.fact(e, vec![c, a]).unwrap();
        p.rule(
            Atom::new(tri, vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
            vec![
                Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                Atom::new(e, vec![Term::Var(2), Term::Var(0)]),
            ],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert_eq!(db.of_pred(tri).count(), 3); // three rotations
    }

    /// Constants in rule bodies restrict matches.
    #[test]
    fn constants_in_body() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let from_a = p.predicate("from_a", 1);
        let a = p.constant("a");
        let b = p.constant("b");
        let c = p.constant("c");
        p.fact(e, vec![a, b]).unwrap();
        p.fact(e, vec![b, c]).unwrap();
        p.rule(
            Atom::new(from_a, vec![Term::Var(0)]),
            vec![Atom::new(e, vec![Term::Const(a), Term::Var(0)])],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert!(db.contains(&GroundAtom::new(from_a, vec![b])));
        assert!(!db.contains(&GroundAtom::new(from_a, vec![c])));
    }
}
