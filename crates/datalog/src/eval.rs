//! Indexed semi-naive bottom-up evaluation over an interned tuple arena.
//!
//! Computes the least model of a positive Datalog program. The evaluation
//! substrate is built for speed:
//!
//! * **Tuple arena** ([`arena::TupleStore`](crate::arena::TupleStore)) —
//!   every derived ground tuple is interned once and handled by a `Copy`
//!   [`AtomId`]; no `GroundAtom` is cloned on the insert path.
//! * **Column-keyed join indices** — each rule body is solved following a
//!   static [`Plan`](crate::plan::Plan); partially bound probes go through
//!   a hash index keyed on the bound columns, built lazily per
//!   (predicate, bound-column-set) and caught up incrementally from the
//!   semi-naive deltas at the start of every round.
//! * **Optional provenance** — derivation recording is a mode flag
//!   ([`Evaluator::with_provenance`]); witness extraction
//!   ([`cache::schedule_from_database`](crate::cache::schedule_from_database))
//!   needs it, plain queries do not pay for it.
//! * **Parallel delta batches** — each round's delta is expanded by
//!   `parra-search`'s [`ordered_map`] and merged sequentially in delta
//!   order, so the resulting database (and every statistic derived from
//!   it) is byte-identical for every thread count
//!   ([`Evaluator::with_threads`]).
//!
//! The pre-rewrite engine survives as [`naive`](crate::naive) and pins
//! this one differentially (the `eval-agree` fuzz oracle).

use crate::arena::{hash_key, AtomId, TupleStore};
use crate::ast::{Const, GroundAtom, PredId, Program, Rule, Term};
use crate::plan::{DeltaPlan, Plan, NO_SLOT};
use parra_limits::{InterruptReason, ResourceBudget};
use parra_obs::{Counter, Phase, PhaseTimer, Recorder};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Hasher for keys that are already well-mixed 64-bit hashes (the FNV
/// digests produced by [`hash_key`]): a single multiply-xor finisher
/// instead of SipHash. Probes are the evaluator's innermost loop.
#[derive(Default)]
pub struct PrehashedU64(u64);

impl Hasher for PrehashedU64 {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PrehashedU64 only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // splitmix64-style finisher: cheap, and spreads FNV's
        // low-entropy high bits into the low bits HashMap uses.
        let mut z = n.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        self.0 = z;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedU64>>;

/// A hash index over one predicate keyed by a set of bound columns.
/// Indices exist one per plan *slot* (see [`Plan::indices`]) and are
/// addressed by slot id — no hash lookup decides which index a probe
/// uses.
#[derive(Debug, Clone)]
struct ColumnIndex {
    /// The indexed predicate.
    pred: PredId,
    /// The key columns, ascending.
    cols: Vec<u8>,
    /// Key hash → matching tuples, in insertion order. Hash collisions are
    /// harmless: every candidate is re-verified against the pattern.
    map: PrehashedMap<Vec<AtomId>>,
    /// How many tuples of the predicate have been indexed (prefix of the
    /// per-predicate list); the catch-up cursor.
    upto: usize,
}

/// The set of derived ground atoms: an interned arena, per-predicate
/// lists, lazily built join indices, and (optionally) one recorded
/// derivation per atom.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The tuple arena. [`AtomId`]s double as derivation-order indices.
    store: TupleStore,
    /// Tuples of each predicate in derivation order.
    per_pred: Vec<Vec<AtomId>>,
    /// For each atom, the rule index and the database indices of the body
    /// atoms used to derive it first. `None` when evaluation ran without
    /// provenance.
    derivations: Option<Vec<(usize, Vec<usize>)>>,
    /// Join indices in plan-slot order (see [`Plan::indices`]).
    indices: Vec<ColumnIndex>,
    /// Set when the resource governor stopped evaluation before the least
    /// model (or the goal) was reached; the database is a sound but
    /// possibly incomplete under-approximation.
    interrupted: Option<InterruptReason>,
}

impl Database {
    fn new(n_preds: usize, provenance: bool, plan: &Plan) -> Database {
        Database {
            store: TupleStore::new(),
            per_pred: vec![Vec::new(); n_preds],
            derivations: provenance.then(Vec::new),
            indices: plan
                .indices()
                .iter()
                .map(|spec| ColumnIndex {
                    pred: spec.pred,
                    cols: spec.cols.clone(),
                    map: PrehashedMap::default(),
                    upto: 0,
                })
                .collect(),
            interrupted: None,
        }
    }

    /// Why the governor stopped evaluation early, if it did. A `Some`
    /// database may be missing derivable atoms: "goal not derived" is then
    /// inconclusive, not a refutation.
    pub fn interrupted(&self) -> Option<InterruptReason> {
        self.interrupted
    }

    /// Whether `g` was derived.
    pub fn contains(&self, g: &GroundAtom) -> bool {
        self.store.lookup(g.pred, &g.args).is_some()
    }

    /// Number of derived atoms.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing was derived.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The database index of `g`, if derived. Indices are derivation
    /// order: index `i` is the `i`-th derived atom.
    pub fn index_of(&self, g: &GroundAtom) -> Option<usize> {
        self.store.lookup(g.pred, &g.args).map(AtomId::index)
    }

    /// Materializes the atom at `idx` (cold paths: witnesses, display).
    pub fn ground(&self, idx: usize) -> GroundAtom {
        self.store.ground(AtomId(idx as u32))
    }

    /// The predicate of the atom at `idx`.
    pub fn pred_of(&self, idx: usize) -> PredId {
        self.store.pred(AtomId(idx as u32))
    }

    /// All derived atoms in derivation order, materialized.
    pub fn iter(&self) -> impl Iterator<Item = GroundAtom> + '_ {
        (0..self.len()).map(|i| self.ground(i))
    }

    /// The atoms of a predicate, in derivation order.
    pub fn of_pred(&self, p: PredId) -> impl Iterator<Item = AtomId> + '_ {
        self.per_pred
            .get(p.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Whether derivations were recorded (see
    /// [`Evaluator::with_provenance`]).
    pub fn has_provenance(&self) -> bool {
        self.derivations.is_some()
    }

    /// The recorded derivation of the atom at `idx`: the rule index and
    /// the database indices of the body atoms used.
    ///
    /// # Panics
    ///
    /// Panics if evaluation ran without provenance.
    pub fn derivation(&self, idx: usize) -> (usize, &[usize]) {
        let derivations = self
            .derivations
            .as_ref()
            .expect("derivations requested from a provenance-free evaluation");
        let (r, ref body) = derivations[idx];
        (r, body)
    }

    /// The underlying tuple arena.
    pub fn arena(&self) -> &TupleStore {
        &self.store
    }

    fn insert(
        &mut self,
        pred: PredId,
        args: &[Const],
        rule: usize,
        body: Vec<usize>,
    ) -> Option<AtomId> {
        let (id, fresh) = self.store.intern(pred, args);
        if !fresh {
            return None;
        }
        self.per_pred[pred.0 as usize].push(id);
        if let Some(d) = self.derivations.as_mut() {
            d.push((rule, body));
        }
        Some(id)
    }

    /// Catches every index up with its predicate's tuple list; returns the
    /// number of indices materialized for the first time (they saw their
    /// first tuples).
    fn catch_up_indices(&mut self) -> u64 {
        let store = &self.store;
        let mut built = 0u64;
        let mut key: Vec<Const> = Vec::new();
        for ix in &mut self.indices {
            let list = &self.per_pred[ix.pred.0 as usize];
            if ix.upto == list.len() {
                continue;
            }
            if ix.upto == 0 {
                built += 1;
            }
            for &id in &list[ix.upto..] {
                key.clear();
                let args = store.args(id);
                for &c in &ix.cols {
                    key.push(args[c as usize]);
                }
                ix.map.entry(hash_key(&key)).or_default().push(id);
            }
            ix.upto = list.len();
        }
        built
    }

    /// The candidates of an index probe (empty if the key has no tuples).
    #[inline]
    fn probe(&self, slot: u32, key_hash: u64) -> &[AtomId] {
        self.indices[slot as usize]
            .map
            .get(&key_hash)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// A head tuple produced by a worker, merged sequentially.
struct Derived {
    rule: usize,
    pred: PredId,
    args: Vec<Const>,
    /// Body atom indices in body order (empty when provenance is off).
    body: Vec<usize>,
}

/// The evaluator's hot-loop counters (near-no-ops when the recorder is
/// disabled).
struct Counters {
    fired: Counter,
    joins: Counter,
    index_builds: Counter,
    index_hits: Counter,
}

/// Per-worker scratch for one delta item's rule firings. Kept in a
/// thread-local so the `makeP` fleet (thousands of delta items across
/// many small programs) allocates it once per worker thread, not once
/// per delta item.
#[derive(Default)]
struct JoinScratch {
    /// Variable bindings, indexed by variable id.
    subst: Vec<Option<Const>>,
    /// Bound-variable trail for backtracking.
    trail: Vec<u32>,
    /// The body atom (database index) matched at each body position.
    used: Vec<usize>,
    /// Instantiation buffer for keys, membership tests, and heads.
    buf: Vec<Const>,
}

thread_local! {
    /// The trail fully unwinds after every use, so `subst` is all-`None`
    /// between delta items and the scratch can be shared across programs
    /// (growing `subst` as larger plans come along).
    static SCRATCH: std::cell::RefCell<JoinScratch> =
        std::cell::RefCell::new(JoinScratch::default());
}

/// Bottom-up evaluator.
///
/// # Example
///
/// ```
/// use parra_datalog::eval::Evaluator;
/// use parra_datalog::parser::{parse_ground_atom, parse_program};
///
/// let mut prog = parse_program(
///     "edge(a, b). edge(b, c).
///      path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).",
/// )?;
/// let goal = parse_ground_atom(&mut prog, "path(a, c)")?;
/// assert!(Evaluator::new(&prog).query(&goal));
/// # Ok::<(), parra_datalog::parser::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
    plan: Arc<Plan>,
    rec: Recorder,
    events: bool,
    provenance: bool,
    threads: usize,
    gov: ResourceBudget,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator for `program`. The join plan is computed here,
    /// once; provenance is off and evaluation is sequential by default.
    pub fn new(program: &'p Program) -> Evaluator<'p> {
        Evaluator::with_plan(program, Arc::new(Plan::new(program)))
    }

    /// Creates an evaluator reusing a precomputed plan — typically from a
    /// [`PlanCache`](crate::plan::PlanCache), which shares one plan across
    /// a whole guess fleet.
    ///
    /// `plan` must have been computed for a program with an identical rule
    /// list (the cache guarantees this); plans reference rules by index
    /// and body positions, so a mismatched plan derives wrong models.
    pub fn with_plan(program: &'p Program, plan: Arc<Plan>) -> Evaluator<'p> {
        Evaluator {
            program,
            plan,
            rec: Recorder::disabled(),
            events: false,
            provenance: false,
            threads: 1,
            gov: ResourceBudget::unlimited(),
        }
    }

    /// The same evaluator reporting metrics through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Evaluator<'p> {
        self.rec = rec;
        self
    }

    /// Turns per-round flight-recorder events on (off by default).
    ///
    /// Callers must only enable this for evaluations whose schedule is
    /// deterministic across thread counts — e.g. a single-guess run, or
    /// the sequential reference evaluator. A multi-guess fleet races its
    /// workers, so the set of evaluated guesses (and hence their rounds)
    /// is thread-count-dependent and would break the event-log contract.
    pub fn with_events(mut self, on: bool) -> Evaluator<'p> {
        self.events = on;
        self
    }

    /// Turns derivation recording on or off (off by default). Witness and
    /// cache-schedule extraction need it; queries run faster without.
    pub fn with_provenance(mut self, on: bool) -> Evaluator<'p> {
        self.provenance = on;
        self
    }

    /// Expands each semi-naive round's delta with `threads` workers. The
    /// database is identical for every value: workers only produce
    /// candidate tuples, and a sequential merge walking the delta in order
    /// makes every insertion decision. `1` (the default) never spawns.
    pub fn with_threads(mut self, threads: usize) -> Evaluator<'p> {
        self.threads = threads.max(1);
        self
    }

    /// The same evaluator governed by `gov`, checked once per semi-naive
    /// round. An exhausted budget stops evaluation at the round boundary
    /// and marks the returned database [`Database::interrupted`]; a run
    /// that completes is identical to an ungoverned run.
    pub fn with_governor(mut self, gov: ResourceBudget) -> Evaluator<'p> {
        self.gov = gov;
        self
    }

    /// Computes the least model, stopping early if `stop_at` is derived.
    pub fn run_until(&self, stop_at: Option<&GroundAtom>) -> Database {
        let _span = self.rec.span_debug("eval.run");
        let db = self.run_until_inner(stop_at);
        if self.rec.is_enabled() {
            // Per-predicate atom counts, keyed by predicate name so traces
            // across guesses aggregate.
            for p in self.program.predicates() {
                let n = db.of_pred(p).count() as u64;
                if n > 0 {
                    self.rec
                        .counter(&format!("atoms/{}", self.program.pred_name(p)))
                        .add(n);
                }
            }
            self.rec.gauge("arena_atoms").set(db.store.len() as u64);
            self.rec
                .gauge("arena_bytes")
                .set(db.store.heap_bytes() as u64);
        }
        db
    }

    fn run_until_inner(&self, stop_at: Option<&GroundAtom>) -> Database {
        let counters = Counters {
            fired: self.rec.counter("rules_fired"),
            joins: self.rec.counter("join_attempts"),
            index_builds: self.rec.counter("index_builds"),
            index_hits: self.rec.counter("index_hits"),
        };
        let n_preds = self.program.predicates().count();
        let mut db = Database::new(n_preds, self.provenance, &self.plan);

        // Facts are the first delta.
        let mut delta: Vec<AtomId> = Vec::new();
        for (ri, rule) in self.program.rules().iter().enumerate() {
            if rule.is_fact() {
                let g = rule.head.to_ground();
                if let Some(id) = db.insert(g.pred, &g.args, ri, Vec::new()) {
                    counters.fired.incr();
                    delta.push(id);
                }
            }
        }
        if let Some(goal) = stop_at {
            if db.contains(goal) {
                return db;
            }
        }

        // Round-based semi-naive: expand the delta (in parallel), merge the
        // candidate tuples sequentially in delta order. Indices catch up
        // with the previous round's insertions first, so the workers only
        // ever read them. The (body predicate → rule occurrence) table
        // driving the expansion lives in the plan ([`Plan::uses`]).
        let phases = PhaseTimer::new(&self.rec);
        let mut round: u64 = 0;
        while !delta.is_empty() {
            if let Err(reason) = self.gov.check() {
                self.rec
                    .counter(&format!("eval_interrupted_{}", reason.as_str()))
                    .incr();
                db.interrupted = Some(reason);
                return db;
            }
            let t0 = phases.is_enabled().then(Instant::now);
            counters.index_builds.add(db.catch_up_indices());
            if let Some(t0) = t0 {
                phases.add_us(Phase::IndexBuild, t0.elapsed().as_micros() as u64);
            }
            let t0 = phases.is_enabled().then(Instant::now);
            let batches: Vec<Vec<Derived>> =
                parra_search::ordered_map(self.threads.min(delta.len()), &delta, |_w, _i, &d| {
                    self.derive_from(&db, d, &counters)
                });
            let mut next_delta = Vec::new();
            let mut goal_hit = false;
            for derived in batches.into_iter().flatten() {
                let hit = stop_at
                    .map(|g| g.pred == derived.pred && g.args[..] == derived.args[..])
                    .unwrap_or(false);
                if let Some(id) = db.insert(derived.pred, &derived.args, derived.rule, derived.body)
                {
                    counters.fired.incr();
                    next_delta.push(id);
                    if hit {
                        goal_hit = true;
                        break;
                    }
                }
            }
            if let Some(t0) = t0 {
                phases.add_us(Phase::Fixpoint, t0.elapsed().as_micros() as u64);
            }
            if self.events && self.rec.is_enabled() {
                self.rec.event_with(
                    "round",
                    &[
                        ("round", round.into()),
                        ("delta", delta.len().into()),
                        ("derived", next_delta.len().into()),
                        ("atoms", db.store.len().into()),
                    ],
                    &self.gov.headroom().volatile_fields(),
                );
            }
            if goal_hit {
                return db;
            }
            round += 1;
            delta = next_delta;
        }
        db
    }

    /// Computes the full least model.
    pub fn run(&self) -> Database {
        self.run_until(None)
    }

    /// `Prog ⊢ g`: query evaluation with early exit.
    pub fn query(&self, goal: &GroundAtom) -> bool {
        self.run_until(Some(goal)).contains(goal)
    }

    /// All rule firings in which the delta atom `d` participates (at every
    /// body position of its predicate). Read-only over `db`.
    fn derive_from(&self, db: &Database, d: AtomId, counters: &Counters) -> Vec<Derived> {
        let pred = db.store.pred(d);
        let uses = self.plan.uses(pred);
        let mut out = Vec::new();
        if uses.is_empty() {
            return out;
        }
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            // The trail fully unwinds between uses, so `subst` only ever
            // needs growing, never clearing.
            if scratch.subst.len() < self.plan.max_vars() {
                scratch.subst.resize(self.plan.max_vars(), None);
            }
            'uses: for &(ri, bi) in uses {
                let (ri, bi) = (ri as usize, bi as usize);
                let rule = &self.program.rules()[ri];
                let plans = self.plan.rule(ri);
                // A rule with an empty body relation cannot fire: skip it
                // before any matching work.
                for p in &plans.body_preds {
                    if db.per_pred[p.0 as usize].is_empty() {
                        continue 'uses;
                    }
                }
                scratch.used.clear();
                scratch.used.resize(rule.body.len(), 0);
                counters.joins.incr();
                if self.match_pattern(db, &rule.body[bi], d, scratch) {
                    scratch.used[bi] = d.index();
                    let body = self.plan.body_plan(plans.body_plan);
                    let dp = &body.per_delta[bi];
                    let slots = &plans.slots[body.slot_offset(bi)..][..dp.steps.len()];
                    self.join_steps(db, rule, ri, dp, slots, 0, scratch, &mut out, counters);
                }
                unwind(scratch, 0);
            }
        });
        out
    }

    /// Matches `pattern` against the stored tuple `id`, extending the
    /// substitution (bindings land on the trail).
    fn match_pattern(
        &self,
        db: &Database,
        pattern: &crate::ast::Atom,
        id: AtomId,
        scratch: &mut JoinScratch,
    ) -> bool {
        if db.store.pred(id) != pattern.pred {
            return false;
        }
        let args = db.store.args(id);
        let mark = scratch.trail.len();
        for (t, c) in pattern.terms.iter().zip(args) {
            let ok = match t {
                Term::Const(k) => k == c,
                Term::Var(v) => match scratch.subst[*v as usize] {
                    Some(bound) => bound == *c,
                    None => {
                        scratch.subst[*v as usize] = Some(*c);
                        scratch.trail.push(*v);
                        true
                    }
                },
            };
            if !ok {
                unwind(scratch, mark);
                return false;
            }
        }
        true
    }

    /// Solves plan steps `si..`, emitting a head tuple per full match.
    #[allow(clippy::too_many_arguments)]
    fn join_steps(
        &self,
        db: &Database,
        rule: &Rule,
        ri: usize,
        dp: &DeltaPlan,
        slots: &[u32],
        si: usize,
        scratch: &mut JoinScratch,
        out: &mut Vec<Derived>,
        counters: &Counters,
    ) {
        if si == dp.steps.len() {
            scratch.buf.clear();
            for t in &rule.head.terms {
                scratch.buf.push(match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => scratch.subst[*v as usize].expect("safe rule: head var bound"),
                });
            }
            out.push(Derived {
                rule: ri,
                pred: rule.head.pred,
                args: scratch.buf.clone(),
                body: if self.provenance {
                    scratch.used.clone()
                } else {
                    Vec::new()
                },
            });
            return;
        }
        let step = &dp.steps[si];
        let pattern = &rule.body[step.pos];
        if step.fully_bound {
            // Membership test on the arena.
            scratch.buf.clear();
            for t in &pattern.terms {
                scratch.buf.push(match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => scratch.subst[*v as usize].expect("planner: bound"),
                });
            }
            counters.joins.incr();
            if let Some(id) = db.store.lookup(pattern.pred, &scratch.buf) {
                scratch.used[step.pos] = id.index();
                self.join_steps(db, rule, ri, dp, slots, si + 1, scratch, out, counters);
            }
            return;
        }
        // Candidate enumeration: an index probe on the bound columns when
        // possible, otherwise the full per-predicate list.
        let slot = slots[si];
        let candidates: &[AtomId] = if slot != NO_SLOT {
            scratch.buf.clear();
            for &c in &step.cols {
                scratch.buf.push(match &pattern.terms[c as usize] {
                    Term::Const(k) => *k,
                    Term::Var(v) => scratch.subst[*v as usize].expect("planner: bound col"),
                });
            }
            counters.index_hits.incr();
            db.probe(slot, hash_key(&scratch.buf))
        } else {
            &db.per_pred[pattern.pred.0 as usize]
        };
        for &id in candidates {
            counters.joins.incr();
            let mark = scratch.trail.len();
            if self.match_pattern(db, pattern, id, scratch) {
                scratch.used[step.pos] = id.index();
                self.join_steps(db, rule, ri, dp, slots, si + 1, scratch, out, counters);
                unwind(scratch, mark);
            }
        }
    }
}

/// Pops trail entries down to `mark`, unbinding their variables.
fn unwind(scratch: &mut JoinScratch, mark: usize) {
    while scratch.trail.len() > mark {
        let v = scratch.trail.pop().expect("trail len checked");
        scratch.subst[v as usize] = None;
    }
}

/// The set of ground atoms needed for `goal`'s recorded derivation — the
/// derivation DAG unwound from the goal. `None` if the goal was not
/// derived or the database has no provenance.
pub fn derivation_cone(db: &Database, goal: &GroundAtom) -> Option<HashSet<usize>> {
    if !db.has_provenance() {
        return None;
    }
    let root = db.index_of(goal)?;
    let mut cone = HashSet::new();
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if cone.insert(i) {
            let (_, body) = db.derivation(i);
            stack.extend(body.iter().copied());
        }
    }
    Some(cone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Term};
    use crate::naive::NaiveEvaluator;

    /// Transitive closure over a path a → b → c → d.
    fn tc_program() -> (Program, PredId, Vec<Const>) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2);
        let path = p.predicate("path", 2);
        let names = ["a", "b", "c", "d"];
        let consts: Vec<Const> = names.iter().map(|n| p.constant(n)).collect();
        for w in consts.windows(2) {
            p.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
            ],
        )
        .unwrap();
        (p, path, consts)
    }

    #[test]
    fn transitive_closure() {
        let (p, path, c) = tc_program();
        let db = Evaluator::new(&p).run();
        // paths: all i < j pairs: 6.
        assert_eq!(db.of_pred(path).count(), 6);
        assert!(db.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
        assert!(!db.contains(&GroundAtom::new(path, vec![c[3], c[0]])));
    }

    #[test]
    fn query_early_exit() {
        let (p, path, c) = tc_program();
        let goal = GroundAtom::new(path, vec![c[0], c[1]]);
        assert!(Evaluator::new(&p).query(&goal));
        let bad = GroundAtom::new(path, vec![c[1], c[0]]);
        assert!(!Evaluator::new(&p).query(&bad));
    }

    #[test]
    fn exhausted_deadline_interrupts_before_fixpoint() {
        let (p, path, c) = tc_program();
        let gov = ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let db = Evaluator::new(&p).with_governor(gov).run();
        assert_eq!(db.interrupted(), Some(InterruptReason::Deadline));
        // Only facts made it in before the first (checked) round.
        assert!(!db.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
    }

    #[test]
    fn generous_budget_reaches_same_fixpoint() {
        let (p, path, c) = tc_program();
        let base = Evaluator::new(&p).run();
        for threads in [1, 4] {
            let gov =
                ResourceBudget::unlimited().with_deadline(std::time::Duration::from_secs(3600));
            let governed = Evaluator::new(&p)
                .with_threads(threads)
                .with_governor(gov)
                .run();
            assert_eq!(governed.interrupted(), None, "threads {threads}");
            assert_eq!(governed.len(), base.len(), "threads {threads}");
            assert!(governed.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
        }
    }

    #[test]
    fn derivations_recorded_when_provenance_on() {
        let (p, path, c) = tc_program();
        let db = Evaluator::new(&p).with_provenance(true).run();
        assert!(db.has_provenance());
        let goal = GroundAtom::new(path, vec![c[0], c[3]]);
        let idx = db.index_of(&goal).unwrap();
        let (_rule, body) = db.derivation(idx);
        assert!(!body.is_empty());
        let cone = derivation_cone(&db, &goal).unwrap();
        assert!(cone.len() >= 4);
        // Facts have empty derivations.
        let (_, fact_body) = db.derivation(0);
        assert!(fact_body.is_empty());
    }

    #[test]
    fn provenance_off_by_default() {
        let (p, path, c) = tc_program();
        let db = Evaluator::new(&p).run();
        assert!(!db.has_provenance());
        assert!(derivation_cone(&db, &GroundAtom::new(path, vec![c[0], c[3]])).is_none());
    }

    /// Rule bodies with repeated variables filter correctly.
    #[test]
    fn repeated_variables_in_body() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let loopy = p.predicate("loopy", 1);
        let a = p.constant("a");
        let b = p.constant("b");
        p.fact(e, vec![a, a]).unwrap();
        p.fact(e, vec![a, b]).unwrap();
        p.rule(
            Atom::new(loopy, vec![Term::Var(0)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(0)])],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert!(db.contains(&GroundAtom::new(loopy, vec![a])));
        assert!(!db.contains(&GroundAtom::new(loopy, vec![b])));
    }

    /// Three-atom bodies join correctly.
    #[test]
    fn triple_join() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let tri = p.predicate("tri", 3);
        let a = p.constant("a");
        let b = p.constant("b");
        let c = p.constant("c");
        p.fact(e, vec![a, b]).unwrap();
        p.fact(e, vec![b, c]).unwrap();
        p.fact(e, vec![c, a]).unwrap();
        p.rule(
            Atom::new(tri, vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
            vec![
                Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                Atom::new(e, vec![Term::Var(2), Term::Var(0)]),
            ],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert_eq!(db.of_pred(tri).count(), 3); // three rotations
    }

    /// Constants in rule bodies restrict matches.
    #[test]
    fn constants_in_body() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let from_a = p.predicate("from_a", 1);
        let a = p.constant("a");
        let b = p.constant("b");
        let c = p.constant("c");
        p.fact(e, vec![a, b]).unwrap();
        p.fact(e, vec![b, c]).unwrap();
        p.rule(
            Atom::new(from_a, vec![Term::Var(0)]),
            vec![Atom::new(e, vec![Term::Const(a), Term::Var(0)])],
        )
        .unwrap();
        let db = Evaluator::new(&p).run();
        assert!(db.contains(&GroundAtom::new(from_a, vec![b])));
        assert!(!db.contains(&GroundAtom::new(from_a, vec![c])));
    }

    /// The database is byte-identical for every thread count.
    #[test]
    fn threads_do_not_change_the_database() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let path = p.predicate("path", 2);
        let n = 12u32;
        let consts: Vec<Const> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
        for i in 0..n as usize {
            for j in 0..n as usize {
                if (i + 2 * j) % 3 == 0 && i != j {
                    p.fact(e, vec![consts[i], consts[j]]).unwrap();
                }
            }
        }
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
            ],
        )
        .unwrap();
        let base = Evaluator::new(&p).with_provenance(true).run();
        let base_atoms: Vec<GroundAtom> = base.iter().collect();
        for threads in [2, 4, 7] {
            let db = Evaluator::new(&p)
                .with_provenance(true)
                .with_threads(threads)
                .run();
            assert_eq!(db.len(), base.len(), "threads={threads}");
            let atoms: Vec<GroundAtom> = db.iter().collect();
            assert_eq!(atoms, base_atoms, "threads={threads}");
            for i in 0..db.len() {
                assert_eq!(db.derivation(i), base.derivation(i), "threads={threads}");
            }
        }
    }

    /// The optimized engine agrees with the naive reference on a model
    /// large enough to exercise indices and multiple rounds.
    #[test]
    fn agrees_with_naive_reference() {
        let mut p = Program::new();
        let e = p.predicate("e", 2);
        let path = p.predicate("path", 2);
        let meet = p.predicate("meet", 2);
        let n = 9u32;
        let consts: Vec<Const> = (0..n).map(|i| p.constant(&format!("u{i}"))).collect();
        for i in 0..n as usize {
            let j = (i * 5 + 1) % n as usize;
            if i != j {
                p.fact(e, vec![consts[i], consts[j]]).unwrap();
            }
        }
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
            ],
        )
        .unwrap();
        p.rule(
            Atom::new(meet, vec![Term::Var(1), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            ],
        )
        .unwrap();
        let fast = Evaluator::new(&p).run();
        let slow = NaiveEvaluator::new(&p).run();
        assert_eq!(fast.len(), slow.len());
        for g in slow.atoms() {
            assert!(fast.contains(g), "missing {g:?}");
        }
    }

    /// Index metrics are emitted when a recorder is attached.
    #[test]
    fn index_counters_recorded() {
        let (p, path, c) = tc_program();
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let db = Evaluator::new(&p)
            .with_recorder(rec.clone())
            .run_until(Some(&GroundAtom::new(path, vec![c[0], c[3]])));
        assert!(!db.is_empty());
        let snap = rec.snapshot();
        let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert!(get("rules_fired") > 0);
        assert!(get("join_attempts") > 0);
        assert!(
            get("index_builds") > 0,
            "recursive rule must build an index"
        );
        assert!(get("index_hits") > 0);
        assert!(snap.gauges.contains_key("arena_atoms"));
    }
}
