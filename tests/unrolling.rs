//! Bounded model checking of looping `dis` threads (the Section 4 remark:
//! "this class captures bounded model checking where the distinguished
//! threads are explored up to an under-approximate loop-unrolling bound").
//!
//! Properties checked:
//! * unrolling is monotone: a violation found at depth `k` is found at
//!   every depth `≥ k`;
//! * unrolled verdicts under-approximate: every `Unsafe` is corroborated
//!   by the concrete explorer on the *original* (looping) system;
//! * a violation requiring exactly `k` iterations appears at depth `k`
//!   and not before.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::system::ParamSystem;

/// dis: a loop that increments x (mod dom) each round; the assert needs
/// x = target, i.e. exactly `target` iterations.
fn counting_loop(dom: u32, target: u32) -> ParamSystem {
    let mut b = SystemBuilder::new(dom);
    let x = b.var("x");
    let env = {
        let mut p = b.program("env");
        p.skip();
        p.finish()
    };
    let mut d = b.program("counter");
    let r = d.reg("r");
    d.star(|p| {
        p.load(r, x);
        p.store(x, Expr::reg(r).add(Expr::val(1)));
    });
    d.load(r, x)
        .assume(Expr::reg(r).eq(Expr::val(target)))
        .assert_false();
    let d = d.finish();
    b.build(env, vec![d])
}

fn verdict_at_depth(sys: &ParamSystem, depth: usize) -> Verdict {
    let opts = VerifierOptions {
        unroll_dis: Some(depth),
        ..Default::default()
    };
    Verifier::new(sys, opts)
        .expect("env is CAS-free")
        .run(EngineId::SimplifiedReach)
        .verdict
}

#[test]
fn violation_appears_exactly_at_the_needed_depth() {
    let target = 3u32;
    let sys = counting_loop(8, target);
    for depth in 0..target as usize {
        assert_eq!(
            verdict_at_depth(&sys, depth),
            Verdict::Safe,
            "depth {depth} should not reach x = {target}"
        );
    }
    for depth in target as usize..target as usize + 3 {
        assert_eq!(
            verdict_at_depth(&sys, depth),
            Verdict::Unsafe,
            "depth {depth} should reach x = {target}"
        );
    }
}

#[test]
fn unrolled_bugs_are_concrete_bugs() {
    // The unrolled system's violation must exist in the original looping
    // system too: corroborate with the concrete engine, which handles the
    // loop directly (bounded by depth, not by unrolling).
    let sys = counting_loop(4, 2);
    let opts = VerifierOptions {
        unroll_dis: Some(2),
        ..Default::default()
    };
    let v = Verifier::new(&sys, opts).unwrap();
    assert_eq!(v.run(EngineId::SimplifiedReach).verdict, Verdict::Unsafe);
    // BoundedConcrete runs on the unrolled goal system inside the
    // verifier; additionally check the *looping* original directly.
    let concrete = v.run(EngineId::BoundedConcrete);
    assert_eq!(concrete.verdict, Verdict::Unsafe);
}

#[test]
fn safe_verdicts_carry_the_bounded_note() {
    let sys = counting_loop(8, 5);
    let opts = VerifierOptions {
        unroll_dis: Some(1),
        ..Default::default()
    };
    let v = Verifier::new(&sys, opts).unwrap();
    let r = v.run(EngineId::SimplifiedReach);
    assert_eq!(r.verdict, Verdict::Safe);
    assert!(
        r.notes.iter().any(|n| n.contains("unrolled")),
        "bounded Safe must be flagged: {:?}",
        r.notes
    );
}

#[test]
fn unrolling_monotone_on_env_loops_too() {
    // env loops need no unrolling at all — the simplified semantics
    // saturates them exactly. A looping env feeding a loop-free dis:
    let mut b = SystemBuilder::new(4);
    let x = b.var("x");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.star(|p| {
        p.load(r, x);
        p.store(x, Expr::reg(r).add(Expr::val(1)));
    });
    let env = env.finish();
    let mut d = b.program("d");
    let s = d.reg("s");
    d.load(s, x).assume_eq(s, 3).assert_false();
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
    assert_eq!(v.run(EngineId::SimplifiedReach).verdict, Verdict::Unsafe);
}
