//! The fuzz loop: deterministic case generation, oracle checking,
//! shrinking of failures, corpus persistence, and a summary.
//!
//! Determinism contract: the set of cases a run executes is a pure
//! function of `(oracle, seed, budget)`. A `--seconds` budget is
//! converted to a case count via the oracle's calibrated
//! [`cases_per_second`](crate::oracle::Oracle::cases_per_second) rate
//! rather than a wall clock, so repeating a run replays exactly the same
//! cases and prints exactly the same summary — wall-clock time appears
//! only in the JSON report's `duration_us`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use parra_limits::{InterruptReason, ResourceBudget};
use parra_obs::json::ObjWriter;
use parra_obs::Recorder;
use parra_program::pretty;
use parra_program::system::ParamSystem;

use crate::corpus;
use crate::gen::SystemGen;
use crate::oracle::{Oracle, OracleOutcome};
use crate::shrink::{system_size, ShrinkResult, Shrinker};

/// How much fuzzing to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzBudget {
    /// Exactly this many cases.
    Cases(u64),
    /// A deterministic case target of `seconds ×` the oracle's calibrated
    /// cases/second rate.
    Seconds(u64),
}

impl FuzzBudget {
    /// The concrete case count for `oracle`.
    pub fn cases(self, oracle: &dyn Oracle) -> u64 {
        match self {
            FuzzBudget::Cases(n) => n,
            FuzzBudget::Seconds(s) => s.saturating_mul(oracle.cases_per_second()),
        }
    }
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; per-case seeds are derived from it.
    pub seed: u64,
    /// How many cases to run.
    pub budget: FuzzBudget,
    /// Save minimized failures into this directory as `.ra` files.
    pub corpus_dir: Option<PathBuf>,
    /// Wall-clock budget for one [`run`], anchored when the run is
    /// *admitted* (enters [`run`]), not when this config is built. A
    /// config may be constructed long before — and reused across —
    /// multiple oracle runs (the CLI loops one config over every
    /// `--oracle`; a daemon holds one for its lifetime), so an
    /// `Instant`-anchored deadline here would silently shrink the window
    /// of every run after the first.
    pub deadline: Option<Duration>,
    /// Resource governor checked between cases (cancellation, memory —
    /// and any deadline the *caller* anchored itself). An exhausted
    /// budget stops the run early with [`FuzzSummary::interrupted`] set;
    /// the cases that did complete are still a deterministic prefix of
    /// the full run.
    pub governor: ResourceBudget,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            budget: FuzzBudget::Seconds(1),
            corpus_dir: None,
            deadline: None,
            governor: ResourceBudget::unlimited(),
        }
    }
}

/// One oracle failure, minimized.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The per-case seed that produced the failing system.
    pub seed: u64,
    /// The oracle's description of the violation (on the *original*
    /// system).
    pub message: String,
    /// The minimized system.
    pub minimized: ParamSystem,
    /// Accepted shrink steps.
    pub shrink_steps: usize,
    /// Size metric of the minimized system (see
    /// [`system_size`](crate::shrink::system_size)).
    pub minimized_size: usize,
    /// Where the minimized system was saved, when a corpus directory was
    /// configured and the write succeeded.
    pub saved_to: Option<PathBuf>,
}

/// The result of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// The oracle that ran.
    pub oracle: String,
    /// The master seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: u64,
    /// Cases where the oracle passed.
    pub passed: u64,
    /// Cases outside the oracle's preconditions.
    pub skipped: u64,
    /// Minimized failures (empty on a healthy build).
    pub failures: Vec<Failure>,
    /// Total accepted shrink steps across all failures.
    pub shrink_steps: u64,
    /// Wall-clock duration (non-deterministic; excluded from
    /// [`FuzzSummary::render`]).
    pub duration_us: u64,
    /// Set when the run stopped early because the configured
    /// [`ResourceBudget`] was exhausted. Like `duration_us` this is
    /// wall-clock-dependent and excluded from [`FuzzSummary::render`].
    pub interrupted: Option<InterruptReason>,
}

impl FuzzSummary {
    /// The deterministic one-line summary (no wall-clock fields): two runs
    /// with the same oracle, seed, and budget render identically.
    pub fn render(&self) -> String {
        format!(
            "fuzz oracle={} seed={} cases={} passed={} skipped={} failures={} shrink_steps={}",
            self.oracle,
            self.seed,
            self.cases,
            self.passed,
            self.skipped,
            self.failures.len(),
            self.shrink_steps
        )
    }

    /// The full JSON report (includes `duration_us` and per-failure
    /// details).
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.str_field("oracle", &self.oracle);
        w.num_field("seed", self.seed);
        w.num_field("cases", self.cases);
        w.num_field("passed", self.passed);
        w.num_field("skipped", self.skipped);
        w.num_field("failures", self.failures.len() as u64);
        w.num_field("shrink_steps", self.shrink_steps);
        w.num_field("duration_us", self.duration_us);
        match self.interrupted {
            Some(r) => w.str_field("interrupted", r.as_str()),
            None => w.raw_field("interrupted", "null"),
        }
        let details: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                let mut d = ObjWriter::new();
                d.num_field("seed", f.seed);
                d.str_field("message", &f.message);
                d.num_field("shrink_steps", f.shrink_steps as u64);
                d.num_field("minimized_size", f.minimized_size as u64);
                match &f.saved_to {
                    Some(p) => d.str_field("saved_to", &p.display().to_string()),
                    None => d.raw_field("saved_to", "null"),
                }
                d.str_field("minimized", &pretty::system_to_string(&f.minimized));
                d.finish()
            })
            .collect();
        w.raw_field("failure_details", &format!("[{}]", details.join(",")));
        w.finish()
    }
}

/// Runs `oracle` over its generator family. Counters land under
/// `fuzz/…` on `rec`; pass [`Recorder::disabled`] to opt out.
pub fn run(oracle: &dyn Oracle, cfg: &FuzzConfig, rec: &Recorder) -> FuzzSummary {
    let start = Instant::now();
    // The run's wall-clock window opens now, at admission — not when the
    // config was built (see [`FuzzConfig::deadline`]).
    let governor = match cfg.deadline {
        Some(d) => cfg.governor.clone().with_deadline_at(start + d),
        None => cfg.governor.clone(),
    };
    let target = cfg.budget.cases(oracle);
    let gen = SystemGen::new(oracle.gen_config());
    let cases_ctr = rec.counter("fuzz/cases");
    let skipped_ctr = rec.counter("fuzz/skipped");
    let failures_ctr = rec.counter("fuzz/failures");
    let shrink_ctr = rec.counter("fuzz/shrink_steps");

    let mut summary = FuzzSummary {
        oracle: oracle.name().to_string(),
        seed: cfg.seed,
        cases: 0,
        passed: 0,
        skipped: 0,
        failures: Vec::new(),
        shrink_steps: 0,
        duration_us: 0,
        interrupted: None,
    };
    // Per-case seeds are sequential from the master seed (splitmix64 in
    // the generator already decorrelates them), so a failure on case seed
    // `s` replays exactly with `--seed s --cases 1`.
    for i in 0..target {
        if let Err(reason) = governor.check() {
            summary.interrupted = Some(reason);
            rec.counter(&format!("fuzz/interrupted_{reason}")).incr();
            break;
        }
        let case_seed = cfg.seed.wrapping_add(i);
        let case = gen.case(case_seed);
        summary.cases += 1;
        cases_ctr.incr();
        match oracle.check(&case.sys) {
            OracleOutcome::Pass => summary.passed += 1,
            OracleOutcome::Skip(_) => {
                summary.skipped += 1;
                skipped_ctr.incr();
            }
            OracleOutcome::Fail(message) => {
                failures_ctr.incr();
                let shrunk = Shrinker::for_oracle(oracle).shrink(&case.sys);
                summary.shrink_steps += shrunk.steps as u64;
                shrink_ctr.add(shrunk.steps as u64);
                // One flight-recorder event per failing case (passing
                // cases stay silent to bound log volume). Cases run
                // sequentially from a seeded generator, so this stream is
                // deterministic for a given (oracle, seed, budget).
                if rec.is_enabled() {
                    rec.event(
                        "fuzz_fail",
                        &[
                            ("oracle", oracle.name().into()),
                            ("seed", case_seed.into()),
                            ("case", i.into()),
                            ("shrink_steps", shrunk.steps.into()),
                            ("minimized_size", system_size(&shrunk.sys).into()),
                        ],
                    );
                }
                let saved_to = cfg.corpus_dir.as_ref().and_then(|dir| {
                    corpus::save(dir, oracle.name(), case_seed, &message, &shrunk.sys).ok()
                });
                summary.failures.push(Failure {
                    seed: case_seed,
                    message,
                    minimized_size: system_size(&shrunk.sys),
                    minimized: shrunk.sys,
                    shrink_steps: shrunk.steps,
                    saved_to,
                });
            }
        }
    }
    summary.duration_us = start.elapsed().as_micros() as u64;
    if rec.is_enabled() {
        rec.event_with(
            "fuzz_summary",
            &[
                ("oracle", summary.oracle.as_str().into()),
                ("seed", summary.seed.into()),
                ("cases", summary.cases.into()),
                ("passed", summary.passed.into()),
                ("skipped", summary.skipped.into()),
                ("failures", summary.failures.len().into()),
                ("shrink_steps", summary.shrink_steps.into()),
            ],
            &[("duration_us", summary.duration_us)],
        );
    }
    summary
}

/// The outcome of `parra fuzz --minimize FILE`.
#[derive(Debug, Clone)]
pub enum MinimizeOutcome {
    /// The oracle passes (or skips) on the input; nothing to minimize.
    NotFailing(OracleOutcome),
    /// The input fails the oracle; here is the minimized reproduction.
    Minimized {
        /// The oracle's message on the original input.
        message: String,
        /// The shrink result.
        result: Box<ShrinkResult>,
    },
}

/// Minimizes one externally supplied system against `oracle`.
pub fn minimize(oracle: &dyn Oracle, sys: &ParamSystem) -> MinimizeOutcome {
    match oracle.check(sys) {
        OracleOutcome::Fail(message) => MinimizeOutcome::Minimized {
            message,
            result: Box::new(Shrinker::for_oracle(oracle).shrink(sys)),
        },
        other => MinimizeOutcome::NotFailing(other),
    }
}

/// Replays every corpus entry in `dir` against all oracles whose name
/// prefixes the file name (falling back to all oracles for files without
/// a recognized prefix). Returns the failures as `(path, oracle,
/// message)` triples; an empty vector means the corpus is clean.
///
/// # Errors
///
/// Propagates corpus-loading errors from [`corpus::load_dir`].
pub fn replay_corpus(
    dir: &std::path::Path,
) -> std::io::Result<Vec<(PathBuf, &'static str, String)>> {
    let entries = corpus::load_dir(dir)?;
    let oracles = crate::oracle::all_oracles();
    let mut failures = Vec::new();
    for entry in entries {
        let stem = entry
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("");
        let matching: Vec<&Box<dyn Oracle>> = oracles
            .iter()
            .filter(|o| stem.starts_with(o.name()))
            .collect();
        let targets: Vec<&Box<dyn Oracle>> = if matching.is_empty() {
            oracles.iter().collect()
        } else {
            matching
        };
        for o in targets {
            if let OracleOutcome::Fail(message) = o.check(&entry.sys) {
                failures.push((entry.path.clone(), o.name(), message));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use crate::oracle::RoundTrip;

    /// An oracle that fails whenever the first dis thread contains a CAS —
    /// frequent enough in the agreement family to exercise the failure
    /// path deterministically.
    struct FailsOnCas;

    impl Oracle for FailsOnCas {
        fn name(&self) -> &'static str {
            "fails-on-cas"
        }
        fn gen_config(&self) -> GenConfig {
            GenConfig::agreement()
        }
        fn cases_per_second(&self) -> u64 {
            1000
        }
        fn check(&self, sys: &ParamSystem) -> OracleOutcome {
            if sys.dis.iter().any(|p| p.com().has_cas()) {
                OracleOutcome::Fail("dis uses cas".into())
            } else {
                OracleOutcome::Pass
            }
        }
    }

    #[test]
    fn same_seed_same_summary() {
        let cfg = FuzzConfig {
            seed: 7,
            budget: FuzzBudget::Cases(40),
            ..Default::default()
        };
        let a = run(&RoundTrip, &cfg, &Recorder::disabled());
        let b = run(&RoundTrip, &cfg, &Recorder::disabled());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.cases, 40);
        assert_eq!(a.failures.len(), 0, "round-trip failures: {:?}", a.failures);
    }

    #[test]
    fn seconds_budget_is_a_deterministic_case_target() {
        let o = FailsOnCas;
        assert_eq!(FuzzBudget::Seconds(3).cases(&o), 3000);
        assert_eq!(FuzzBudget::Cases(17).cases(&o), 17);
    }

    #[test]
    fn failures_are_shrunk_and_counted() {
        let cfg = FuzzConfig {
            seed: 1,
            budget: FuzzBudget::Cases(30),
            ..Default::default()
        };
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let summary = run(&FailsOnCas, &cfg, &rec);
        assert!(!summary.failures.is_empty(), "no CAS case in 30 seeds");
        assert_eq!(
            summary.cases,
            summary.passed + summary.skipped + summary.failures.len() as u64
        );
        for f in &summary.failures {
            // The minimal system still failing `FailsOnCas` is a single
            // dis thread holding one `cas`; dom 2; empty env.
            assert!(f.minimized.dis.iter().any(|p| p.com().has_cas()));
            assert!(
                f.minimized_size <= 3,
                "under-shrunk failure ({}): {}",
                f.minimized_size,
                pretty::system_to_string(&f.minimized)
            );
        }
        let json = summary.to_json();
        assert!(json.contains("\"failures\":"), "{json}");
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("fuzz/cases").copied(), Some(30));
    }

    #[test]
    fn exhausted_deadline_stops_the_run_early() {
        let cfg = FuzzConfig {
            seed: 0,
            budget: FuzzBudget::Cases(1000),
            governor: ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO),
            ..Default::default()
        };
        let summary = run(&RoundTrip, &cfg, &Recorder::disabled());
        assert_eq!(summary.interrupted, Some(InterruptReason::Deadline));
        assert_eq!(
            summary.cases, 0,
            "no case should start under a spent budget"
        );
        assert!(summary.to_json().contains("\"interrupted\":\"deadline\""));
    }

    #[test]
    fn deadline_anchors_at_run_admission_not_config_build() {
        // Regression: `--timeout` used to be baked into an
        // `Instant`-anchored governor at flag-parse time and shared
        // across every oracle run, so time spent *before* a run — other
        // oracles, or a daemon idling — ate its budget. A config built
        // long before the run must still grant the full window.
        let cfg = FuzzConfig {
            seed: 7,
            budget: FuzzBudget::Cases(5),
            deadline: Some(Duration::from_millis(60)),
            ..Default::default()
        };
        // Simulate the gap between config construction and admission
        // outliving the deadline itself.
        std::thread::sleep(Duration::from_millis(90));
        let summary = run(&RoundTrip, &cfg, &Recorder::disabled());
        assert_eq!(
            summary.interrupted, None,
            "deadline must anchor at admission, not config build"
        );
        assert_eq!(summary.cases, 5);
    }

    #[test]
    fn spent_admission_deadline_still_interrupts() {
        let cfg = FuzzConfig {
            seed: 0,
            budget: FuzzBudget::Cases(1000),
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let summary = run(&RoundTrip, &cfg, &Recorder::disabled());
        assert_eq!(summary.interrupted, Some(InterruptReason::Deadline));
        assert_eq!(summary.cases, 0);
    }

    #[test]
    fn minimize_reports_not_failing_for_healthy_input() {
        let gen = SystemGen::new(GenConfig::agreement());
        let sys = gen.case(3).sys;
        match minimize(&RoundTrip, &sys) {
            MinimizeOutcome::NotFailing(OracleOutcome::Pass) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
