//! Classification of systems into the paper's complexity landscape
//! (Table 1).
//!
//! A thread type is constrained by two restrictions: `acyc` (loop-free
//! control flow) and `nocas` (no compare-and-swap). The decidability and
//! complexity of parameterized safety verification depend on which
//! restrictions the `env` and `dis` threads satisfy.

use crate::cfg::Cfa;
use crate::system::ParamSystem;
use std::fmt;

/// The restrictions satisfied by one thread's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadClass {
    /// Loop-free control flow (`acyc`).
    pub acyc: bool,
    /// No compare-and-swap instructions (`nocas`).
    pub nocas: bool,
}

impl ThreadClass {
    /// Computes the class of a compiled program.
    pub fn of(cfa: &Cfa) -> ThreadClass {
        ThreadClass {
            acyc: cfa.is_acyclic(),
            nocas: cfa.is_cas_free(),
        }
    }
}

impl fmt::Display for ThreadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.nocas, self.acyc) {
            (true, true) => write!(f, "(nocas, acyc)"),
            (true, false) => write!(f, "(nocas)"),
            (false, true) => write!(f, "(acyc)"),
            (false, false) => write!(f, ""),
        }
    }
}

/// The signature `env(type) ‖ dis₁(type) ‖ … ‖ disₙ(type)` of a system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemClass {
    /// Class of the environment program.
    pub env: ThreadClass,
    /// Classes of the distinguished programs.
    pub dis: Vec<ThreadClass>,
}

impl SystemClass {
    /// Computes the signature of a system.
    pub fn of(sys: &ParamSystem) -> SystemClass {
        SystemClass {
            env: ThreadClass::of(sys.env.cfa()),
            dis: sys.dis.iter().map(|p| ThreadClass::of(p.cfa())).collect(),
        }
    }

    /// The complexity of parameterized safety verification for this class,
    /// per Table 1 of the paper.
    pub fn complexity(&self) -> Complexity {
        if !self.env.nocas {
            // Theorem 1.1: env(acyc) with CAS is already undecidable, so any
            // env class containing CAS is.
            return Complexity::Undecidable;
        }
        if self.dis.iter().all(|d| d.acyc) {
            // Theorem 4.1 + Theorem 5.1: env(nocas) ‖ dis₁(acyc) ‖ … ‖
            // disₙ(acyc) is PSPACE-complete.
            return Complexity::PspaceComplete;
        }
        if self.dis.iter().all(|d| d.nocas) && self.dis.len() <= 2 {
            // From [1] (Abdulla et al., PLDI 2019): two CAS-free
            // distinguished threads make the problem non-primitive-recursive
            // but decidable; the parameterized env(nocas) extension inherits
            // the lower bound. Whether it stays decidable with unboundedly
            // many env threads is open (see Conclusion), so we only claim
            // the lower bound for the non-parameterized core here.
            return Complexity::NonPrimitiveRecursive;
        }
        if self.dis.iter().any(|d| !d.nocas) {
            // Four unrestricted (CAS, loops) threads are undecidable [1];
            // with loops and CAS in dis we conservatively report
            // undecidable.
            return Complexity::Undecidable;
        }
        // env(nocas) ‖ dis(nocas)* with >2 looping dis threads: open.
        Complexity::Open
    }

    /// Whether the system is in the class the paper's algorithm decides:
    /// `env(nocas) ‖ dis₁(acyc) ‖ … ‖ disₙ(acyc)`.
    pub fn is_decidable_fragment(&self) -> bool {
        self.env.nocas && self.dis.iter().all(|d| d.acyc)
    }
}

impl fmt::Display for SystemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "env{}", self.env)?;
        for (i, d) in self.dis.iter().enumerate() {
            write!(f, " ‖ dis{}{}", i + 1, d)?;
        }
        Ok(())
    }
}

/// Decidability/complexity of parameterized safety verification (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Decidable in PSPACE, with a matching lower bound (Theorems 4.1, 5.1).
    PspaceComplete,
    /// Decidable but non-primitive-recursive (inherited from [1]).
    NonPrimitiveRecursive,
    /// Undecidable (Theorem 1.1 / [1]).
    Undecidable,
    /// Open problem (CAS-free threads with loops on both sides; see the
    /// paper's Conclusion).
    Open,
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Complexity::PspaceComplete => "PSPACE-complete",
            Complexity::NonPrimitiveRecursive => "non-primitive-recursive",
            Complexity::Undecidable => "undecidable",
            Complexity::Open => "open",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ident::{SymbolTable, VarId};
    use crate::stmt::Com;
    use crate::system::Program;
    use crate::value::Dom;

    fn prog(name: &str, com: Com) -> Program {
        let regs: SymbolTable = ["r0", "r1"].iter().map(|s| s.to_string()).collect();
        Program::new(name, regs, com)
    }

    fn sys(env: Com, dis: Vec<Com>) -> ParamSystem {
        let vars: SymbolTable = ["x"].iter().map(|s| s.to_string()).collect();
        ParamSystem::new(
            Dom::boolean(),
            vars,
            prog("env", env),
            dis.into_iter()
                .enumerate()
                .map(|(i, c)| prog(&format!("d{i}"), c))
                .collect(),
        )
    }

    fn store() -> Com {
        Com::Store(VarId(0), Expr::val(1))
    }
    fn cas() -> Com {
        Com::Cas(VarId(0), Expr::val(0), Expr::val(1))
    }

    #[test]
    fn pspace_fragment() {
        let s = sys(Com::star(store()), vec![store(), cas()]);
        let c = SystemClass::of(&s);
        assert!(c.is_decidable_fragment());
        assert_eq!(c.complexity(), Complexity::PspaceComplete);
        assert_eq!(c.to_string(), "env(nocas) ‖ dis1(nocas, acyc) ‖ dis2(acyc)");
    }

    #[test]
    fn env_cas_is_undecidable() {
        let s = sys(cas(), vec![]);
        let c = SystemClass::of(&s);
        assert!(!c.is_decidable_fragment());
        assert_eq!(c.complexity(), Complexity::Undecidable);
    }

    #[test]
    fn two_nocas_loopy_dis_non_primitive_recursive() {
        let loopy = Com::star(store());
        let s = sys(store(), vec![loopy.clone(), loopy]);
        let c = SystemClass::of(&s);
        assert_eq!(c.complexity(), Complexity::NonPrimitiveRecursive);
    }

    #[test]
    fn loopy_cas_dis_undecidable() {
        let s = sys(store(), vec![Com::star(cas())]);
        assert_eq!(SystemClass::of(&s).complexity(), Complexity::Undecidable);
    }

    #[test]
    fn many_nocas_loopy_dis_open() {
        let loopy = Com::star(store());
        let s = sys(store(), vec![loopy.clone(), loopy.clone(), loopy]);
        assert_eq!(SystemClass::of(&s).complexity(), Complexity::Open);
    }

    #[test]
    fn thread_class_display() {
        let pure = ThreadClass {
            acyc: true,
            nocas: true,
        };
        assert_eq!(pure.to_string(), "(nocas, acyc)");
        let unrestricted = ThreadClass {
            acyc: false,
            nocas: false,
        };
        assert_eq!(unrestricted.to_string(), "");
    }

    #[test]
    fn complexity_display() {
        assert_eq!(Complexity::PspaceComplete.to_string(), "PSPACE-complete");
        assert_eq!(Complexity::Open.to_string(), "open");
    }
}
