//! Control-flow automata: the executable form of `Com` programs.
//!
//! All verification engines (the concrete RA semantics, the simplified
//! semantics, and the Datalog encoding) run on a [`Cfa`]: a finite automaton
//! whose states are program locations (`lc` in the paper's thread
//! predicates) and whose edges are labelled with atomic instructions.
//!
//! The compilation from [`Com`] is the standard Thompson-style construction:
//! sequences share an intermediate location, choices fork and re-join,
//! iteration `c*` loops back through its entry location.

use crate::expr::Expr;
use crate::ident::{RegId, VarId};
use crate::stmt::Com;
use std::fmt;

/// A program location (control state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

impl Loc {
    /// The index as `usize` for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An atomic instruction labelling a CFA edge.
///
/// These are exactly the leaves of [`Com`]; `skip` edges appear where the
/// Thompson construction needs ε-moves (kept explicit so traces are easy to
/// read — engines treat them as silent transitions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Silent move.
    Skip,
    /// Blocks unless the expression is non-zero.
    Assume(Expr),
    /// The safety violation.
    AssertFalse,
    /// Local register assignment.
    Assign(RegId, Expr),
    /// Load `r := x`.
    Load(RegId, VarId),
    /// Store `x := e`.
    Store(VarId, Expr),
    /// Compare-and-swap `cas(x, e₁, e₂)`.
    Cas(VarId, Expr, Expr),
}

impl Instr {
    /// Whether the instruction interacts with shared memory.
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Instr::Load(..) | Instr::Store(..) | Instr::Cas(..))
    }

    /// The shared variable accessed, if any.
    pub fn accessed_variable(&self) -> Option<VarId> {
        match self {
            Instr::Load(_, x) | Instr::Store(x, _) | Instr::Cas(x, ..) => Some(*x),
            _ => None,
        }
    }
}

/// A CFA edge `from --instr--> to`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source location.
    pub from: Loc,
    /// The instruction executed when traversing the edge.
    pub instr: Instr,
    /// Target location.
    pub to: Loc,
}

/// A control-flow automaton compiled from a [`Com`] program.
///
/// # Example
///
/// ```
/// use parra_program::cfg::Cfa;
/// use parra_program::stmt::Com;
/// use parra_program::expr::Expr;
/// use parra_program::ident::{RegId, VarId};
///
/// let com = Com::seq([
///     Com::Load(RegId(0), VarId(0)),
///     Com::Assume(Expr::reg(RegId(0)).eq(Expr::val(1))),
/// ]);
/// let cfa = Cfa::compile(&com, 1);
/// assert!(cfa.is_acyclic());
/// assert!(cfa.is_cas_free());
/// assert_eq!(cfa.outgoing(cfa.entry()).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfa {
    n_regs: u32,
    n_locs: u32,
    edges: Vec<Edge>,
    /// `out[l]` lists indices into `edges` with `from == l`.
    out: Vec<Vec<u32>>,
    entry: Loc,
    exit: Loc,
}

impl Cfa {
    /// Compiles a statement into a CFA with `n_regs` registers.
    ///
    /// # Panics
    ///
    /// Panics if the statement mentions a register `>= n_regs`.
    pub fn compile(com: &Com, n_regs: u32) -> Cfa {
        if let Some(max) = com.registers().into_iter().max() {
            assert!(
                max.0 < n_regs,
                "program mentions register {max} but declares only {n_regs} registers"
            );
        }
        let mut b = CfaBuilder::new(n_regs);
        let entry = b.fresh();
        let exit = b.fresh();
        b.lower(com, entry, exit);
        b.finish(entry, exit)
    }

    /// Number of registers the program computes on.
    pub fn n_regs(&self) -> u32 {
        self.n_regs
    }

    /// Number of locations.
    pub fn n_locs(&self) -> u32 {
        self.n_locs
    }

    /// The initial location (`λ_init` in the paper's Datalog facts).
    pub fn entry(&self) -> Loc {
        self.entry
    }

    /// The final location; a thread at this location has terminated.
    pub fn exit(&self) -> Loc {
        self.exit
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges leaving location `l`.
    pub fn outgoing(&self, l: Loc) -> impl Iterator<Item = &Edge> {
        self.out[l.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Edges leaving location `l`, paired with their index into
    /// [`edges`](Self::edges) — the compact label the explorer stores per
    /// search-graph parent instead of a formatted description.
    pub fn outgoing_indexed(&self, l: Loc) -> impl Iterator<Item = (u32, &Edge)> {
        self.out[l.index()]
            .iter()
            .map(|&i| (i, &self.edges[i as usize]))
    }

    /// Whether the control-flow graph is acyclic — the paper's `acyc`
    /// restriction. Compiled `Com` only produces cycles for `c*`, but we
    /// check the graph itself so the property holds by construction for any
    /// CFA.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: the graph is a DAG iff all nodes can be removed.
        let n = self.n_locs as usize;
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.index()] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&l| indeg[l] == 0).collect();
        let mut removed = 0;
        while let Some(l) = stack.pop() {
            removed += 1;
            for &ei in &self.out[l] {
                let t = self.edges[ei as usize].to.index();
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    stack.push(t);
                }
            }
        }
        removed == n
    }

    /// Whether the program is `cas`-free — the paper's `nocas` restriction.
    pub fn is_cas_free(&self) -> bool {
        !self.edges.iter().any(|e| matches!(e.instr, Instr::Cas(..)))
    }

    /// Whether any edge is `assert false`.
    pub fn has_assert(&self) -> bool {
        self.edges
            .iter()
            .any(|e| matches!(e.instr, Instr::AssertFalse))
    }

    /// The shared variables accessed by the program.
    pub fn variables(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .edges
            .iter()
            .filter_map(|e| e.instr.accessed_variable())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// An upper bound on the number of store instructions executed in any
    /// run, or `None` if the CFA has a cycle through a store (unbounded).
    ///
    /// For loop-free (`acyc`) programs this is the per-thread contribution
    /// to the paper's timestamp budget `T` (Section 4.1).
    pub fn max_stores_per_run(&self) -> Option<usize> {
        if !self.is_acyclic() {
            // A cycle only makes the count unbounded if a store is reachable
            // from it; being conservative here is fine for budget purposes.
            return None;
        }
        // Longest path weighted by store instructions, over the DAG.
        // memo[l] = max stores on any path from l.
        let n = self.n_locs as usize;
        let mut memo: Vec<Option<usize>> = vec![None; n];
        fn go(cfa: &Cfa, l: usize, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(v) = memo[l] {
                return v;
            }
            let mut best = 0;
            for &ei in &cfa.out[l] {
                let e = &cfa.edges[ei as usize];
                let w = usize::from(matches!(e.instr, Instr::Store(..) | Instr::Cas(..)));
                best = best.max(w + go(cfa, e.to.index(), memo));
            }
            memo[l] = Some(best);
            best
        }
        Some(go(self, self.entry.index(), &mut memo))
    }

    /// An upper bound on the number of stores *to variable `x`* in any
    /// run, or `None` for cyclic CFAs. Timestamps order stores
    /// per-variable, so this is the per-variable slot budget.
    pub fn max_stores_per_run_on(&self, x: VarId) -> Option<usize> {
        if !self.is_acyclic() {
            return None;
        }
        let n = self.n_locs as usize;
        let mut memo: Vec<Option<usize>> = vec![None; n];
        fn go(cfa: &Cfa, x: VarId, l: usize, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(v) = memo[l] {
                return v;
            }
            let mut best = 0;
            for &ei in &cfa.out[l] {
                let e = &cfa.edges[ei as usize];
                let w = usize::from(matches!(
                    &e.instr,
                    Instr::Store(v, _) | Instr::Cas(v, ..) if *v == x
                ));
                best = best.max(w + go(cfa, x, e.to.index(), memo));
            }
            memo[l] = Some(best);
            best
        }
        Some(go(self, x, self.entry.index(), &mut memo))
    }

    /// An upper bound on the number of instructions (edges) executed in any
    /// run, or `None` for cyclic CFAs. This is the paper's per-thread bound
    /// on how much a loop-free `dis` thread can execute.
    pub fn max_steps_per_run(&self) -> Option<usize> {
        if !self.is_acyclic() {
            return None;
        }
        let n = self.n_locs as usize;
        let mut memo: Vec<Option<usize>> = vec![None; n];
        fn go(cfa: &Cfa, l: usize, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(v) = memo[l] {
                return v;
            }
            let mut best = 0;
            for &ei in &cfa.out[l] {
                let e = &cfa.edges[ei as usize];
                best = best.max(1 + go(cfa, e.to.index(), memo));
            }
            memo[l] = Some(best);
            best
        }
        Some(go(self, self.entry.index(), &mut memo))
    }
}

struct CfaBuilder {
    n_regs: u32,
    n_locs: u32,
    edges: Vec<Edge>,
}

impl CfaBuilder {
    fn new(n_regs: u32) -> Self {
        CfaBuilder {
            n_regs,
            n_locs: 0,
            edges: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Loc {
        let l = Loc(self.n_locs);
        self.n_locs += 1;
        l
    }

    fn edge(&mut self, from: Loc, instr: Instr, to: Loc) {
        self.edges.push(Edge { from, instr, to });
    }

    fn lower(&mut self, com: &Com, from: Loc, to: Loc) {
        match com {
            Com::Skip => self.edge(from, Instr::Skip, to),
            Com::Assume(e) => self.edge(from, Instr::Assume(e.clone()), to),
            Com::AssertFalse => self.edge(from, Instr::AssertFalse, to),
            Com::Assign(r, e) => self.edge(from, Instr::Assign(*r, e.clone()), to),
            Com::Load(r, x) => self.edge(from, Instr::Load(*r, *x), to),
            Com::Store(x, e) => self.edge(from, Instr::Store(*x, e.clone()), to),
            Com::Cas(x, e1, e2) => self.edge(from, Instr::Cas(*x, e1.clone(), e2.clone()), to),
            Com::Seq(a, b) => {
                let mid = self.fresh();
                self.lower(a, from, mid);
                self.lower(b, mid, to);
            }
            Com::Choice(a, b) => {
                self.lower(a, from, to);
                self.lower(b, from, to);
            }
            Com::Star(c) => {
                // from --skip--> to  (zero iterations)
                // from --c--> from   (loop back for another iteration)
                self.edge(from, Instr::Skip, to);
                self.lower(c, from, from);
            }
        }
    }

    fn finish(self, entry: Loc, exit: Loc) -> Cfa {
        let mut out = vec![Vec::new(); self.n_locs as usize];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.from.index()].push(i as u32);
        }
        Cfa {
            n_regs: self.n_regs,
            n_locs: self.n_locs,
            edges: self.edges,
            out,
            entry,
            exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn x() -> VarId {
        VarId(0)
    }
    fn r() -> RegId {
        RegId(0)
    }

    #[test]
    fn straight_line_is_acyclic() {
        let com = Com::seq([
            Com::Load(r(), x()),
            Com::Store(x(), Expr::val(1)),
            Com::AssertFalse,
        ]);
        let cfa = Cfa::compile(&com, 1);
        assert!(cfa.is_acyclic());
        assert!(cfa.is_cas_free());
        assert!(cfa.has_assert());
        assert_eq!(cfa.max_stores_per_run(), Some(1));
        assert_eq!(cfa.max_steps_per_run(), Some(3));
    }

    #[test]
    fn star_produces_cycle() {
        let com = Com::star(Com::Store(x(), Expr::val(1)));
        let cfa = Cfa::compile(&com, 0);
        assert!(!cfa.is_acyclic());
        assert_eq!(cfa.max_stores_per_run(), None);
        assert_eq!(cfa.max_steps_per_run(), None);
    }

    #[test]
    fn choice_takes_max_store_bound() {
        let com = Com::choice([
            Com::seq([Com::Store(x(), Expr::val(1)), Com::Store(x(), Expr::val(0))]),
            Com::Load(r(), x()),
        ]);
        let cfa = Cfa::compile(&com, 1);
        assert!(cfa.is_acyclic());
        assert_eq!(cfa.max_stores_per_run(), Some(2));
    }

    #[test]
    fn cas_detected_and_counts_as_store() {
        let com = Com::Cas(x(), Expr::val(0), Expr::val(1));
        let cfa = Cfa::compile(&com, 0);
        assert!(!cfa.is_cas_free());
        assert_eq!(cfa.max_stores_per_run(), Some(1));
    }

    #[test]
    fn entry_and_exit_are_distinct() {
        let cfa = Cfa::compile(&Com::Skip, 0);
        assert_ne!(cfa.entry(), cfa.exit());
        let edges: Vec<_> = cfa.outgoing(cfa.entry()).collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].instr, Instr::Skip);
        assert_eq!(edges[0].to, cfa.exit());
    }

    #[test]
    #[should_panic(expected = "mentions register")]
    fn undeclared_register_rejected() {
        Cfa::compile(&Com::Load(RegId(3), x()), 1);
    }

    #[test]
    fn variables_collected() {
        let com = Com::seq([Com::Load(r(), VarId(2)), Com::Store(VarId(1), Expr::val(0))]);
        let cfa = Cfa::compile(&com, 1);
        assert_eq!(cfa.variables(), vec![VarId(1), VarId(2)]);
    }

    #[test]
    fn instr_memory_access() {
        assert!(Instr::Load(r(), x()).is_memory_access());
        assert!(!Instr::Skip.is_memory_access());
        assert_eq!(
            Instr::Store(x(), Expr::val(0)).accessed_variable(),
            Some(x())
        );
        assert_eq!(Instr::AssertFalse.accessed_variable(), None);
    }

    #[test]
    fn nested_choice_fan_out() {
        let com = Com::choice([Com::Skip, Com::Skip, Com::Skip]);
        let cfa = Cfa::compile(&com, 0);
        assert_eq!(cfa.outgoing(cfa.entry()).count(), 3);
    }
}
