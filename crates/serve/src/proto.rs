//! The `parra serve` wire protocol: line-delimited JSON, version 1.
//!
//! One request per line in, exactly one response line per request out —
//! whatever happens to the request. The protocol is schema-versioned like
//! the flight recorder, under its own top-level key `proto` (the
//! recorder owns `v`, and `parra report` dispatches event validation on
//! that key; responses deliberately avoid it so a serve response that
//! carries run `reports` ingests as a batch line instead).
//!
//! ## Requests
//!
//! ```json
//! {"proto":1,"type":"verify","id":"1","litmus":"rcu","engine":"race"}
//! {"proto":1,"type":"verify","id":"2","program":"var x ...","timeout_ms":5000}
//! {"proto":1,"type":"batch","id":"3","items":[{"litmus":"rcu"},{"litmus":"barrier"}]}
//! {"proto":1,"type":"status","id":"4"}
//! {"proto":1,"type":"shutdown","id":"5"}
//! ```
//!
//! A `verify` request names its system either by `litmus` benchmark name
//! or inline `program` source, and may override the daemon's defaults
//! with `engine` (an engine name, `all-engines`, or `race`), `threads`,
//! `unroll`, `timeout_ms` (anchored at *admission*, not connection or
//! daemon start), and `memory` (a byte size like `"512M"`).
//!
//! ## Responses
//!
//! Every response carries `proto`, the echoed `id`, and a `type` of
//! `result`, `batch`, `status`, `ok`, or `error`. Result lines put every
//! deterministic field first and quarantine the timing-dependent ones
//! (durations, cache hits, queue depth) in a trailing `volatile` object,
//! mirroring the flight-recorder event discipline — so
//! [`canonical_response`] can strip scheduling noise and compare
//! responses across daemon lifetimes byte-for-byte.
//!
//! Malformed input never kills the connection: an unparseable, oversized,
//! wrongly-versioned, or unknown-typed line yields a structured `error`
//! response with a stable `code`.

use parra_obs::json::{self, write_escaped, Value};
use std::collections::BTreeMap;

/// Protocol schema version. Bump on any breaking change to request or
/// response shapes.
pub const PROTO_VERSION: u64 = 1;

/// Hard bound on one request line, in bytes. A line past this is
/// rejected with [`ErrorCode::Oversized`] before parsing.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Stable machine-readable error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON or not an object.
    Malformed,
    /// `proto` is missing or not a version this daemon speaks.
    UnsupportedVersion,
    /// The line exceeds [`MAX_FRAME_BYTES`].
    Oversized,
    /// `type` is missing or unknown.
    UnknownType,
    /// A field has the wrong type or an invalid value.
    BadField,
    /// The program failed to parse or the verifier rejected the system.
    BadProgram,
    /// Admission control turned the request away; in-flight work is
    /// unaffected. Retry later.
    Overloaded,
    /// Decisive engines disagreed (an engine bug worth reporting).
    Disagreement,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownType => "unknown-type",
            ErrorCode::BadField => "bad-field",
            ErrorCode::BadProgram => "bad-program",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Disagreement => "disagreement",
        }
    }
}

/// A request rejection: code, human-readable message, and the request id
/// when one could still be recovered from the line.
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// The stable code.
    pub code: ErrorCode,
    /// What went wrong.
    pub message: String,
    /// The echoed request id, when recoverable.
    pub id: Option<String>,
}

/// Where a verify request's system comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// A named `parra-litmus` benchmark.
    Litmus(String),
    /// Inline program source text.
    Program(String),
}

/// One parsed `verify` request (also the element shape of `batch`).
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// Echoed request id (empty when absent).
    pub id: String,
    /// Attribution name: `name` field, else the litmus name, else
    /// `inline`. Used for the response `file` field, event-log
    /// attribution, and the injection hooks.
    pub name: String,
    /// The system.
    pub source: Source,
    /// Engine selection label (`simplified-reach`, …, `all-engines`,
    /// `race`); `None` uses the daemon default.
    pub engine: Option<String>,
    /// Worker-thread override.
    pub threads: Option<usize>,
    /// Per-request wall-clock budget in milliseconds, anchored at
    /// admission.
    pub timeout_ms: Option<u64>,
    /// Per-request live-heap budget in bytes.
    pub memory: Option<usize>,
    /// `dis`-loop unroll depth.
    pub unroll: Option<usize>,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Verify one system.
    Verify(Box<VerifyRequest>),
    /// Verify several systems; one `batch` response with per-item
    /// results.
    Batch {
        /// Echoed request id.
        id: String,
        /// The items, in request order.
        items: Vec<VerifyRequest>,
    },
    /// Daemon counters.
    Status {
        /// Echoed request id.
        id: String,
    },
    /// Acknowledge and stop accepting work.
    Shutdown {
        /// Echoed request id.
        id: String,
    },
}

fn field_str(obj: &BTreeMap<String, Value>, key: &str) -> Option<String> {
    obj.get(key).and_then(Value::as_str).map(str::to_string)
}

fn field_u64(
    obj: &BTreeMap<String, Value>,
    key: &str,
    id: &str,
) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| ProtoError {
            code: ErrorCode::BadField,
            message: format!("`{key}` must be a non-negative integer"),
            id: Some(id.to_string()),
        }),
    }
}

fn parse_verify_fields(
    obj: &BTreeMap<String, Value>,
    id: &str,
) -> Result<VerifyRequest, ProtoError> {
    let litmus = field_str(obj, "litmus");
    let program = field_str(obj, "program");
    let source = match (litmus, program) {
        (Some(_), Some(_)) => {
            return Err(ProtoError {
                code: ErrorCode::BadField,
                message: "`litmus` and `program` are mutually exclusive".into(),
                id: Some(id.to_string()),
            })
        }
        (Some(name), None) => Source::Litmus(name),
        (None, Some(text)) => Source::Program(text),
        (None, None) => {
            return Err(ProtoError {
                code: ErrorCode::BadField,
                message: "a verify request needs `litmus` or `program`".into(),
                id: Some(id.to_string()),
            })
        }
    };
    let name = field_str(obj, "name").unwrap_or_else(|| match &source {
        Source::Litmus(n) => n.clone(),
        Source::Program(_) => "inline".to_string(),
    });
    let memory = match obj.get("memory") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => {
            Some(parra_limits::parse_byte_size(s).ok_or_else(|| ProtoError {
                code: ErrorCode::BadField,
                message: format!("`memory`: invalid byte size `{s}`"),
                id: Some(id.to_string()),
            })?)
        }
        Some(v) => Some(v.as_u64().ok_or_else(|| ProtoError {
            code: ErrorCode::BadField,
            message: "`memory` must be a byte count or a size string".into(),
            id: Some(id.to_string()),
        })? as usize),
    };
    Ok(VerifyRequest {
        id: id.to_string(),
        name,
        source,
        engine: field_str(obj, "engine"),
        threads: field_u64(obj, "threads", id)?.map(|n| n as usize),
        timeout_ms: field_u64(obj, "timeout_ms", id)?,
        memory,
        unroll: field_u64(obj, "unroll", id)?.map(|n| n as usize),
    })
}

/// Parses one request line. Never panics; every malformed input maps to
/// a [`ProtoError`] with a stable [`ErrorCode`].
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_FRAME_BYTES {
        return Err(ProtoError {
            code: ErrorCode::Oversized,
            message: format!("request is {} bytes (max {MAX_FRAME_BYTES})", line.len()),
            id: None,
        });
    }
    let value = json::parse(line).map_err(|e| ProtoError {
        code: ErrorCode::Malformed,
        message: format!("invalid JSON: {e}"),
        id: None,
    })?;
    let obj = match &value {
        Value::Obj(m) => m,
        _ => {
            return Err(ProtoError {
                code: ErrorCode::Malformed,
                message: "request must be a JSON object".into(),
                id: None,
            })
        }
    };
    // Ids are echoed verbatim; integer ids are accepted and echoed in
    // their decimal rendering so hand-written requests work too.
    let id = match obj.get("id") {
        Some(Value::Str(s)) => s.clone(),
        Some(Value::Num(n)) if n.fract() == 0.0 => format!("{}", *n as i64),
        _ => String::new(),
    };
    match obj.get("proto").and_then(Value::as_u64) {
        Some(PROTO_VERSION) => {}
        Some(other) => {
            return Err(ProtoError {
                code: ErrorCode::UnsupportedVersion,
                message: format!("protocol version {other} (this daemon speaks {PROTO_VERSION})"),
                id: Some(id),
            })
        }
        None => {
            return Err(ProtoError {
                code: ErrorCode::UnsupportedVersion,
                message: format!("missing numeric `proto` (expected {PROTO_VERSION})"),
                id: Some(id),
            })
        }
    }
    match obj.get("type").and_then(Value::as_str) {
        Some("verify") => Ok(Request::Verify(Box::new(parse_verify_fields(obj, &id)?))),
        Some("batch") => {
            let items = obj
                .get("items")
                .and_then(Value::as_arr)
                .ok_or_else(|| ProtoError {
                    code: ErrorCode::BadField,
                    message: "a batch request needs an `items` array".into(),
                    id: Some(id.clone()),
                })?;
            let items = items
                .iter()
                .map(|item| match item {
                    Value::Obj(m) => parse_verify_fields(m, &id),
                    _ => Err(ProtoError {
                        code: ErrorCode::BadField,
                        message: "batch `items` must be objects".into(),
                        id: Some(id.clone()),
                    }),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch { id, items })
        }
        Some("status") => Ok(Request::Status { id }),
        Some("shutdown") => Ok(Request::Shutdown { id }),
        Some(other) => Err(ProtoError {
            code: ErrorCode::UnknownType,
            message: format!("unknown request type `{other}`"),
            id: Some(id),
        }),
        None => Err(ProtoError {
            code: ErrorCode::UnknownType,
            message: "missing string `type`".into(),
            id: Some(id),
        }),
    }
}

/// Renders an `error` response line.
pub fn error_response(err: &ProtoError) -> String {
    let mut w = json::ObjWriter::new();
    w.num_field("proto", PROTO_VERSION);
    w.str_field("id", err.id.as_deref().unwrap_or(""));
    w.str_field("type", "error");
    w.str_field("code", err.code.as_str());
    w.str_field("error", &err.message);
    w.finish()
}

/// Keys whose values are timing-, scheduling-, or cache-state-dependent.
/// [`canonical_response`] strips them (recursively) so two runs of the
/// same request compare byte-for-byte whatever the daemon's history.
const VOLATILE_KEYS: [&str; 7] = [
    "volatile",
    "duration_us",
    "phases",
    "stats",
    "counters",
    "gauges",
    "histograms",
];

fn strip_volatile(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                strip_volatile(item, out);
            }
            out.push(']');
        }
        Value::Obj(m) => {
            out.push('{');
            let mut any = false;
            for (k, val) in m {
                if VOLATILE_KEYS.contains(&k.as_str()) {
                    continue;
                }
                if any {
                    out.push(',');
                }
                any = true;
                write_escaped(out, k);
                out.push(':');
                strip_volatile(val, out);
            }
            out.push('}');
        }
    }
}

/// The deterministic projection of a response line: volatile fields
/// removed at every depth, object keys in sorted order. Two responses to
/// the same request — concurrent vs. sequential, warm vs. cold daemon —
/// must canonicalize identically; that is the serve determinism
/// contract the concurrency suite enforces.
///
/// # Errors
///
/// When `line` is not valid JSON (which would itself be a protocol bug).
pub fn canonical_response(line: &str) -> Result<String, String> {
    let v = json::parse(line.trim()).map_err(|e| format!("unparseable response: {e}"))?;
    let mut out = String::new();
    strip_volatile(&v, &mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_verify_round_trips() {
        let req = parse_request(
            r#"{"proto":1,"type":"verify","id":"7","litmus":"rcu","engine":"race","threads":4,"timeout_ms":250,"memory":"64M","unroll":2}"#,
        )
        .expect("parse");
        match req {
            Request::Verify(v) => {
                assert_eq!(v.id, "7");
                assert_eq!(v.name, "rcu");
                assert!(matches!(v.source, Source::Litmus(ref n) if n == "rcu"));
                assert_eq!(v.engine.as_deref(), Some("race"));
                assert_eq!(v.threads, Some(4));
                assert_eq!(v.timeout_ms, Some(250));
                assert_eq!(v.memory, Some(64 << 20));
                assert_eq!(v.unroll, Some(2));
            }
            other => panic!("expected verify, got {other:?}"),
        }
    }

    #[test]
    fn every_malformed_frame_maps_to_a_stable_code() {
        let cases: &[(&str, ErrorCode)] = &[
            ("not json at all", ErrorCode::Malformed),
            (r#"{"proto":1,"type":"verify""#, ErrorCode::Malformed),
            ("[1,2,3]", ErrorCode::Malformed),
            (
                r#"{"type":"verify","litmus":"rcu"}"#,
                ErrorCode::UnsupportedVersion,
            ),
            (
                r#"{"proto":99,"type":"verify","litmus":"rcu"}"#,
                ErrorCode::UnsupportedVersion,
            ),
            (r#"{"proto":1,"type":"frobnicate"}"#, ErrorCode::UnknownType),
            (r#"{"proto":1}"#, ErrorCode::UnknownType),
            (r#"{"proto":1,"type":"verify"}"#, ErrorCode::BadField),
            (
                r#"{"proto":1,"type":"verify","litmus":"a","program":"b"}"#,
                ErrorCode::BadField,
            ),
            (
                r#"{"proto":1,"type":"verify","litmus":"rcu","threads":-3}"#,
                ErrorCode::BadField,
            ),
            (r#"{"proto":1,"type":"batch"}"#, ErrorCode::BadField),
        ];
        for (line, expected) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, *expected, "line: {line}");
            // The error response itself must be valid JSON.
            let rendered = error_response(&err);
            assert!(json::parse(&rendered).is_ok(), "unparseable: {rendered}");
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_parsing() {
        let line = format!(
            r#"{{"proto":1,"type":"verify","program":"{}"}}"#,
            "x".repeat(MAX_FRAME_BYTES)
        );
        let err = parse_request(&line).expect_err("oversized");
        assert_eq!(err.code, ErrorCode::Oversized);
    }

    #[test]
    fn canonicalization_strips_volatile_fields_at_every_depth() {
        let a = r#"{"id":"1","verdict":"SAFE","volatile":{"duration_us":12},"reports":[{"engine":"e","duration_us":5,"phases":{"plan":3},"verdict":"SAFE"}]}"#;
        let b = r#"{"id":"1","verdict":"SAFE","volatile":{"duration_us":99000},"reports":[{"engine":"e","duration_us":777,"phases":{"search":1},"verdict":"SAFE"}]}"#;
        let ca = canonical_response(a).unwrap();
        let cb = canonical_response(b).unwrap();
        assert_eq!(ca, cb);
        assert!(ca.contains("\"verdict\":\"SAFE\""));
        assert!(!ca.contains("duration_us"));
    }
}
