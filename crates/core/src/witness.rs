//! Datalog witness extraction: turning a winning `makeP` guess into the
//! paper's bounded-cache certificate.
//!
//! The guess fleet in [`verify`](crate::verify) evaluates every `makeP`
//! query with provenance *off* — the fast path pays nothing for
//! derivation tracking. Only when a guess derives the goal is its program
//! re-evaluated here with provenance *on*, and the recorded derivation is
//! turned into the Lemma 4.6 cache schedule:
//!
//! * the **peak over intensional atoms** is the empirical Lemma 4.4
//!   number (EDB facts — timeline orders, gap tables — are free in the
//!   paper's accounting);
//! * the schedule is **replayed** under the Cache semantics
//!   ([`verify_schedule`]) with `k` = its full peak, certifying that the
//!   `Prog ⊢ₖ goal` judgement the PSPACE argument rests on actually
//!   holds;
//! * where the program happens to fall into the ≤2-atom-body fragment,
//!   the Lemma 4.2 cache→linear translation is run as an additional
//!   cross-check (real `makeP` outputs exceed the fragment; random and
//!   property-test programs exercise it).

use crate::makep::MakeP;
use parra_datalog::cache::{schedule_from_database, verify_schedule, CacheSchedule, ScheduleStep};
use parra_datalog::eval::Evaluator;
use parra_datalog::linear::LinearEvaluator;
use parra_datalog::plan::Plan;
use parra_datalog::translate::cache_to_linear;
use parra_datalog::{GroundAtom, Program};
use parra_obs::Recorder;
use std::sync::Arc;

/// The outcome of the Lemma 4.2/4.6 cross-check on a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearCheck {
    /// The translated linear program re-derives the goal.
    Agrees,
    /// The translated linear program does *not* derive the goal — an
    /// engine bug.
    Disagrees,
    /// The program is outside the ≤2-atom-body fragment Lemma 4.2
    /// translates (every real `makeP` output is).
    OutsideFragment,
}

/// A bounded-cache witness for one winning guess.
#[derive(Debug, Clone)]
pub struct DatalogWitness {
    /// The Lemma 4.6 Add/Drop schedule for the goal.
    pub schedule: CacheSchedule,
    /// Schedule peak counting intensional atoms only (the Lemma 4.4
    /// number reported as `cache_peak`).
    pub peak_intensional: usize,
    /// Running intensional occupancy after each schedule step.
    pub occupancy: Vec<usize>,
    /// Whether the schedule replays under the Cache semantics with
    /// `k` = its full peak ([`verify_schedule`]).
    pub certified: bool,
    /// The Lemma 4.2 translation cross-check.
    pub linear_check: LinearCheck,
    /// Atoms derived by the provenance re-run.
    pub atoms: usize,
}

/// Upper bounds gating the (exponential) Lemma 4.2 cross-check.
const LINEAR_CHECK_MAX_SIZE: usize = 400;
const LINEAR_CHECK_MAX_K: usize = 6;

/// Re-evaluates `prog` with provenance on and extracts the bounded-cache
/// witness for `goal`. `threads` drives the evaluator's parallel delta
/// batches; `plan` reuses the fleet's join plan (it must come from a
/// `PlanCache` hit on this program's rule list). Returns `None` if the
/// goal is not derivable (the caller claimed a win that does not replay —
/// an engine bug surfaced upstream).
pub fn extract(
    prog: &Program,
    goal: &GroundAtom,
    rec: &Recorder,
    threads: usize,
    plan: Option<Arc<Plan>>,
) -> Option<DatalogWitness> {
    let ev = match plan {
        Some(p) => Evaluator::with_plan(prog, p),
        None => Evaluator::new(prog),
    };
    let db = ev
        .with_recorder(rec.clone())
        .with_provenance(true)
        .with_threads(threads)
        .run_until(Some(goal));
    let atoms = db.len();
    let schedule = schedule_from_database(&db, goal)?;
    let edb = MakeP::edb_predicates(prog);
    let mut cache = 0usize;
    let mut peak = 0usize;
    let mut occupancy = Vec::with_capacity(schedule.steps.len());
    for step in &schedule.steps {
        match step {
            ScheduleStep::Add(a) => {
                if !edb.contains(&a.pred) {
                    cache += 1;
                    peak = peak.max(cache);
                }
            }
            ScheduleStep::Drop(a) => {
                if !edb.contains(&a.pred) {
                    cache -= 1;
                }
            }
        }
        occupancy.push(cache);
    }
    let certified = verify_schedule(prog, goal, &schedule, schedule.peak);
    let linear_check = linear_cross_check(prog, goal, schedule.peak);
    Some(DatalogWitness {
        schedule,
        peak_intensional: peak,
        occupancy,
        certified,
        linear_check,
        atoms,
    })
}

/// Runs the Lemma 4.2 translation and the linear worklist evaluator when
/// the program is inside the translatable fragment and small enough.
fn linear_cross_check(prog: &Program, goal: &GroundAtom, k: usize) -> LinearCheck {
    let in_fragment = prog.rules().iter().all(|r| r.body.len() <= 2);
    if !in_fragment || prog.size() > LINEAR_CHECK_MAX_SIZE || k > LINEAR_CHECK_MAX_K || k == 0 {
        return LinearCheck::OutsideFragment;
    }
    match cache_to_linear(prog, goal, k) {
        Ok(t) => {
            if LinearEvaluator::new(&t.program).query(&t.goal) {
                LinearCheck::Agrees
            } else {
                LinearCheck::Disagrees
            }
        }
        Err(_) => LinearCheck::OutsideFragment,
    }
}

/// Renders the schedule's intensional Add steps, capped at `limit` lines
/// (with a trailing ellipsis line when truncated) — the human-readable
/// witness of the Datalog engines.
pub fn render_lines(prog: &Program, witness: &DatalogWitness, limit: usize) -> Vec<String> {
    let edb = MakeP::edb_predicates(prog);
    let adds: Vec<&GroundAtom> = witness
        .schedule
        .steps
        .iter()
        .filter_map(|s| match s {
            ScheduleStep::Add(a) if !edb.contains(&a.pred) => Some(a),
            _ => None,
        })
        .collect();
    let mut lines: Vec<String> = adds
        .iter()
        .take(limit)
        .map(|a| format!("infer {}", prog.display_ground(a)))
        .collect();
    if adds.len() > limit {
        lines.push(format!("… {} more inference steps", adds.len() - limit));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_datalog::ast::{Atom, Term};

    /// A chain program: in the ≤2-atom fragment, so the Lemma 4.2
    /// cross-check actually runs.
    fn chain(n: u32) -> (Program, GroundAtom) {
        let mut p = Program::new();
        let next = p.predicate("next", 2);
        let reach = p.predicate("reach", 1);
        let consts: Vec<_> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
        for w in consts.windows(2) {
            p.fact(next, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![consts[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        (p, GroundAtom::new(reach, vec![*consts.last().unwrap()]))
    }

    #[test]
    fn extract_certifies_and_cross_checks() {
        let (p, goal) = chain(5);
        let w = extract(&p, &goal, &Recorder::disabled(), 1, None).expect("derivable");
        assert!(w.certified);
        assert_eq!(w.linear_check, LinearCheck::Agrees);
        assert!(w.peak_intensional >= 1);
        assert!(w.atoms >= 5);
        assert_eq!(w.occupancy.len(), w.schedule.steps.len());
        // No predicate here matches the makeP EDB prefixes except `next`…
        // which does not, so the intensional peak tracks the full peak.
        assert!(w.peak_intensional <= w.schedule.peak);
    }

    #[test]
    fn extract_none_for_underivable_goal() {
        let (p, _) = chain(3);
        let reach = p.lookup_pred("reach").unwrap();
        let bogus = GroundAtom::new(reach, vec![parra_datalog::Const(999)]);
        assert!(extract(&p, &bogus, &Recorder::disabled(), 1, None).is_none());
    }

    #[test]
    fn render_caps_lines() {
        let (p, goal) = chain(8);
        let w = extract(&p, &goal, &Recorder::disabled(), 1, None).unwrap();
        let full = render_lines(&p, &w, 1000);
        assert!(full.iter().all(|l| l.starts_with("infer ")));
        let capped = render_lines(&p, &w, 2);
        assert_eq!(capped.len(), 3);
        assert!(capped[2].contains("more inference steps"));
    }
}
