//! A3: the three verification engines on the same systems — the direct
//! simplified-semantics search, the makeP Datalog path, and the bounded
//! concrete baseline.

use parra_bench::experiments::{cas_example_system, handshake_system};
use parra_bench::micro::Harness;
use parra_core::verify::{EngineId, Verifier, VerifierOptions};

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("engines");
    group.sample_size(10);
    let systems = [
        ("handshake_unsafe", handshake_system(false)),
        ("handshake_safe", handshake_system(true)),
        ("cas_example", cas_example_system()),
    ];
    for (name, sys) in systems {
        let verifier = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        for engine in [
            EngineId::SimplifiedReach,
            EngineId::CacheDatalog,
            EngineId::BoundedConcrete,
        ] {
            group.bench_function(&format!("{engine}/{name}"), |b| {
                b.iter(|| std::hint::black_box(verifier.run(engine).verdict))
            });
        }
    }
    group.finish();
}
