//! The benchmark suite end-to-end: every benchmark's verdict under the
//! simplified-semantics engine must match its expected verdict, and the
//! concrete baseline must corroborate every `Unsafe`.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_litmus::{all, Expected};

#[test]
fn suite_verdicts_match_expectations() {
    for bench in all() {
        let verifier = Verifier::new(&bench.system, VerifierOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let result = verifier.run(EngineId::SimplifiedReach);
        let expected = match bench.expected {
            Expected::Safe => Verdict::Safe,
            Expected::Unsafe => Verdict::Unsafe,
        };
        assert_eq!(
            result.verdict, expected,
            "{} ({}): expected {expected}, got {} — {:?}",
            bench.name, bench.source, result.verdict, result.notes
        );
        if result.verdict == Verdict::Unsafe {
            assert!(
                result.env_thread_bound.is_some(),
                "{}: unsafe verdict without a thread bound",
                bench.name
            );
        }
    }
}

#[test]
fn concrete_baseline_corroborates_unsafe_benchmarks() {
    for bench in all() {
        if bench.expected != Expected::Unsafe {
            continue;
        }
        let verifier = Verifier::new(&bench.system, VerifierOptions::default()).unwrap();
        let result = verifier.run(EngineId::BoundedConcrete);
        assert_eq!(
            result.verdict,
            Verdict::Unsafe,
            "{}: concrete exploration did not reproduce the violation",
            bench.name
        );
    }
}

#[test]
fn concrete_baseline_finds_nothing_in_safe_benchmarks() {
    for bench in all() {
        if bench.expected != Expected::Safe {
            continue;
        }
        let verifier = Verifier::new(&bench.system, VerifierOptions::default()).unwrap();
        let result = verifier.run(EngineId::BoundedConcrete);
        // Parameterized safety cannot be concluded by the bounded engine,
        // but it must not find a (spurious) violation.
        assert_eq!(
            result.verdict,
            Verdict::Unknown,
            "{}: concrete exploration found a violation in a safe benchmark",
            bench.name
        );
    }
}
