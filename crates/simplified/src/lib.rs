#![warn(missing_docs)]

//! # parra-simplified — the simplified RA semantics (Section 3)
//!
//! The paper's core contribution: an equivalent-for-safety semantics for
//! parameterized systems `env(nocas) ‖ dis₁ ‖ … ‖ disₙ` that replaces the
//! unbounded timestamps of RA by the finite *timestamp abstraction*
//! `ℕ ⊎ ℕ⁺` with order `0 < 0⁺ < 1 < 1⁺ < …` (Section 3.4):
//!
//! * integer timestamps are *slots* for `dis` stores — at most one store
//!   per slot;
//! * `ts⁺` timestamps are *gaps* shared by arbitrarily many `env` stores —
//!   the abstraction of "clones of this message exist at arbitrarily many
//!   timestamps in this gap" (Infinite Supply, Lemma 3.3);
//! * loads of `env` messages perform **no timestamp check**, only view
//!   joins (with the loaded coordinate landing in the gap above the
//!   reader's view — the clone the reader "really" reads);
//! * `dis` CAS reads an integer-timestamped message at slot `s`, stores at
//!   slot `s+1`, and **closes** gap `s⁺` forever — the abstract shadow of
//!   concrete timestamp adjacency.
//!
//! Because `env` threads are unboundedly many and indistinguishable, the
//! set of reachable `env` thread configurations and generated `env`
//! messages only ever grows (the copycat argument behind Lemma 3.3). The
//! reachability engine ([`reach`]) therefore *saturates* the `env` part to
//! a fixpoint between `dis` steps and explores the finite `dis` state
//! space on top — precisely the structure the paper's Datalog encoding
//! (Section 4) exploits.
//!
//! [`depgraph`] builds the dependency graphs of Definition 1 from found
//! witness runs, with the cost function of Section 4.3 ([`cost`]) that
//! bounds how many `env` threads a bug needs, and minimal re-derivation in
//! the spirit of the compaction lemma (Lemma 4.5).

pub mod cost;
pub mod depgraph;
pub mod message;
pub mod reach;
pub mod state;
pub mod timestamp;
pub mod view;

pub use cost::cost_of_graph;
pub use depgraph::{DepGraph, MsgNode, MsgRef};
pub use message::{AMessage, Origin};
pub use reach::{ReachLimits, ReachOutcome, ReachReport, Reachability, SimpTarget};
pub use state::{Budget, SimpState};
pub use timestamp::ATime;
pub use view::AView;
