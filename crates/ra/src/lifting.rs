//! Timestamp lifting (Section 3.1, Lemma 3.1), executable.
//!
//! A [`Lifting`] is a collection `M = {μˣ}` of per-variable timestamp
//! transformations. It is *RA-valid* for a computation `ρ` when each `μˣ`
//! is strictly increasing with `μˣ(0) = 0`, and CAS (load, store) timestamp
//! pairs stay adjacent. Lemma 3.1 states that applying an RA-valid lifting
//! to an RA computation yields an RA computation — here that is a theorem
//! you can *run*: [`Lifting::apply`] transforms the transition labels and
//! replays them, failing if (and only if, per the lemma, never) some rule
//! premise breaks.

use crate::message::Message;
use crate::step::{Action, Transition};
use crate::timestamp::Timestamp;
use crate::trace::{ReplayError, Trace};
use crate::view::View;
use parra_program::ident::VarId;
use std::collections::BTreeMap;
use std::fmt;

/// Why a lifting is not RA-valid for a computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftingError {
    /// `μˣ(0) ≠ 0`.
    ZeroNotFixed {
        /// The offending variable.
        var: VarId,
    },
    /// `μˣ` is not strictly increasing on the occurring timestamps.
    NotStrictlyIncreasing {
        /// The offending variable.
        var: VarId,
        /// The smaller input timestamp.
        t1: Timestamp,
        /// The larger input timestamp mapped to a non-larger output.
        t2: Timestamp,
    },
    /// A CAS pair `(t, t+1)` on `var` is torn apart: `μˣ(t+1) ≠ μˣ(t)+1`.
    CasPairTorn {
        /// The offending variable.
        var: VarId,
        /// The load timestamp of the pair.
        load: Timestamp,
    },
    /// The lifted computation failed to replay. Per Lemma 3.1 this cannot
    /// happen for RA-valid liftings; it is reported for completeness (and
    /// exercised in tests with deliberately invalid liftings).
    Replay(ReplayError),
}

impl fmt::Display for LiftingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftingError::ZeroNotFixed { var } => write!(f, "μ^{var}(0) ≠ 0"),
            LiftingError::NotStrictlyIncreasing { var, t1, t2 } => {
                write!(f, "μ^{var} not strictly increasing between {t1} and {t2}")
            }
            LiftingError::CasPairTorn { var, load } => {
                write!(f, "CAS pair ({load}, {}) on {var} torn apart", load.succ())
            }
            LiftingError::Replay(e) => write!(f, "lifted computation invalid: {e}"),
        }
    }
}

impl std::error::Error for LiftingError {}

/// A per-variable timestamp transformation `M = {μˣ}`, represented
/// extensionally over the timestamps that actually occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifting {
    maps: Vec<BTreeMap<Timestamp, Timestamp>>,
}

impl Lifting {
    /// The identity lifting over `n_vars` variables.
    pub fn identity(n_vars: usize) -> Lifting {
        Lifting {
            maps: vec![BTreeMap::new(); n_vars],
        }
    }

    /// Builds a lifting by evaluating `f(x, t)` on every timestamp `t`
    /// occurring on `x` in `trace` (plus `0 ↦ 0`).
    pub fn from_fn<F: Fn(VarId, Timestamp) -> Timestamp>(trace: &Trace, f: F) -> Lifting {
        let n_vars = trace.instance().n_vars();
        let mut maps = vec![BTreeMap::new(); n_vars];
        for x in (0..n_vars).map(|i| VarId(i as u32)) {
            maps[x.index()].insert(Timestamp::ZERO, Timestamp::ZERO);
            for t in trace.timestamps_on(x) {
                maps[x.index()].insert(t, f(x, t));
            }
        }
        Lifting { maps }
    }

    /// The uniform spacing lifting `μˣ(t) = factor·t` — the canonical way
    /// to "make space for clones" (Section 3.3): with `factor = 2`, every
    /// odd slot becomes a hole.
    ///
    /// Only RA-valid for computations without CAS (uniform spacing tears
    /// CAS pairs apart); use [`Lifting::spacing_with_holes`] in general.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn spacing(trace: &Trace, factor: u64) -> Lifting {
        assert!(factor > 0, "spacing factor must be positive");
        Lifting::from_fn(trace, |_, t| Timestamp(t.0 * factor))
    }

    /// A spacing lifting that opens a hole directly below every message
    /// *except* CAS stores, whose timestamps must stay adjacent to their
    /// loads (Lemma 3.1, condition (2)). This is the "make space for
    /// clones" lifting that works for arbitrary computations.
    pub fn spacing_with_holes(trace: &Trace) -> Lifting {
        let n_vars = trace.instance().n_vars();
        let mut maps = vec![BTreeMap::new(); n_vars];
        for x in (0..n_vars).map(|i| VarId(i as u32)) {
            let pairs: std::collections::BTreeSet<(Timestamp, Timestamp)> =
                trace.cas_pairs_on(x).into_iter().collect();
            maps[x.index()].insert(Timestamp::ZERO, Timestamp::ZERO);
            let mut prev = Timestamp::ZERO;
            let mut cur = Timestamp::ZERO;
            for t in trace.timestamps_on(x) {
                // A CAS store must stay glued to its load; everything else
                // gets a hole below it.
                cur = if pairs.contains(&(prev, t)) {
                    cur.succ()
                } else {
                    Timestamp(cur.0 + 2)
                };
                maps[x.index()].insert(t, cur);
                prev = t;
            }
        }
        Lifting { maps }
    }

    /// `μˣ(t)`, defaulting to the identity on unmapped timestamps.
    pub fn map(&self, x: VarId, t: Timestamp) -> Timestamp {
        self.maps[x.index()].get(&t).copied().unwrap_or(t)
    }

    /// Checks RA-validity for `trace` (Section 3.1): strictly increasing
    /// per variable, `μˣ(0) = 0`, CAS pairs stay adjacent.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validate(&self, trace: &Trace) -> Result<(), LiftingError> {
        let n_vars = trace.instance().n_vars();
        for x in (0..n_vars).map(|i| VarId(i as u32)) {
            if !self.map(x, Timestamp::ZERO).is_zero() {
                return Err(LiftingError::ZeroNotFixed { var: x });
            }
            // Strictly increasing over {0} ∪ TS(ρ)|x.
            let mut occurring: Vec<Timestamp> = trace.timestamps_on(x).into_iter().collect();
            occurring.insert(0, Timestamp::ZERO);
            for w in occurring.windows(2) {
                if self.map(x, w[0]) >= self.map(x, w[1]) {
                    return Err(LiftingError::NotStrictlyIncreasing {
                        var: x,
                        t1: w[0],
                        t2: w[1],
                    });
                }
            }
            for (load, store) in trace.cas_pairs_on(x) {
                debug_assert_eq!(store, load.succ());
                if self.map(x, store) != self.map(x, load).succ() {
                    return Err(LiftingError::CasPairTorn { var: x, load });
                }
            }
        }
        Ok(())
    }

    /// Transforms a view by `M` (`M(vw) = λx. μˣ(vw(x))`).
    pub fn lift_view(&self, view: &View) -> View {
        View::from_times(view.iter().map(|(x, t)| self.map(x, t)).collect())
    }

    /// Transforms a message by transforming its view.
    pub fn lift_message(&self, msg: &Message) -> Message {
        Message::new(msg.var, msg.val, self.lift_view(&msg.view))
    }

    /// Transforms a transition label.
    pub fn lift_transition(&self, t: &Transition) -> Transition {
        let action = match &t.action {
            Action::Silent => Action::Silent,
            Action::Load(m) => Action::Load(self.lift_message(m)),
            Action::Store(m) => Action::Store(self.lift_message(m)),
            Action::Cas { load, store } => Action::Cas {
                load: self.lift_message(load),
                store: self.lift_message(store),
            },
        };
        Transition {
            thread: t.thread,
            edge: t.edge,
            action,
        }
    }

    /// Lemma 3.1 in executable form: validates the lifting and replays the
    /// lifted computation `M(ρ)`.
    ///
    /// # Errors
    ///
    /// Returns a validity violation, or a replay error (which, per the
    /// lemma, RA-valid liftings never produce).
    pub fn apply(&self, trace: &Trace) -> Result<Trace, LiftingError> {
        self.validate(trace)?;
        let lifted: Vec<Transition> = trace
            .transitions()
            .iter()
            .map(|t| self.lift_transition(t))
            .collect();
        Trace::from_transitions(trace.instance().clone(), lifted).map_err(LiftingError::Replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Instance, ThreadId};
    use parra_program::builder::SystemBuilder;
    use parra_program::system::ParamSystem;

    /// env: x := 1; y := 1  ‖  dis: cas(x, 0, 1) — gives CAS pairs.
    fn sys() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        env.store(x, 1).store(y, 1);
        let env = env.finish();
        let mut d = b.program("d");
        d.cas(x, 0, 1);
        let d = d.finish();
        b.build(env, vec![d])
    }

    /// CAS-free variant: env: x := 1; y := 1  ‖  dis: y := 0.
    fn casfree_sys() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        env.store(x, 1).store(y, 1);
        let env = env.finish();
        let mut d = b.program("d");
        d.store(y, 0);
        let d = d.finish();
        b.build(env, vec![d])
    }

    fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
        let mut s = seed;
        move |k| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        }
    }

    #[test]
    fn spacing_lifting_is_valid_and_applies() {
        let tr = Trace::random(Instance::new(casfree_sys(), 2), 15, lcg(7));
        let lift = Lifting::spacing(&tr, 3);
        let lifted = lift.apply(&tr).expect("Lemma 3.1");
        assert_eq!(lifted.len(), tr.len());
        // Final memory has same (var, val) multiset, scaled timestamps.
        for m in tr.last().memory.iter() {
            let lm = lift.lift_message(m);
            assert!(lifted.last().memory.contains(&lm));
        }
    }

    #[test]
    fn spacing_with_holes_preserves_cas_pairs() {
        // The dis CAS gives a (0, 1) pair on x; the hole-opening lifting
        // must keep it adjacent and still be RA-valid for the whole trace.
        for seed in 0..10 {
            let tr = Trace::random(Instance::new(sys(), 2), 20, lcg(100 + seed));
            let lift = Lifting::spacing_with_holes(&tr);
            let lifted = lift.apply(&tr).expect("Lemma 3.1 with CAS");
            assert_eq!(lifted.len(), tr.len());
            for x in [VarId(0), VarId(1)] {
                for (load, store) in tr.cas_pairs_on(x) {
                    assert_eq!(lift.map(x, store), lift.map(x, load).succ());
                }
                // Every non-CAS-store timestamp has a free hole below it.
                let pairs: std::collections::BTreeSet<_> = tr.cas_pairs_on(x).into_iter().collect();
                let image: std::collections::BTreeSet<_> = tr
                    .timestamps_on(x)
                    .into_iter()
                    .map(|t| lift.map(x, t))
                    .collect();
                for t in tr.timestamps_on(x) {
                    let glued = pairs.iter().any(|&(_, s)| s == t);
                    if !glued {
                        // Non-glued timestamps map to prev+2, so the slot
                        // below is a hole (and never 0).
                        let hole = Timestamp(lift.map(x, t).0 - 1);
                        assert!(!hole.is_zero());
                        assert!(!image.contains(&hole));
                    }
                }
            }
        }
    }

    #[test]
    fn identity_lifting_is_noop() {
        let tr = Trace::random(Instance::new(sys(), 1), 10, lcg(3));
        let lift = Lifting::identity(tr.instance().n_vars());
        let lifted = lift.apply(&tr).unwrap();
        assert_eq!(lifted.last(), tr.last());
    }

    #[test]
    fn cas_tearing_rejected() {
        // Build a trace in which the dis thread performs cas(x,0,1):
        // the pair is (0, 1). A lifting mapping 1 ↦ 5 on x tears it.
        let inst = Instance::new(sys(), 0);
        let mut tr = Trace::new(inst);
        let succs = crate::step::monotone_successors(tr.instance(), tr.last());
        assert_eq!(succs.len(), 1);
        tr.push(succs[0].clone()).unwrap();
        assert_eq!(tr.cas_pairs_on(parra_program::ident::VarId(0)).len(), 1);
        let lift = Lifting::from_fn(&tr, |_, t| Timestamp(t.0 * 5));
        let err = lift.validate(&tr).unwrap_err();
        assert!(matches!(err, LiftingError::CasPairTorn { .. }));
    }

    #[test]
    fn zero_must_be_fixed() {
        let tr = Trace::random(Instance::new(sys(), 1), 5, lcg(9));
        let mut lift = Lifting::from_fn(&tr, |_, t| t);
        lift.maps[0].insert(Timestamp::ZERO, Timestamp(1));
        let err = lift.validate(&tr).unwrap_err();
        assert!(matches!(err, LiftingError::ZeroNotFixed { .. }));
    }

    #[test]
    fn non_monotone_rejected() {
        let inst = Instance::new(sys(), 2);
        // Two env threads store to x at ts 1 and 2.
        let tr = {
            let mut tr = Trace::new(inst);
            let s = crate::step::monotone_successors(tr.instance(), tr.last());
            let store_x: Vec<_> = s
                .into_iter()
                .filter(|t| t.thread == ThreadId(0) || t.thread == ThreadId(1))
                .collect();
            tr.push(store_x[0].clone()).unwrap();
            let s2 = crate::step::monotone_successors(tr.instance(), tr.last());
            let next = s2
                .into_iter()
                .find(|t| {
                    t.thread != tr.transitions()[0].thread && matches!(t.action, Action::Store(_))
                })
                .unwrap();
            tr.push(next).unwrap();
            tr
        };
        // Swap the order of timestamps 1 and 2 on x (or on y, wherever the
        // two stores landed): find a variable with ≥2 timestamps.
        let n_vars = tr.instance().n_vars();
        let var = (0..n_vars)
            .map(|i| VarId(i as u32))
            .find(|&x| tr.timestamps_on(x).len() >= 2);
        if let Some(x) = var {
            let lift = Lifting::from_fn(&tr, |y, t| {
                if y == x {
                    Timestamp(100 - t.0) // order-reversing
                } else {
                    t
                }
            });
            let err = lift.validate(&tr).unwrap_err();
            assert!(matches!(err, LiftingError::NotStrictlyIncreasing { .. }));
        }
    }

    #[test]
    fn lift_view_maps_per_variable() {
        let tr = Trace::random(Instance::new(sys(), 1), 8, lcg(11));
        let lift = Lifting::spacing(&tr, 2);
        let v = View::from_times(vec![Timestamp(1), Timestamp(3)]);
        let lv = lift.lift_view(&v);
        // Timestamps that occurred are doubled; unmapped ones identity.
        for (x, t) in v.iter() {
            let expected = if tr.timestamps_on(x).contains(&t) {
                Timestamp(t.0 * 2)
            } else {
                t
            };
            assert_eq!(lv.get(x), expected);
        }
    }
}
