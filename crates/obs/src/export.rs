//! Prometheus text exposition for a [`MetricsSnapshot`].
//!
//! Renders the classic `text/plain; version=0.0.4` format so a future
//! `parra serve` (ROADMAP item 1) can expose per-request metrics with
//! zero extra work, and `--metrics-out` can drop a scrape-ready file
//! next to a batch run. Mapping:
//!
//! - counter `engine/states` → `parra_engine_states <v>` (TYPE counter)
//! - gauge `g` → `parra_g <value>` and `parra_g_peak <peak>` (TYPE gauge)
//! - histogram `h` → a summary: `parra_h{quantile="0.5|0.9|0.99"}`
//!   (upper-bound estimates from the power-of-two buckets), plus
//!   `parra_h_sum`, `parra_h_count`, and `parra_h_max`.
//!
//! Metric names are sanitized by mapping every character outside
//! `[a-zA-Z0-9_]` to `_` and prefixing `parra_`.

use crate::metrics::MetricsSnapshot;

/// Maps a parra metric name to a legal Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("parra_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snap` as Prometheus text exposition format.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, g) in &snap.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.value));
        out.push_str(&format!("# TYPE {n}_peak gauge\n{n}_peak {}\n", g.peak));
    }
    for (name, h) in &snap.hists {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
        out.push_str(&format!("# TYPE {n}_max gauge\n{n}_max {}\n", h.max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Recorder};

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("engine/states"), "parra_engine_states");
        assert_eq!(
            sanitize_name("datalog/atoms/rf-edge"),
            "parra_datalog_atoms_rf_edge"
        );
        assert_eq!(sanitize_name("plain_name9"), "parra_plain_name9");
    }

    #[test]
    fn renders_all_metric_kinds() {
        let rec = Recorder::enabled(Level::Summary);
        rec.counter("engine/states").add(7);
        rec.gauge("queue").set(3);
        rec.gauge("queue").set(1);
        for v in 1..=100u64 {
            rec.histogram("depth").record(v);
        }
        let text = render_prometheus(&rec.snapshot());
        assert!(text.contains("# TYPE parra_engine_states counter\nparra_engine_states 7\n"));
        assert!(text.contains("parra_queue 1\n"));
        assert!(text.contains("parra_queue_peak 3\n"));
        assert!(text.contains("# TYPE parra_depth summary\n"));
        assert!(text.contains("parra_depth{quantile=\"0.5\"} 63\n"));
        assert!(text.contains("parra_depth_sum 5050\n"));
        assert!(text.contains("parra_depth_count 100\n"));
        assert!(text.contains("parra_depth_max 100\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            value.parse::<f64>().expect("numeric value");
        }
    }
}
