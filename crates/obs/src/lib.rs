#![warn(missing_docs)]

//! # parra-obs — zero-dependency observability
//!
//! Metrics, spans, traces, and progress heartbeats for the verification
//! engines, built on `std` alone (the build environment is offline). The
//! central type is [`Recorder`]: a cheap, cloneable handle that is either
//! *enabled* (backed by a shared registry + span store) or *disabled*
//! (`Recorder::disabled()`, the default), in which case every operation
//! is a branch-on-`None` no-op.
//!
//! | need | API |
//! |---|---|
//! | count events on a hot path | [`Recorder::counter`] → [`Counter::incr`] |
//! | track a level + its peak | [`Recorder::gauge`] → [`Gauge::set`] |
//! | distribution of a quantity | [`Recorder::histogram`] → [`Histogram::record`] |
//! | time a phase, build the tree | [`Recorder::span`] (RAII guard) |
//! | long-run progress on stderr | [`Recorder::heartbeat`] (rate-limited) |
//! | `chrome://tracing` file | [`Recorder::chrome_trace`] |
//!
//! Level selection follows the `PARRA_LOG` environment variable
//! (`off` | `summary` | `debug`, see [`Recorder::from_env`]); the CLI's
//! `--stats` flag forces `summary`.
//!
//! # Example
//!
//! ```
//! use parra_obs::{Level, Recorder};
//!
//! let rec = Recorder::enabled(Level::Summary);
//! let states = rec.counter("engine/states");
//! {
//!     let _span = rec.span("engine:search");
//!     states.incr();
//!     states.incr();
//! }
//! assert_eq!(rec.snapshot().counters["engine/states"], 2);
//! assert!(rec.render_tree().contains("engine:search"));
//!
//! // Disabled: same calls, no work, no output.
//! let off = Recorder::disabled();
//! off.counter("engine/states").incr();
//! assert!(off.snapshot().counters.is_empty());
//! ```

pub mod events;
pub mod export;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod span;
pub mod trace;

pub use events::{Event, EventValue, SCHEMA_VERSION};
pub use metrics::{Counter, Gauge, GaugeSnapshot, HistSnapshot, Histogram, MetricsSnapshot};
pub use phase::{Phase, PhaseGuard, PhaseTimer};
pub use span::{ArgValue, SpanRecord};
pub use trace::CounterSeries;

use metrics::Registry;
use span::SpanStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Observability verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Everything off (the recorder is disabled).
    #[default]
    Off,
    /// Metrics, top-level spans, heartbeats.
    Summary,
    /// Additionally fine-grained spans (per world / per guess) and
    /// debug logging.
    Debug,
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Ok(Level::Off),
            "summary" | "1" | "on" | "info" => Ok(Level::Summary),
            "debug" | "2" | "trace" => Ok(Level::Debug),
            other => Err(format!("unknown log level `{other}` (off|summary|debug)")),
        }
    }
}

/// State shared by a recorder and all its scoped views.
#[derive(Debug)]
struct Shared {
    epoch: Instant,
    metrics: Registry,
    spans: SpanStore,
    heartbeat_interval_us: u64,
    heartbeat_last: AtomicU64,
    series: Mutex<Vec<CounterSeries>>,
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct Inner {
    level: Level,
    prefix: String,
    shared: Arc<Shared>,
}

/// The observability handle. Cloning is cheap (an `Arc`); clones share
/// the same registry, span store, and heartbeat limiter.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A disabled recorder: every operation is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder at `level` (`Level::Off` yields a disabled one).
    pub fn enabled(level: Level) -> Recorder {
        if level == Level::Off {
            return Recorder::disabled();
        }
        let interval_ms = std::env::var("PARRA_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1000);
        Recorder {
            inner: Some(Arc::new(Inner {
                level,
                prefix: String::new(),
                shared: Arc::new(Shared {
                    epoch: Instant::now(),
                    metrics: Registry::default(),
                    spans: SpanStore::new(),
                    heartbeat_interval_us: interval_ms.saturating_mul(1000),
                    heartbeat_last: AtomicU64::new(0),
                    series: Mutex::new(Vec::new()),
                    events: Mutex::new(Vec::new()),
                }),
            })),
        }
    }

    /// A recorder configured from the `PARRA_LOG` environment variable
    /// (`off` | `summary` | `debug`; unset or unparsable means off).
    pub fn from_env() -> Recorder {
        let level = std::env::var("PARRA_LOG")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Level::Off);
        Recorder::enabled(level)
    }

    /// Whether the recorder records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active level ([`Level::Off`] when disabled).
    pub fn level(&self) -> Level {
        self.inner.as_ref().map(|i| i.level).unwrap_or(Level::Off)
    }

    /// A view of the same recorder whose metric names gain `prefix` —
    /// used to give each engine run its own namespace while sharing one
    /// span store and trace.
    pub fn scoped(&self, prefix: &str) -> Recorder {
        match &self.inner {
            None => Recorder::disabled(),
            Some(inner) => Recorder {
                inner: Some(Arc::new(Inner {
                    level: inner.level,
                    prefix: format!("{}{}", inner.prefix, prefix),
                    shared: Arc::clone(&inner.shared),
                })),
            },
        }
    }

    /// A counter named `name` (under this recorder's scope prefix).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::default(),
            Some(i) => i.shared.metrics.counter(&format!("{}{}", i.prefix, name)),
        }
    }

    /// A gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::default(),
            Some(i) => i.shared.metrics.gauge(&format!("{}{}", i.prefix, name)),
        }
    }

    /// A histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::default(),
            Some(i) => i.shared.metrics.histogram(&format!("{}{}", i.prefix, name)),
        }
    }

    /// Opens a span; it closes when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { opened: None },
            Some(i) => {
                let idx = i.shared.spans.open(name, i.shared.epoch);
                SpanGuard {
                    opened: Some((Arc::clone(&i.shared), idx)),
                }
            }
        }
    }

    /// Opens a span only at [`Level::Debug`] — for fine-grained phases
    /// (per world, per guess) that would flood a summary trace.
    pub fn span_debug(&self, name: &str) -> SpanGuard {
        if self.level() >= Level::Debug {
            self.span(name)
        } else {
            SpanGuard { opened: None }
        }
    }

    /// Emits a rate-limited progress line to stderr; `make` is only
    /// called when a heartbeat is actually due (at most once per
    /// `PARRA_HEARTBEAT_MS`, default 1000).
    #[inline]
    pub fn heartbeat(&self, make: impl FnOnce() -> String) {
        let Some(i) = &self.inner else { return };
        let s = &i.shared;
        let now = s.epoch.elapsed().as_micros() as u64;
        let last = s.heartbeat_last.load(Ordering::Relaxed);
        if now.saturating_sub(last) < s.heartbeat_interval_us {
            return;
        }
        if s.heartbeat_last
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!("[parra {:>7.1}s] {}", now as f64 / 1e6, make());
        }
    }

    /// Logs a line to stderr at `Level::Debug`.
    pub fn debug(&self, make: impl FnOnce() -> String) {
        if self.level() >= Level::Debug {
            eprintln!("[parra debug] {}", make());
        }
    }

    /// Records a named value-over-time series (rendered as Chrome counter
    /// events in the trace and exposed in reports).
    pub fn record_series(&self, name: &str, values: Vec<u64>) {
        let Some(i) = &self.inner else { return };
        let now = i.shared.epoch.elapsed().as_micros() as u64;
        i.shared.series.lock().unwrap().push(CounterSeries {
            name: format!("{}{}", i.prefix, name),
            start_us: now.saturating_sub(values.len() as u64),
            end_us: now,
            values,
        });
    }

    /// All recorded series.
    pub fn series(&self) -> Vec<CounterSeries> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.shared.series.lock().unwrap().clone(),
        }
    }

    /// Appends a flight-recorder event with deterministic `fields` only.
    ///
    /// Call this **only from sequential merge/commit points** (never from
    /// worker threads) with fields that are identical at every thread
    /// count — that is the event-log determinism contract (see
    /// [`events`]).
    pub fn event(&self, kind: &str, fields: &[(&str, EventValue)]) {
        self.event_with(kind, fields, &[]);
    }

    /// Appends a flight-recorder event with deterministic `fields` plus
    /// `volatile` measurements (durations, headroom, heap) that are
    /// exempt from the determinism contract.
    pub fn event_with(&self, kind: &str, fields: &[(&str, EventValue)], volatile: &[(&str, u64)]) {
        let Some(i) = &self.inner else { return };
        let t_us = i.shared.epoch.elapsed().as_micros() as u64;
        let mut log = i.shared.events.lock().unwrap();
        let seq = log.len() as u64;
        log.push(Event {
            seq,
            t_us,
            scope: i.prefix.clone(),
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            volatile: volatile.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// All recorded flight-recorder events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.shared.events.lock().unwrap().clone(),
        }
    }

    /// The event log rendered as schema-versioned JSONL; `extra`
    /// key/value pairs (e.g. `("file", path)`) are added to every line.
    pub fn render_events_jsonl(&self, extra: &[(&str, &str)]) -> String {
        events::render_jsonl(&self.events(), extra)
    }

    /// Writes the event log as JSONL to `path`.
    pub fn write_events(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render_events_jsonl(&[]))
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(i) => i.shared.metrics.snapshot(),
        }
    }

    /// All finished (and still-open) spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => i.shared.spans.records(),
        }
    }

    /// The indented span tree (empty string when disabled).
    pub fn render_tree(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(i) => i.shared.spans.render_tree(),
        }
    }

    /// The full Chrome-trace JSON document (spans + counter series).
    pub fn chrome_trace(&self) -> String {
        trace::render_chrome_trace(&self.spans(), &self.series())
    }

    /// Writes the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace())
    }
}

/// RAII guard for an open span; the span closes when this drops.
#[derive(Debug)]
pub struct SpanGuard {
    opened: Option<(Arc<Shared>, usize)>,
}

impl SpanGuard {
    /// Attaches an integer argument to the span.
    pub fn arg_u64(&self, key: &str, val: u64) {
        if let Some((inner, idx)) = &self.opened {
            inner.spans.add_arg(*idx, key, ArgValue::U64(val));
        }
    }

    /// Attaches a string argument to the span.
    pub fn arg_str(&self, key: &str, val: &str) {
        if let Some((inner, idx)) = &self.opened {
            inner
                .spans
                .add_arg(*idx, key, ArgValue::Str(val.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, idx)) = self.opened.take() {
            inner.spans.close(idx, inner.epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("c").add(3);
        rec.gauge("g").set(3);
        rec.histogram("h").record(3);
        let _g = rec.span("s");
        rec.heartbeat(|| unreachable!("disabled recorder must not format"));
        rec.record_series("s", vec![1]);
        rec.event("e", &[("k", 1u64.into())]);
        assert!(rec.events().is_empty());
        assert_eq!(rec.render_events_jsonl(&[]), "");
        assert!(rec.snapshot().counters.is_empty());
        assert!(rec.spans().is_empty());
        assert!(rec.series().is_empty());
        assert_eq!(rec.render_tree(), "");
    }

    #[test]
    fn level_off_means_disabled() {
        assert!(!Recorder::enabled(Level::Off).is_enabled());
        assert!(Recorder::enabled(Level::Summary).is_enabled());
    }

    #[test]
    fn level_parsing() {
        assert_eq!("summary".parse::<Level>().unwrap(), Level::Summary);
        assert_eq!("DEBUG".parse::<Level>().unwrap(), Level::Debug);
        assert_eq!("off".parse::<Level>().unwrap(), Level::Off);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn span_tree_via_recorder() {
        let rec = Recorder::enabled(Level::Summary);
        {
            let verify = rec.span("verify");
            verify.arg_str("file", "x.ra");
            {
                let _classify = rec.span("classify");
            }
            {
                let engine = rec.span("engine:simplified-reach");
                engine.arg_u64("states", 12);
            }
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        let tree = rec.render_tree();
        assert!(tree.contains("verify"));
        assert!(tree.contains("  classify"));
        assert!(tree.contains("states: 12"));
        // And the chrome trace is one valid JSON document.
        assert!(json::parse(&rec.chrome_trace()).is_ok());
    }

    #[test]
    fn debug_spans_skipped_at_summary() {
        let rec = Recorder::enabled(Level::Summary);
        {
            let _s = rec.span_debug("world-0");
        }
        assert!(rec.spans().is_empty());
        let rec = Recorder::enabled(Level::Debug);
        {
            let _s = rec.span_debug("world-0");
        }
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn events_carry_scope_and_dense_sequence_numbers() {
        let rec = Recorder::enabled(Level::Summary);
        let engine = rec.scoped("reach/");
        rec.event("run_start", &[]);
        engine.event_with(
            "wave",
            &[("wave", 0u64.into()), ("worlds", 3u64.into())],
            &[("heap_bytes", 512)],
        );
        engine.event("run_end", &[("verdict", "safe".into())]);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[1].scope, "reach/");
        assert_eq!(events[1].volatile, vec![("heap_bytes".to_string(), 512)]);
        // JSONL lines all pass the schema check.
        let text = rec.render_events_jsonl(&[("file", "x.ra")]);
        for line in text.lines() {
            events::check_line(line).expect("schema-valid line");
        }
    }

    #[test]
    fn scoped_views_share_the_registry_under_a_prefix() {
        let rec = Recorder::enabled(Level::Summary);
        let scoped = rec.scoped("engine/");
        scoped.counter("states").add(2);
        scoped.scoped("sub/").counter("x").incr();
        // Visible from the root recorder, under the full prefix.
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("engine/states"), Some(&2));
        assert_eq!(snap.counters.get("engine/sub/x"), Some(&1));
        // Spans from scoped views land in the same store.
        {
            let _s = scoped.span("from-scope");
        }
        assert_eq!(rec.spans().len(), 1);
        // Counter deltas isolate a prefix.
        let before = MetricsSnapshot::default();
        let deltas = snap.counter_deltas(&before, "engine/");
        assert!(deltas.contains(&("states".to_string(), 2)));
    }
}
