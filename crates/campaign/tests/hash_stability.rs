//! Content-key stability properties, seeded by the fuzz generator.
//!
//! The campaign key must be a function of *what is verified* — the
//! parsed system, the engine selection, the verdict-relevant options —
//! and nothing else. These tests drive `SystemGen` through the planner
//! and the hash directly to pin the invariances down:
//!
//! * invariant under input list order, file renames, and
//!   whitespace-preserving re-serialization (round-trips through the
//!   pretty-printer);
//! * changed by any change to the system text, the engine id, or a
//!   verdict-relevant option.

use parra_campaign::{content_key, plan, CampaignOptions, Manifest, Store};
use parra_core::verify::VerifierOptions;
use parra_core::EngineId;
use parra_fuzz::gen::{GenConfig, SystemGen};
use parra_program::parser::parse_system;
use parra_program::pretty::system_to_string;
use parra_simplified::reach::ReachLimits;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const SEEDS: u64 = 25;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("parra-hash-stability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copts() -> CampaignOptions {
    CampaignOptions {
        engines: vec![EngineId::SimplifiedReach],
        race: false,
        engine_label: EngineId::SimplifiedReach.to_string(),
        options: VerifierOptions::default(),
        shard: None,
    }
}

fn store_for(dir: &Path, copts: &CampaignOptions, inputs: &[String]) -> Store {
    Store::create(
        &dir.join("store"),
        &Manifest {
            engine: copts.engine_label.clone(),
            options_fp: copts.options_fp(),
            unroll: None,
            timeout_us: None,
            memory_budget: None,
            shard: None,
            inputs: inputs.to_vec(),
        },
    )
    .unwrap()
}

/// Re-serializing through the pretty-printer and perturbing the raw
/// file's whitespace never moves the key; a different system always
/// does.
#[test]
fn key_survives_reserialization_and_whitespace() {
    let gen = SystemGen::new(GenConfig::agreement());
    let mut keys = BTreeMap::new();
    for seed in 0..SEEDS {
        let case = gen.case(seed);
        let canonical = system_to_string(&case.sys);
        // Pretty-printing is canonical: parse ∘ print is idempotent.
        let reparsed = system_to_string(&parse_system(&canonical).unwrap());
        assert_eq!(
            canonical, reparsed,
            "seed {seed}: pretty-print not a fixpoint"
        );
        // A whitespace-mangled source parses back to the same canonical
        // text, hence the same key.
        let mangled = format!("\n\n  {}", canonical.replace('\n', "\n\n  "));
        let remangled = system_to_string(&parse_system(&mangled).unwrap());
        assert_eq!(
            canonical, remangled,
            "seed {seed}: whitespace changed the key input"
        );
        keys.insert(content_key(&canonical, "simplified-reach", "fp"), seed);
    }
    // Distinct systems get distinct keys (collisions across a 128-bit
    // digest would point at a hashing bug, not bad luck).
    assert_eq!(keys.len() as u64, SEEDS, "distinct seeds collided");
}

/// The planner assigns the same key to the same content regardless of
/// the file's name or its position in the input list.
#[test]
fn plan_keys_are_order_and_name_invariant() {
    let gen = SystemGen::new(GenConfig::agreement());
    let dir = scratch("plan");
    let mut texts = Vec::new();
    for seed in 0..5 {
        texts.push(system_to_string(&gen.case(seed).sys));
    }
    let write_all = |names: &[String]| -> Vec<String> {
        names
            .iter()
            .zip(&texts)
            .map(|(name, text)| {
                let p = dir.join(name);
                std::fs::write(&p, text).unwrap();
                p.display().to_string()
            })
            .collect()
    };
    let copts = copts();

    let forward = write_all(&(0..5).map(|i| format!("sys{i}.ra")).collect::<Vec<_>>());
    let store = store_for(&dir, &copts, &forward);
    let plan_fwd = plan(&forward, &store, &copts).unwrap();

    let mut reversed = forward.clone();
    reversed.reverse();
    let plan_rev = plan(&reversed, &store, &copts).unwrap();
    for e in &plan_fwd {
        let key_rev = &plan_rev
            .iter()
            .find(|r| r.input == e.input)
            .expect("same inputs planned")
            .key;
        assert_eq!(&e.key, key_rev, "input order moved the key of {}", e.input);
    }

    // Same content under fresh names: keys unchanged, pairwise.
    let renamed = write_all(
        &(0..5)
            .map(|i| format!("renamed-{i}.ra"))
            .collect::<Vec<_>>(),
    );
    let plan_ren = plan(&renamed, &store, &copts).unwrap();
    for (a, b) in plan_fwd.iter().zip(&plan_ren) {
        assert_eq!(
            a.key, b.key,
            "renaming {} -> {} moved the key",
            a.input, b.input
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Each key component matters: system text, engine id, and any
/// verdict-relevant option each move the key on their own.
#[test]
fn key_tracks_every_component() {
    let gen = SystemGen::new(GenConfig::agreement());
    let base_opts = VerifierOptions::default();
    for seed in 0..SEEDS {
        let canonical = system_to_string(&gen.case(seed).sys);
        let other = system_to_string(&gen.case(seed + SEEDS).sys);
        let fp = base_opts.fingerprint();
        let key = content_key(&canonical, "all-engines", &fp);
        assert_ne!(
            key,
            content_key(&other, "all-engines", &fp),
            "seed {seed}: system text did not move the key"
        );
        assert_ne!(
            key,
            content_key(&canonical, "race", &fp),
            "seed {seed}: engine id did not move the key"
        );
        let widened = VerifierOptions {
            reach_limits: ReachLimits {
                max_states: base_opts.reach_limits.max_states + 1,
                ..base_opts.reach_limits
            },
            ..base_opts.clone()
        };
        assert_ne!(
            key,
            content_key(&canonical, "all-engines", &widened.fingerprint()),
            "seed {seed}: a verdict-relevant option did not move the key"
        );
        // Non-verdict-relevant knobs (threads, budgets) keep the key.
        let rescheduled = VerifierOptions {
            threads: base_opts.threads + 3,
            timeout: Some(std::time::Duration::from_secs(1)),
            memory_budget: Some(1 << 30),
            ..base_opts.clone()
        };
        assert_eq!(
            key,
            content_key(&canonical, "all-engines", &rescheduled.fingerprint()),
            "seed {seed}: a scheduling knob moved the key"
        );
    }
}
