//! Thread views `View = Var → Time`.
//!
//! A view maps every shared variable to the timestamp of the most recent
//! event the thread has observed on it. Views are joined pointwise when
//! loading (`vw ⊔ vw' = λx. max(vw(x), vw'(x))`), and a store raises exactly
//! the stored variable (`vw <ₓ vw'`).

use crate::timestamp::Timestamp;
use parra_program::ident::VarId;
use std::fmt;

/// A view `vw : Var → Time`, represented densely over `n_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View {
    times: Vec<Timestamp>,
}

impl View {
    /// The zero view `vw₀` over `n_vars` variables (all timestamps 0).
    pub fn zero(n_vars: usize) -> View {
        View {
            times: vec![Timestamp::ZERO; n_vars],
        }
    }

    /// Builds a view from explicit timestamps.
    pub fn from_times(times: Vec<Timestamp>) -> View {
        View { times }
    }

    /// The timestamp for variable `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn get(&self, x: VarId) -> Timestamp {
        self.times[x.index()]
    }

    /// Sets the timestamp for variable `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn set(&mut self, x: VarId, t: Timestamp) {
        self.times[x.index()] = t;
    }

    /// Returns a copy with `x ↦ t` — the paper's `vw[x ↦ t]`.
    pub fn with(&self, x: VarId, t: Timestamp) -> View {
        let mut v = self.clone();
        v.set(x, t);
        v
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the view covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Pointwise join `vw ⊔ vw' = λx. max(vw(x), vw'(x))`.
    ///
    /// # Panics
    ///
    /// Panics if the views have different lengths.
    pub fn join(&self, other: &View) -> View {
        assert_eq!(self.len(), other.len(), "joining views of different arity");
        View {
            times: self
                .times
                .iter()
                .zip(&other.times)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// The pointwise order `vw ⊑ vw'` (every coordinate at most).
    pub fn leq(&self, other: &View) -> bool {
        self.len() == other.len() && self.times.iter().zip(&other.times).all(|(a, b)| a <= b)
    }

    /// The store relation `vw <ₓ vw'`: strictly raised on `x`, equal
    /// elsewhere.
    pub fn lt_x(&self, other: &View, x: VarId) -> bool {
        self.len() == other.len()
            && self.get(x) < other.get(x)
            && self
                .times
                .iter()
                .zip(&other.times)
                .enumerate()
                .all(|(i, (a, b))| i == x.index() || a == b)
    }

    /// Iterates over `(variable, timestamp)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Timestamp)> + '_ {
        self.times
            .iter()
            .enumerate()
            .map(|(i, &t)| (VarId(i as u32), t))
    }

    /// Whether every coordinate is zero.
    pub fn is_zero(&self) -> bool {
        self.times.iter().all(|t| t.is_zero())
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ts: &[u64]) -> View {
        View::from_times(ts.iter().map(|&t| Timestamp(t)).collect())
    }

    #[test]
    fn zero_view() {
        let z = View::zero(3);
        assert!(z.is_zero());
        assert_eq!(z.get(VarId(2)), Timestamp::ZERO);
    }

    #[test]
    fn join_is_pointwise_max() {
        let a = v(&[1, 5, 0]);
        let b = v(&[2, 3, 0]);
        assert_eq!(a.join(&b), v(&[2, 5, 0]));
        // join is commutative and idempotent
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = v(&[1, 5]);
        let b = v(&[2, 3]);
        let j = a.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        // anything above both is above the join
        let u = v(&[2, 5]);
        assert!(j.leq(&u));
    }

    #[test]
    fn lt_x_requires_strict_raise_on_x_only() {
        let a = v(&[1, 2]);
        assert!(a.lt_x(&v(&[3, 2]), VarId(0)));
        assert!(!a.lt_x(&v(&[1, 2]), VarId(0))); // not raised
        assert!(!a.lt_x(&v(&[3, 3]), VarId(0))); // other coord changed
        assert!(!a.lt_x(&v(&[0, 2]), VarId(0))); // lowered
    }

    #[test]
    fn with_is_persistent() {
        let a = v(&[0, 0]);
        let b = a.with(VarId(1), Timestamp(7));
        assert_eq!(a.get(VarId(1)), Timestamp(0));
        assert_eq!(b.get(VarId(1)), Timestamp(7));
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn join_arity_mismatch_panics() {
        let _ = v(&[0]).join(&v(&[0, 0]));
    }

    #[test]
    fn display() {
        assert_eq!(v(&[0, 10]).to_string(), "⟨0,10⟩");
    }
}
