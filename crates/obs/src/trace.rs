//! Chrome-trace / Perfetto output.
//!
//! Renders a [`SpanStore`] as the Trace Event Format's JSON array: one
//! complete (`"ph":"X"`) event per finished span, one record per line, so
//! the file both loads in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)
//! and greps like JSONL. Counter (`"ph":"C"`) series can be appended for
//! recorded time series such as the Cache Datalog occupancy curve.

use crate::json::{write_escaped, ObjWriter};
use crate::span::{ArgValue, SpanRecord};

/// Renders spans (and optional counter series) as a Trace Event Format
/// JSON array, one event per line.
pub fn render_chrome_trace(spans: &[SpanRecord], series: &[CounterSeries]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&event);
    };
    push(process_name_event(), &mut out);
    for span in spans {
        let Some(dur) = span.dur_us else { continue };
        let mut w = ObjWriter::new();
        w.str_field("name", &span.name);
        w.str_field("cat", "parra");
        w.str_field("ph", "X");
        w.num_field("ts", span.start_us);
        w.num_field("dur", dur);
        w.num_field("pid", 1);
        w.num_field("tid", span.tid);
        if !span.args.is_empty() {
            let mut args = String::from("{");
            for (i, (k, v)) in span.args.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                write_escaped(&mut args, k);
                args.push(':');
                match v {
                    ArgValue::U64(n) => args.push_str(&n.to_string()),
                    ArgValue::Str(s) => write_escaped(&mut args, s),
                }
            }
            args.push('}');
            w.raw_field("args", &args);
        }
        push(w.finish(), &mut out);
    }
    for s in series {
        // Spread the samples over the series' span so the curve is visible
        // next to the spans that produced it.
        let n = s.values.len().max(1) as u64;
        let step = (s.end_us.saturating_sub(s.start_us) / n).max(1);
        for (i, &v) in s.values.iter().enumerate() {
            let mut w = ObjWriter::new();
            w.str_field("name", &s.name);
            w.str_field("ph", "C");
            w.num_field("ts", s.start_us + i as u64 * step);
            w.num_field("pid", 1);
            w.raw_field("args", &format!("{{\"value\":{v}}}"));
            push(w.finish(), &mut out);
        }
    }
    out.push_str("\n]\n");
    out
}

fn process_name_event() -> String {
    let mut w = ObjWriter::new();
    w.str_field("name", "process_name");
    w.str_field("ph", "M");
    w.num_field("pid", 1);
    w.raw_field("args", "{\"name\":\"parra\"}");
    w.finish()
}

/// A named value-over-time series rendered as Chrome counter events.
#[derive(Debug, Clone)]
pub struct CounterSeries {
    /// The counter track name.
    pub name: String,
    /// Timestamp (µs since epoch) of the first sample.
    pub start_us: u64,
    /// Timestamp of the last sample.
    pub end_us: u64,
    /// The samples.
    pub values: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn trace_is_valid_json_array_of_records() {
        let spans = vec![
            SpanRecord {
                name: "verify".into(),
                start_us: 0,
                dur_us: Some(100),
                parent: None,
                tid: 1,
                args: vec![("states".into(), ArgValue::U64(4))],
            },
            SpanRecord {
                name: "open-span-skipped".into(),
                start_us: 5,
                dur_us: None,
                parent: Some(0),
                tid: 1,
                args: vec![],
            },
        ];
        let series = vec![CounterSeries {
            name: "cache".into(),
            start_us: 10,
            end_us: 90,
            values: vec![1, 2, 1],
        }];
        let text = render_chrome_trace(&spans, &series);
        let v = parse(&text).expect("valid JSON");
        let events = v.as_arr().unwrap();
        // 1 metadata + 1 finished span + 3 counter samples.
        assert_eq!(events.len(), 5);
        let span = &events[1];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("verify"));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(100));
        assert_eq!(
            span.get("args").unwrap().get("states").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("C"));
        // Every record sits on its own line (JSONL-greppable).
        for line in text.lines() {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed == "[" || trimmed == "]" || trimmed.is_empty() {
                continue;
            }
            assert!(parse(trimmed).is_ok(), "line not a record: {line}");
        }
    }
}
