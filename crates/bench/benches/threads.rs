//! Thread-scaling ablation: both state-space engines with 1/2/4 workers
//! on mutex benchmarks and QBF-reduction workloads. The verdicts and
//! state counts are identical across worker counts (the searches are
//! deterministic); only the wall-clock changes — this bench measures by
//! how much. Results are recorded in EXPERIMENTS.md.
//!
//! The concrete workloads bound `concrete_max_env` below the default 4:
//! the env-4 instances of the QBF reductions take half a minute each,
//! which is macro-benchmark territory, not a scaling probe.

use parra_bench::micro::Harness;
use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_litmus::by_name;
use parra_qbf::gen;
use parra_qbf::reduce::reduce_to_purera;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("threads");
    group.sample_size(5);

    let workloads = [
        (
            "mutex/peterson",
            by_name("peterson-ra").expect("suite has peterson").system,
            EngineId::SimplifiedReach,
            4usize,
        ),
        (
            "mutex/dekker",
            by_name("dekker").expect("suite has dekker").system,
            EngineId::SimplifiedReach,
            4,
        ),
        (
            "qbf/clairvoyant2",
            reduce_to_purera(&gen::clairvoyant(2)).system,
            EngineId::SimplifiedReach,
            4,
        ),
        (
            "qbf/clairvoyant1-concrete",
            reduce_to_purera(&gen::clairvoyant(1)).system,
            EngineId::BoundedConcrete,
            3,
        ),
        (
            "qbf/copycat2-concrete",
            reduce_to_purera(&gen::copycat(2)).system,
            EngineId::BoundedConcrete,
            2,
        ),
    ];
    for (name, sys, engine, max_env) in workloads {
        for threads in [1usize, 2, 4] {
            let verifier = Verifier::new(
                &sys,
                VerifierOptions {
                    threads,
                    concrete_max_env: max_env,
                    ..Default::default()
                },
            )
            .unwrap();
            group.bench_function(&format!("{name}/{engine}/t{threads}"), |b| {
                b.iter(|| std::hint::black_box(verifier.run(engine).verdict))
            });
        }
    }
    group.finish();
}
