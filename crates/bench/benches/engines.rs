//! A3: the three verification engines on the same systems — the direct
//! simplified-semantics search, the makeP Datalog path, and the bounded
//! concrete baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parra_bench::experiments::{cas_example_system, handshake_system};
use parra_core::verify::{Engine, Verifier, VerifierOptions};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    let systems = [
        ("handshake_unsafe", handshake_system(false)),
        ("handshake_safe", handshake_system(true)),
        ("cas_example", cas_example_system()),
    ];
    for (name, sys) in systems {
        let verifier = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        for engine in [
            Engine::SimplifiedReach,
            Engine::CacheDatalog,
            Engine::BoundedConcrete,
        ] {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), name),
                &engine,
                |b, &engine| {
                    b.iter(|| std::hint::black_box(verifier.run(engine).verdict))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
