//! The cost function of Section 4.3: how many `env` threads does a bug
//! need?
//!
//! Parameterization is sound but not complete for systems with a *fixed*
//! number of threads. The paper attributes costs to dependency-graph nodes
//! so that `cost(G)` — the cost of the goal message — bounds the number of
//! `env` threads sufficient to generate it:
//!
//! * `cost(msg) = 0` for initial messages,
//! * `cost(msg) = 1 + Σ rc(msg, msg')·cost(msg')` for `env` messages (one
//!   fresh thread generates the message, plus the threads needed for
//!   everything it read),
//! * `cost(msg) = Σ rc(msg, msg')·cost(msg')` for `dis` messages (the
//!   `dis` thread already exists).
//!
//! The bound is over-approximate (Figure 5's producer/consumer: the cost
//! is the loop bound `z` although `l < z` producers suffice), and in
//! general doubly exponential in the system parameters.

use crate::depgraph::{DepGraph, GenThread, MsgRef};

/// The cost of one node (number of `env` threads sufficient to generate
/// the message), saturating at `u64::MAX`.
pub fn cost_of_node(graph: &DepGraph, node: MsgRef) -> u64 {
    let mut memo = vec![None; graph.nodes.len()];
    cost_rec(graph, node, &mut memo)
}

fn cost_rec(graph: &DepGraph, node: MsgRef, memo: &mut Vec<Option<u64>>) -> u64 {
    if let Some(c) = memo[node] {
        return c;
    }
    let n = &graph.nodes[node];
    let base: u64 = match n.genthread {
        GenThread::Init => 0,
        GenThread::Env => 1,
        GenThread::Dis(_) => 0,
    };
    let mut total = base;
    if n.genthread != GenThread::Init {
        for &(d, rc) in &n.depends {
            let c = cost_rec(graph, d, memo);
            total = total.saturating_add(c.saturating_mul(rc as u64));
        }
    }
    memo[node] = Some(total);
    total
}

/// `cost(G) = cost(msg#)`: the §4.3 bound for the goal message at `goal`.
pub fn cost_of_graph(graph: &DepGraph, goal: MsgRef) -> u64 {
    cost_of_node(graph, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
    use crate::state::Budget;
    use parra_program::builder::SystemBuilder;
    use parra_program::ident::VarId;
    use parra_program::system::ParamSystem;
    use parra_program::value::Val;

    /// Figure 1/5's producer-consumer with consumer loop bound `z`.
    fn producer_consumer(z: usize) -> (ParamSystem, VarId) {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("producer");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("consumer");
        let s = d.reg("s");
        d.store(y, 1);
        for _ in 0..z {
            d.load(s, x).assume_eq(s, 1);
        }
        d.store(y, 2);
        let d = d.finish();
        (b.build(env, vec![d]), y)
    }

    fn goal_cost(z: usize) -> u64 {
        let (sys, y) = producer_consumer(z);
        let budget = Budget::exact(&sys).unwrap();
        let engine =
            Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(y, Val(2)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        let witness = report.witness.unwrap();
        let graph = crate::depgraph::DepGraph::build(&sys, &budget, &witness);
        let goal = graph.find_message(y, Val(2)).unwrap();
        cost_of_graph(&graph, goal)
    }

    /// Figure 5: cost(G) equals the consumer's loop bound z — each loop
    /// iteration reads one producer message of cost 1, and the producer
    /// messages depend only on the dis message (y, 1) of cost 0.
    #[test]
    fn producer_consumer_cost_is_loop_bound() {
        for z in 1..=4 {
            assert_eq!(goal_cost(z), z as u64, "z = {z}");
        }
    }

    #[test]
    fn init_nodes_cost_zero() {
        let (sys, y) = producer_consumer(1);
        let budget = Budget::exact(&sys).unwrap();
        let engine =
            Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(y, Val(2)));
        let witness = report.witness.unwrap();
        let graph = crate::depgraph::DepGraph::build(&sys, &budget, &witness);
        for i in 0..graph.n_vars {
            assert_eq!(cost_of_node(&graph, i), 0);
        }
    }

    /// A chain env₁ → env₂ → goal multiplies costs: env₂ reads env₁ twice,
    /// the dis goal reads env₂ three times ⇒ cost = 3·(1 + 2·1) = 9.
    #[test]
    fn costs_multiply_along_chains() {
        let mut b = SystemBuilder::new(3);
        let a = b.var("a");
        let c = b.var("c");
        let goal = b.var("goal");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.choice(
            |p| {
                p.store(a, 1);
            },
            |p| {
                // reads a twice, then writes c.
                p.load(r, a);
                p.assume_eq(r, 1);
                p.load(r, a);
                p.assume_eq(r, 1);
                p.store(c, 1);
            },
        );
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        for _ in 0..3 {
            d.load(s, c).assume_eq(s, 1);
        }
        d.store(goal, 1);
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine =
            Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(goal, Val(1)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        let witness = report.witness.unwrap();
        let graph = crate::depgraph::DepGraph::build(&sys, &budget, &witness);
        let g = graph.find_message(goal, Val(1)).unwrap();
        assert_eq!(cost_of_graph(&graph, g), 9);
    }
}
