#![warn(missing_docs)]

//! # parra-bench — the experiment harness
//!
//! One function per table/figure of the paper (see `DESIGN.md` §6 for the
//! experiment index). The `experiments` binary prints them all; the
//! Criterion benches in `benches/` time the same workloads.

pub mod experiments;
pub mod table;

pub use experiments::*;
