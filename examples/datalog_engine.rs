//! Using the Datalog substrate directly: parse a program, evaluate
//! queries, compute a bounded-cache schedule (Lemma 4.6), and run the
//! Lemma 4.2 cache-to-linear translation.
//!
//! Run with: `cargo run --example datalog_engine`

use parra::datalog::cache::{cache_schedule, prove_with_cache, verify_schedule};
use parra::datalog::eval::Evaluator;
use parra::datalog::linear::{is_linear, LinearEvaluator};
use parra::datalog::parser::{parse_ground_atom, parse_program};
use parra::datalog::translate::cache_to_linear;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut prog = parse_program(
        r#"
        % a 5-node chain
        next(n0, n1).  next(n1, n2).  next(n2, n3).  next(n3, n4).
        reach(n0).
        reach(Y) :- reach(X), next(X, Y).
        "#,
    )?;
    let goal = parse_ground_atom(&mut prog, "reach(n4)")?;

    // Ordinary query evaluation.
    let db = Evaluator::new(&prog).run();
    println!("least model: {} atoms", db.len());
    println!("reach(n4) derivable: {}", db.contains(&goal));

    // Cache Datalog (Section 4): a schedule with a small working set.
    let schedule = cache_schedule(&prog, &goal).expect("derivable");
    println!(
        "\ncache schedule: {} steps, peak cache {}",
        schedule.steps.len(),
        schedule.peak
    );
    assert!(verify_schedule(&prog, &goal, &schedule, schedule.peak));
    println!("schedule verified under the Add/Drop semantics");

    // Exact bounded-cache provability.
    for k in 1..=schedule.peak + 1 {
        println!(
            "Prog ⊢_{k} reach(n4): {}",
            prove_with_cache(&prog, &goal, k)
        );
    }

    // Lemma 4.2: the cache-bounded query as a *linear* Datalog program.
    let k = schedule.peak;
    let translated = cache_to_linear(&prog, &goal, k)?;
    assert!(is_linear(&translated.program));
    let verdict = LinearEvaluator::new(&translated.program).query(&translated.goal);
    println!(
        "\nLemma 4.2 translation (k = {k}): {} linear rules, slot width {}, \
         goal derivable: {verdict}",
        translated.program.rules().len(),
        translated.slot_width
    );
    Ok(())
}
