//! Integration test with `TrackingAlloc` installed as the global
//! allocator (per-binary, the same trick as `datalog/tests/arena_alloc.rs`).

use parra_limits::{heap_in_use, InterruptReason, ResourceBudget, TrackingAlloc};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

#[test]
fn heap_usage_is_tracked_and_budget_trips() {
    let before = heap_in_use().expect("allocator installed in this binary");

    let block: Vec<u8> = vec![0xA5; 4 << 20];
    let during = heap_in_use().expect("allocator installed");
    assert!(
        during >= before + (4 << 20),
        "4 MiB allocation must be visible: before={before} during={during}"
    );

    // A limit far below current usage trips; a generous one does not.
    let tight = ResourceBudget::unlimited().with_memory_limit(1);
    assert_eq!(tight.check(), Err(InterruptReason::Memory));
    let generous = ResourceBudget::unlimited().with_memory_limit(usize::MAX);
    assert_eq!(generous.check(), Ok(()));

    drop(block);
    let after = heap_in_use().expect("allocator installed");
    assert!(
        after < during,
        "freeing must decrease the counter: during={during} after={after}"
    );
}
