//! The labelled transition relation of Figure 2.
//!
//! A [`Transition`] names a thread, one CFA edge of its program, and the
//! messages involved (for loads, stores, and CAS). [`apply`] checks *every*
//! premise of the corresponding rule and produces the successor
//! configuration — so a sequence of transitions that replays successfully
//! is a genuine RA computation. This is the foundation for the executable
//! Lemmas 3.1–3.3 (see [`lifting`](crate::lifting),
//! [`superpose`](crate::superpose), [`supply`](crate::supply)).
//!
//! Enumeration of successors with *monotone* timestamp choice (each store
//! appends above the current maximum) is provided for trace generation;
//! exhaustive exploration with arbitrary timestamp placement lives in
//! [`explore`](crate::explore).

use crate::config::{Config, Instance, ThreadId};
use crate::message::Message;
use parra_program::cfg::{Edge, Instr};
use parra_program::value::Val;
use std::fmt;

/// The memory interaction of a transition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// A silent transition (skip, assume, assign, assert).
    Silent,
    /// Loading an existing message.
    Load(Message),
    /// Adding a store message.
    Store(Message),
    /// An atomic CAS: the loaded message and the added message.
    Cas {
        /// The message the CAS loads.
        load: Message,
        /// The message the CAS stores (adjacent timestamp).
        store: Message,
    },
}

/// One labelled transition `(th, msg)` of the global relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transition {
    /// The thread taking the step.
    pub thread: ThreadId,
    /// Index into the thread program's CFA edge list.
    pub edge: usize,
    /// The memory interaction.
    pub action: Action,
}

impl Transition {
    /// A silent transition.
    pub fn silent(thread: ThreadId, edge: usize) -> Transition {
        Transition {
            thread,
            edge,
            action: Action::Silent,
        }
    }
}

/// Why a transition failed to apply — one variant per violated premise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepError {
    /// The edge index does not exist in the thread's program.
    EdgeOutOfRange,
    /// The thread is not at the edge's source location.
    WrongSource,
    /// The action kind does not match the edge's instruction.
    ActionMismatch,
    /// An `assume` evaluated to false.
    AssumeFailed,
    /// A loaded message is not in the memory (LD-GLOBAL premise).
    MessageNotInMemory,
    /// The message's variable differs from the instruction's.
    WrongVariable,
    /// The loaded message is outdated: its timestamp is below the thread's
    /// view (LD-LOCAL premise `vw(x) ≤ vw'(x)`).
    OutdatedMessage,
    /// The stored message's view is not `vw <ₓ vw'` from the thread's view.
    BadStoreView,
    /// The stored/loaded value does not match the instruction.
    ValueMismatch,
    /// The stored message conflicts with the memory (`msg # m` fails).
    Conflict,
    /// CAS timestamps are not adjacent (`ts' ≠ ts + 1`) or the store view is
    /// not the joined view raised to `ts + 1`.
    NotAdjacent,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepError::EdgeOutOfRange => "edge index out of range",
            StepError::WrongSource => "thread is not at the edge's source location",
            StepError::ActionMismatch => "action does not match the edge instruction",
            StepError::AssumeFailed => "assume evaluated to false",
            StepError::MessageNotInMemory => "loaded message is not in memory",
            StepError::WrongVariable => "message variable differs from instruction variable",
            StepError::OutdatedMessage => "loaded message is outdated for the thread's view",
            StepError::BadStoreView => "store view is not vw <_x vw' from the thread's view",
            StepError::ValueMismatch => "message value does not match the instruction",
            StepError::Conflict => "stored message conflicts with the memory",
            StepError::NotAdjacent => "CAS views/timestamps are not adjacent",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StepError {}

/// Applies `t` to `cf`, checking every premise of the Figure 2 rules.
///
/// # Errors
///
/// Returns the first violated premise as a [`StepError`]; `cf` is not
/// modified on error (the function is pure).
pub fn apply(instance: &Instance, cf: &Config, t: &Transition) -> Result<Config, StepError> {
    let program = instance.program(t.thread);
    let cfa = program.cfa();
    let edge: &Edge = cfa.edges().get(t.edge).ok_or(StepError::EdgeOutOfRange)?;
    let lcf = cf.thread(t.thread);
    if lcf.loc != edge.from {
        return Err(StepError::WrongSource);
    }
    let dom = instance.system().dom;
    let mut next = cf.clone();
    {
        let lcf_mut = next.thread_mut(t.thread);
        lcf_mut.loc = edge.to;
    }
    match (&edge.instr, &t.action) {
        (Instr::Skip, Action::Silent) | (Instr::AssertFalse, Action::Silent) => Ok(next),
        (Instr::Assume(e), Action::Silent) => {
            if e.eval(&lcf.regs, dom).as_bool() {
                Ok(next)
            } else {
                Err(StepError::AssumeFailed)
            }
        }
        (Instr::Assign(r, e), Action::Silent) => {
            let v = e.eval(&lcf.regs, dom);
            next.thread_mut(t.thread).regs.set(*r, v);
            Ok(next)
        }
        (Instr::Load(r, x), Action::Load(msg)) => {
            if msg.var != *x {
                return Err(StepError::WrongVariable);
            }
            if !cf.memory.contains(msg) {
                return Err(StepError::MessageNotInMemory);
            }
            if msg.view.get(*x) < lcf.view.get(*x) {
                return Err(StepError::OutdatedMessage);
            }
            let lcf_mut = next.thread_mut(t.thread);
            lcf_mut.regs.set(*r, msg.val);
            lcf_mut.view = lcf.view.join(&msg.view);
            Ok(next)
        }
        (Instr::Store(x, e), Action::Store(msg)) => {
            if msg.var != *x {
                return Err(StepError::WrongVariable);
            }
            if msg.val != e.eval(&lcf.regs, dom) {
                return Err(StepError::ValueMismatch);
            }
            if !lcf.view.lt_x(&msg.view, *x) {
                return Err(StepError::BadStoreView);
            }
            if !cf.memory.admits(msg) {
                return Err(StepError::Conflict);
            }
            next.memory.insert(msg.clone());
            next.thread_mut(t.thread).view = msg.view.clone();
            Ok(next)
        }
        (Instr::Cas(x, e1, e2), Action::Cas { load, store }) => {
            // LD half.
            if load.var != *x || store.var != *x {
                return Err(StepError::WrongVariable);
            }
            if !cf.memory.contains(load) {
                return Err(StepError::MessageNotInMemory);
            }
            if load.val != e1.eval(&lcf.regs, dom) {
                return Err(StepError::ValueMismatch);
            }
            if load.view.get(*x) < lcf.view.get(*x) {
                return Err(StepError::OutdatedMessage);
            }
            // ST half: view is the join raised to the adjacent timestamp.
            if store.val != e2.eval(&lcf.regs, dom) {
                return Err(StepError::ValueMismatch);
            }
            let ts = load.view.get(*x);
            let expected_view = lcf.view.join(&load.view).with(*x, ts.succ());
            if store.view != expected_view {
                return Err(StepError::NotAdjacent);
            }
            if !cf.memory.admits(store) {
                return Err(StepError::Conflict);
            }
            next.memory.insert(store.clone());
            next.thread_mut(t.thread).view = store.view.clone();
            Ok(next)
        }
        _ => Err(StepError::ActionMismatch),
    }
}

/// Enumerates all transitions enabled at `cf` under the *monotone*
/// timestamp policy: store messages take timestamp `max(x) + 1` over the
/// current memory.
///
/// This under-approximates RA (stores may also be placed into gaps below
/// the maximum); it is complete enough for random trace generation and all
/// Section 3 machinery tests. Use [`explore`](crate::explore) for
/// exhaustive placement.
pub fn monotone_successors(instance: &Instance, cf: &Config) -> Vec<Transition> {
    let mut out = Vec::new();
    let dom = instance.system().dom;
    for tid in instance.threads() {
        let lcf = cf.thread(tid);
        let cfa = instance.program(tid).cfa();
        for (ei, edge) in cfa.edges().iter().enumerate() {
            if edge.from != lcf.loc {
                continue;
            }
            match &edge.instr {
                Instr::Skip | Instr::AssertFalse => out.push(Transition::silent(tid, ei)),
                Instr::Assume(e) => {
                    if e.eval(&lcf.regs, dom).as_bool() {
                        out.push(Transition::silent(tid, ei));
                    }
                }
                Instr::Assign(..) => out.push(Transition::silent(tid, ei)),
                Instr::Load(_, x) => {
                    for msg in cf.memory.on_var(*x) {
                        if msg.view.get(*x) >= lcf.view.get(*x) {
                            out.push(Transition {
                                thread: tid,
                                edge: ei,
                                action: Action::Load(msg.clone()),
                            });
                        }
                    }
                }
                Instr::Store(x, e) => {
                    let ts = cf.memory.max_timestamp(*x).succ();
                    let view = lcf.view.with(*x, ts.max(lcf.view.get(*x).succ()));
                    let msg = Message::new(*x, e.eval(&lcf.regs, dom), view);
                    out.push(Transition {
                        thread: tid,
                        edge: ei,
                        action: Action::Store(msg),
                    });
                }
                Instr::Cas(x, e1, e2) => {
                    let want: Val = e1.eval(&lcf.regs, dom);
                    for load in cf.memory.on_var(*x) {
                        if load.val != want || load.view.get(*x) < lcf.view.get(*x) {
                            continue;
                        }
                        let ts = load.view.get(*x);
                        let store_view = lcf.view.join(&load.view).with(*x, ts.succ());
                        let store = Message::new(*x, e2.eval(&lcf.regs, dom), store_view);
                        if cf.memory.admits(&store) {
                            out.push(Transition {
                                thread: tid,
                                edge: ei,
                                action: Action::Cas {
                                    load: load.clone(),
                                    store,
                                },
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;
    use crate::view::View;
    use parra_program::builder::SystemBuilder;
    use parra_program::expr::Expr;
    use parra_program::ident::VarId;
    use parra_program::system::ParamSystem;

    /// env: r <- x; assume r == 1   ‖   dis: x := 1; cas(x, 1, 0)
    fn sys() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, x).assume_eq(r, 1);
        let env = env.finish();
        let mut d = b.program("d");
        d.store(x, 1).cas(x, 1, 0);
        let d = d.finish();
        b.build(env, vec![d])
    }

    fn x() -> VarId {
        VarId(0)
    }

    #[test]
    fn load_initial_message() {
        let inst = Instance::new(sys(), 1);
        let cf = inst.initial_config();
        let msg = cf.memory.at(x(), Timestamp::ZERO).unwrap().clone();
        let t = Transition {
            thread: ThreadId(0),
            edge: 0,
            action: Action::Load(msg),
        };
        let next = apply(&inst, &cf, &t).unwrap();
        assert_eq!(
            next.thread(ThreadId(0))
                .regs
                .get(parra_program::ident::RegId(0)),
            parra_program::value::Val(0)
        );
        // assume r == 1 now fails
        let t2 = Transition::silent(ThreadId(0), 1);
        assert_eq!(apply(&inst, &next, &t2), Err(StepError::AssumeFailed));
    }

    #[test]
    fn store_then_load_then_assume() {
        let inst = Instance::new(sys(), 1);
        let cf = inst.initial_config();
        // dis stores x := 1 at ts 1.
        let store_msg = Message::new(
            x(),
            parra_program::value::Val(1),
            View::from_times(vec![Timestamp(1)]),
        );
        let t = Transition {
            thread: ThreadId(1),
            edge: 0,
            action: Action::Store(store_msg.clone()),
        };
        let cf1 = apply(&inst, &cf, &t).unwrap();
        assert!(cf1.memory.contains(&store_msg));
        assert_eq!(cf1.thread(ThreadId(1)).view.get(x()), Timestamp(1));
        // env loads the new message and passes the assume.
        let t2 = Transition {
            thread: ThreadId(0),
            edge: 0,
            action: Action::Load(store_msg),
        };
        let cf2 = apply(&inst, &cf1, &t2).unwrap();
        let t3 = Transition::silent(ThreadId(0), 1);
        let cf3 = apply(&inst, &cf2, &t3).unwrap();
        assert_eq!(
            cf3.thread(ThreadId(0)).loc,
            inst.program(ThreadId(0)).cfa().exit()
        );
    }

    #[test]
    fn outdated_load_rejected() {
        // A thread whose view on x is already at ts 1 must not load the
        // initial ts-0 message (LD-LOCAL premise vw(x) ≤ vw'(x)).
        let inst = Instance::new(sys(), 2);
        let cf = inst.initial_config();
        let store_msg = Message::new(
            x(),
            parra_program::value::Val(1),
            View::from_times(vec![Timestamp(1)]),
        );
        let cf1 = apply(
            &inst,
            &cf,
            &Transition {
                thread: ThreadId(2),
                edge: 0,
                action: Action::Store(store_msg.clone()),
            },
        )
        .unwrap();
        let init_msg = cf1.memory.at(x(), Timestamp::ZERO).unwrap().clone();
        // Raise env thread 1's view to ts 1 directly (as if it had synced).
        let mut raised = cf1.clone();
        raised.thread_mut(ThreadId(1)).view.set(x(), Timestamp(1));
        let err = apply(
            &inst,
            &raised,
            &Transition {
                thread: ThreadId(1),
                edge: 0,
                action: Action::Load(init_msg),
            },
        )
        .unwrap_err();
        assert_eq!(err, StepError::OutdatedMessage);
        // The up-to-date message is still loadable.
        assert!(apply(
            &inst,
            &raised,
            &Transition {
                thread: ThreadId(1),
                edge: 0,
                action: Action::Load(store_msg),
            },
        )
        .is_ok());
    }

    #[test]
    fn conflicting_store_rejected() {
        let inst = Instance::new(sys(), 0);
        let cf = inst.initial_config();
        let m1 = Message::new(
            x(),
            parra_program::value::Val(1),
            View::from_times(vec![Timestamp(1)]),
        );
        let cf1 = apply(
            &inst,
            &cf,
            &Transition {
                thread: ThreadId(0),
                edge: 0,
                action: Action::Store(m1),
            },
        )
        .unwrap();
        // A dis thread at entry again would be needed to store again; fake a
        // second instance where the same timestamp collides.
        let inst2 = Instance::new(sys(), 0);
        let mut cf_stale = inst2.initial_config();
        cf_stale.memory = cf1.memory.clone();
        let m_conflict = Message::new(
            x(),
            parra_program::value::Val(1),
            View::from_times(vec![Timestamp(1)]),
        );
        let err = apply(
            &inst2,
            &cf_stale,
            &Transition {
                thread: ThreadId(0),
                edge: 0,
                action: Action::Store(m_conflict),
            },
        )
        .unwrap_err();
        // Message is identical to an existing one: identical messages are
        // *equal*, and a set insert would be idempotent — but the store rule
        // demands non-conflict, so it is rejected.
        assert_eq!(err, StepError::Conflict);
    }

    #[test]
    fn cas_requires_adjacency() {
        let inst = Instance::new(sys(), 0);
        let cf = inst.initial_config();
        // dis: x := 1 at ts 1, then cas(x, 1, 0) must store at ts 2.
        let m1 = Message::new(
            x(),
            parra_program::value::Val(1),
            View::from_times(vec![Timestamp(1)]),
        );
        let cf1 = apply(
            &inst,
            &cf,
            &Transition {
                thread: ThreadId(0),
                edge: 0,
                action: Action::Store(m1.clone()),
            },
        )
        .unwrap();
        let good_store = Message::new(
            x(),
            parra_program::value::Val(0),
            View::from_times(vec![Timestamp(2)]),
        );
        let bad_store = Message::new(
            x(),
            parra_program::value::Val(0),
            View::from_times(vec![Timestamp(3)]),
        );
        let bad = Transition {
            thread: ThreadId(0),
            edge: 1,
            action: Action::Cas {
                load: m1.clone(),
                store: bad_store,
            },
        };
        assert_eq!(apply(&inst, &cf1, &bad), Err(StepError::NotAdjacent));
        let good = Transition {
            thread: ThreadId(0),
            edge: 1,
            action: Action::Cas {
                load: m1,
                store: good_store.clone(),
            },
        };
        let cf2 = apply(&inst, &cf1, &good).unwrap();
        assert!(cf2.memory.contains(&good_store));
        assert_eq!(cf2.thread(ThreadId(0)).view.get(x()), Timestamp(2));
    }

    #[test]
    fn monotone_successors_cover_all_threads() {
        let inst = Instance::new(sys(), 2);
        let cf = inst.initial_config();
        let succs = monotone_successors(&inst, &cf);
        // 2 env loads (one message each) + 1 dis store.
        assert_eq!(succs.len(), 3);
        for t in &succs {
            assert!(apply(&inst, &cf, t).is_ok());
        }
    }

    #[test]
    fn monotone_cas_successor() {
        let inst = Instance::new(sys(), 0);
        let cf = inst.initial_config();
        let succs = monotone_successors(&inst, &cf);
        assert_eq!(succs.len(), 1); // the store
        let cf1 = apply(&inst, &cf, &succs[0]).unwrap();
        let succs2 = monotone_successors(&inst, &cf1);
        assert_eq!(succs2.len(), 1); // the CAS on value 1
        assert!(matches!(succs2[0].action, Action::Cas { .. }));
        assert!(apply(&inst, &cf1, &succs2[0]).is_ok());
    }

    #[test]
    fn wrong_source_and_action_mismatch() {
        let inst = Instance::new(sys(), 1);
        let cf = inst.initial_config();
        // env edge 1 is the assume; thread is at edge 0's source.
        assert_eq!(
            apply(&inst, &cf, &Transition::silent(ThreadId(0), 1)),
            Err(StepError::WrongSource)
        );
        // load edge with silent action
        assert_eq!(
            apply(&inst, &cf, &Transition::silent(ThreadId(0), 0)),
            Err(StepError::ActionMismatch)
        );
        assert_eq!(
            apply(&inst, &cf, &Transition::silent(ThreadId(0), 99)),
            Err(StepError::EdgeOutOfRange)
        );
        let _ = Expr::val(0);
    }
}
