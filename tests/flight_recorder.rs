//! End-to-end tests of the flight recorder: `--events-out` determinism
//! across thread counts, `--trace-out` Chrome-trace validity, and the
//! `parra report` dashboard / schema-check / diff surface.

use parra::obs::json::{self, Value};
use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn example(name: &str) -> String {
    format!("{}/examples/systems/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn run_ok(args: &[&str], allow: &[i32]) -> std::process::Output {
    let out = Command::new(BIN).args(args).output().expect("binary runs");
    let code = out.status.code().expect("no signal");
    assert!(
        allow.contains(&code),
        "parra {args:?} exited {code}; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The deterministic projection of one event line: everything except
/// `t_us` and the `volatile` section.
fn deterministic_key(line: &str) -> (u64, String, String, Value) {
    let v = json::parse(line).expect("event line is valid JSON");
    (
        v.get("seq").unwrap().as_u64().unwrap(),
        v.get("scope").unwrap().as_str().unwrap().to_string(),
        v.get("kind").unwrap().as_str().unwrap().to_string(),
        v.get("fields").unwrap().clone(),
    )
}

#[test]
fn event_log_is_deterministic_across_thread_counts() {
    let input = example("peterson.ra");
    let mut logs = Vec::new();
    for threads in ["1", "4"] {
        let path = tmp(&format!("events_t{threads}.jsonl"));
        run_ok(
            &[
                "verify",
                "--all-engines",
                "--threads",
                threads,
                "--events-out",
                path.to_str().unwrap(),
                &input,
            ],
            &[0, 1],
        );
        let text = std::fs::read_to_string(&path).expect("event log written");
        assert!(!text.is_empty(), "event log is empty at {threads} threads");
        logs.push(text.lines().map(deterministic_key).collect::<Vec<_>>());
    }
    assert_eq!(
        logs[0].len(),
        logs[1].len(),
        "event counts differ between 1 and 4 threads"
    );
    for (i, (a, b)) in logs[0].iter().zip(&logs[1]).enumerate() {
        assert_eq!(a, b, "event {i} differs between 1 and 4 threads");
    }
}

#[test]
fn event_log_passes_its_own_schema_check() {
    let input = example("handshake.ra");
    let path = tmp("events_schema.jsonl");
    run_ok(
        &[
            "verify",
            "--all-engines",
            "--events-out",
            path.to_str().unwrap(),
            &input,
        ],
        &[0, 1],
    );
    let out = run_ok(&["report", "--check-schema", path.to_str().unwrap()], &[0]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("schema OK"),
        "unexpected check-schema output: {stdout}"
    );
}

#[test]
fn check_schema_rejects_malformed_lines_with_location() {
    let path = tmp("events_bad.jsonl");
    std::fs::write(
        &path,
        "{\"v\":1,\"seq\":0,\"t_us\":0,\"scope\":\"x/\",\"kind\":\"run_end\",\
         \"fields\":{},\"volatile\":{}}\nnot json at all\n",
    )
    .unwrap();
    let out = run_ok(&["report", "--check-schema", path.to_str().unwrap()], &[64]);
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains(":2:"), "error should name line 2: {stderr}");
}

#[test]
fn trace_out_is_a_valid_chrome_trace() {
    let input = example("barrier.ra");
    let path = tmp("trace.json");
    run_ok(
        &[
            "verify",
            "--engine",
            "simplified",
            "--trace-out",
            path.to_str().unwrap(),
            &input,
        ],
        &[0, 1],
    );
    let text = std::fs::read_to_string(&path).expect("trace written");
    let v = json::parse(text.trim()).expect("trace file is one JSON array");
    let events = v.as_arr().expect("top level is an array");
    assert!(!events.is_empty());

    // Every B must close with an E on the same tid, stack-ordered, with
    // non-decreasing timestamps; the file must contain at least the
    // verify span.
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<(String, u64)>> = HashMap::new();
    let mut names = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        if ph != "B" && ph != "E" {
            continue; // metadata (M) and counter (C) events
        }
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid field");
        let ts = e.get("ts").and_then(Value::as_u64).expect("ts field");
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .expect("name field")
            .to_string();
        let stack = stacks.entry(tid).or_default();
        if ph == "B" {
            names.push(name.clone());
            stack.push((name, ts));
        } else {
            let (open, start) = stack
                .pop()
                .unwrap_or_else(|| panic!("E for `{name}` on tid {tid} without a matching B"));
            assert_eq!(open, name, "E closes a different span than the open B");
            assert!(start <= ts, "span `{name}` ends before it starts");
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} has unclosed spans: {stack:?}");
    }
    assert!(
        names.iter().any(|n| n == "engine:simplified-reach"),
        "trace has no engine span: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("phase:")),
        "trace has no phase spans: {names:?}"
    );
}

#[test]
fn batch_event_logs_diff_clean_against_themselves() {
    let dir = format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"));
    let mut paths = Vec::new();
    for rep in ["a", "b"] {
        let path = tmp(&format!("batch_events_{rep}.jsonl"));
        run_ok(
            &[
                "batch",
                "--engine",
                "simplified",
                "--timeout",
                "30",
                "--events-out",
                path.to_str().unwrap(),
                &dir,
            ],
            &[0, 1, 2],
        );
        paths.push(path);
    }

    // Both logs pass the schema check and render a dashboard.
    run_ok(
        &[
            "report",
            "--check-schema",
            paths[0].to_str().unwrap(),
            paths[1].to_str().unwrap(),
        ],
        &[0],
    );
    let out = run_ok(&["report", paths[0].to_str().unwrap()], &[0]);
    let dash = String::from_utf8(out.stdout).unwrap();
    assert!(
        dash.contains("simplified-reach"),
        "dashboard missing the engine: {dash}"
    );

    // Two identical batch runs must report zero verdict flips. A wide
    // --threshold keeps wall-clock wobble on sub-millisecond phases from
    // flagging spurious regressions; flips are timing-independent.
    let out = run_ok(
        &[
            "report",
            "--diff",
            paths[0].to_str().unwrap(),
            paths[1].to_str().unwrap(),
            "--threshold",
            "400",
        ],
        &[0],
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("0 verdict flips"),
        "diff of identical runs found flips: {text}"
    );
    assert!(
        text.contains("clean: no flips, no regressions"),
        "diff of identical runs not clean: {text}"
    );
}

#[test]
fn json_report_carries_phases_and_percentiles() {
    let input = example("peterson.ra");
    let out = run_ok(
        &["verify", "--engine", "datalog", "--json", "--stats", &input],
        &[0, 1],
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v = json::parse(stdout.trim()).expect("one JSON report");
    let phases = v
        .get("phases")
        .and_then(Value::as_obj)
        .expect("report has a phases object");
    assert!(
        phases.iter().any(|(k, _)| k == "plan"),
        "phases missing `plan`: {phases:?}"
    );
    assert!(
        phases.iter().any(|(k, _)| k == "fixpoint"),
        "phases missing `fixpoint`: {phases:?}"
    );
    // Every histogram in the report exposes quantile estimates.
    let hists = v.get("histograms").and_then(Value::as_obj);
    if let Some(hists) = hists {
        for (name, h) in hists {
            for q in ["p50", "p90", "p99"] {
                assert!(
                    h.get(q).and_then(Value::as_u64).is_some(),
                    "histogram `{name}` missing `{q}`"
                );
            }
        }
    }
}
