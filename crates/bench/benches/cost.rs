//! F5: dependency-graph construction and the §4.3 cost analysis as the
//! consumer loop bound z grows.

use parra_bench::micro::Harness;
use parra_litmus::sync::producer_consumer;
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachLimits, Reachability, SimpTarget};
use parra_simplified::state::Budget;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("cost_analysis");
    for z in [1usize, 2, 4, 8] {
        let (sys, y, val) = producer_consumer(z);
        let budget = Budget::exact(&sys).unwrap();
        let engine =
            Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(y, val));
        let witness = report.witness.expect("unsafe");
        group.bench_function(&format!("reach/{z}"), |b| {
            b.iter(|| std::hint::black_box(engine.run(SimpTarget::MessageGenerated(y, val)).states))
        });
        group.bench_function(&format!("depgraph_and_cost/{z}"), |b| {
            b.iter(|| {
                let graph = DepGraph::build(&sys, &budget, &witness);
                let goal = graph.find_message(y, val).unwrap();
                std::hint::black_box(cost_of_graph(&graph, goal))
            })
        });
    }
    group.finish();
}
