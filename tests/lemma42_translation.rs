//! Property test for the Lemma 4.2 cache→linear translation, on random
//! programs from the ≤2-atom-body fragment the lemma covers.
//!
//! For every random program `Prog`, goal `g`, and cache bound
//! `k ∈ {1..Q₀²}` (Q₀ = number of predicates — the paper instantiates
//! the lemma at `k = O(Q₀²)` via Lemma 4.4):
//!
//! * **size**: the translated program stays within the construction's
//!   per-rule budget — `k` rules per fact, `k(k−1)` per single-body
//!   rule, `k(k−1)(k−2)` per double-body rule (plus at most `k(k−1)`
//!   for its unified same-slot variant), plus the initial fact, `k`
//!   drop rules, and `k` goal rules — and every emitted rule is linear;
//! * **verdict preservation**: `Prog ⊢ₖ g ⟺ Prog′ ⊢ goal_ok` (checked by
//!   evaluating the translation for the small `k` where its linear
//!   least model is tractable);
//! * **sanity of `⊢ₖ` itself**: monotone in `k`, never exceeding plain
//!   provability `⊢`, and coinciding with it once `k` reaches the least
//!   model's size.

use parra::datalog::cache::prove_with_cache;
use parra::datalog::linear::{is_linear, LinearEvaluator};
use parra::datalog::translate::cache_to_linear;
use parra::datalog::{Atom, Const, Evaluator, GroundAtom, Program, Term};

/// Splitmix-style deterministic RNG (the repo is std-only).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random program with bodies of at most two atoms, plus a random goal.
/// Kept tiny on purpose: `prove_with_cache` is an exact exponential
/// search and the translated linear program's least model enumerates
/// ordered cache configurations.
fn random_program(seed: u64) -> (Program, GroundAtom) {
    let mut rng = Rng(seed);
    let mut p = Program::new();
    let n_preds = 1 + rng.below(3) as usize;
    let preds: Vec<_> = (0..n_preds)
        .map(|i| p.predicate(&format!("p{i}"), rng.below(3) as usize))
        .collect();
    let n_consts = 1 + rng.below(3) as usize;
    let consts: Vec<Const> = (0..n_consts)
        .map(|i| p.constant(&format!("c{i}")))
        .collect();
    let rand_args = |p: &Program, pred, rng: &mut Rng| -> Vec<Const> {
        (0..p.pred_arity(pred))
            .map(|_| consts[rng.below(consts.len() as u64) as usize])
            .collect()
    };

    let n_facts = 1 + rng.below(4);
    for _ in 0..n_facts {
        let pred = preds[rng.below(preds.len() as u64) as usize];
        let args = rand_args(&p, pred, &mut rng);
        p.fact(pred, args).unwrap();
    }

    let n_rules = 1 + rng.below(3);
    for _ in 0..n_rules {
        // Body first (0–2 atoms over variables {0,1,2} and constants),
        // then a head whose variables are drawn from the body's, so the
        // rule is safe by construction.
        let body_len = rng.below(3) as usize;
        let mut body = Vec::new();
        let mut body_vars: Vec<u32> = Vec::new();
        for _ in 0..body_len {
            let pred = preds[rng.below(preds.len() as u64) as usize];
            let terms: Vec<Term> = (0..p.pred_arity(pred))
                .map(|_| {
                    if rng.below(2) == 0 {
                        let v = rng.below(3) as u32;
                        if !body_vars.contains(&v) {
                            body_vars.push(v);
                        }
                        Term::Var(v)
                    } else {
                        Term::Const(consts[rng.below(consts.len() as u64) as usize])
                    }
                })
                .collect();
            body.push(Atom::new(pred, terms));
        }
        let head_pred = preds[rng.below(preds.len() as u64) as usize];
        let head_terms: Vec<Term> = (0..p.pred_arity(head_pred))
            .map(|_| {
                if !body_vars.is_empty() && rng.below(2) == 0 {
                    Term::Var(body_vars[rng.below(body_vars.len() as u64) as usize])
                } else {
                    Term::Const(consts[rng.below(consts.len() as u64) as usize])
                }
            })
            .collect();
        p.rule(Atom::new(head_pred, head_terms), body).unwrap();
    }

    let goal_pred = preds[rng.below(preds.len() as u64) as usize];
    let goal_args = rand_args(&p, goal_pred, &mut rng);
    (p, GroundAtom::new(goal_pred, goal_args))
}

/// The construction's rule-count budget: exact up to the optional
/// same-slot variant of each double-body rule (emitted only when the two
/// body atoms unify).
fn rule_count_bounds(prog: &Program, k: usize) -> (usize, usize) {
    let mut lower = 1 + 2 * k; // initial fact + k drop rules + k goal rules
    let mut slack = 0;
    for rule in prog.rules() {
        lower += match rule.body.len() {
            0 => k,
            1 => k * (k - 1),
            2 => {
                slack += k * (k - 1); // the unified variant, if any
                k * (k - 1) * k.saturating_sub(2)
            }
            _ => unreachable!("generator emits bodies of at most 2 atoms"),
        };
    }
    (lower, lower + slack)
}

/// Evaluating the translation means enumerating ordered reachable cache
/// configurations — only tractable for small `k`.
const EVAL_MAX_K: usize = 2;

#[test]
fn translation_size_and_verdicts_on_random_programs() {
    for seed in 0..40u64 {
        let (prog, goal) = random_program(seed);
        let q0 = prog.predicates().count();
        let max_k = (q0 * q0).max(2);

        let full = Evaluator::new(&prog).run();
        let derivable = full.contains(&goal);

        let mut prev = false;
        for k in 1..=max_k {
            let cached = prove_with_cache(&prog, &goal, k);

            // ⊢ₖ is monotone in k and bounded by ⊢.
            assert!(
                !prev || cached,
                "seed {seed}, k={k}: ⊢ₖ lost a verdict it had at k-1"
            );
            assert!(
                !cached || derivable,
                "seed {seed}, k={k}: ⊢ₖ proved an underivable goal"
            );
            prev = cached;

            // Lemma 4.2: the translation exists for every ≤2-body program,
            // is linear, and stays within the per-rule size budget.
            let t = cache_to_linear(&prog, &goal, k)
                .unwrap_or_else(|e| panic!("seed {seed}, k={k}: translation failed: {e}"));
            assert!(is_linear(&t.program), "seed {seed}, k={k}: not linear");
            let n = t.program.rules().len();
            let (lower, upper) = rule_count_bounds(&prog, k);
            assert!(
                (lower..=upper).contains(&n),
                "seed {seed}, k={k}: {n} rules outside the budget [{lower}, {upper}]"
            );

            // Verdict preservation, where the linear least model is small
            // enough to evaluate outright.
            if k <= EVAL_MAX_K {
                let linear_verdict = LinearEvaluator::new(&t.program).query(&t.goal);
                assert_eq!(
                    linear_verdict, cached,
                    "seed {seed}, k={k}: Prog ⊢ₖ g is {cached} but the translated \
                     linear program says {linear_verdict}"
                );
            }
        }

        // With the cache as large as the least model, ⊢ₖ ≡ ⊢.
        let k_full = full.len().max(1);
        assert_eq!(
            prove_with_cache(&prog, &goal, k_full),
            derivable,
            "seed {seed}: ⊢ₖ with k = |least model| = {k_full} must match ⊢"
        );
    }
}
