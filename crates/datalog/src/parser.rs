//! A text syntax for Datalog programs.
//!
//! ```text
//! edge(a, b).
//! path(X, Y) :- edge(X, Y).
//! path(X, Z) :- path(X, Y), edge(Y, Z).
//! ```
//!
//! Identifiers starting with an uppercase letter are variables; everything
//! else (lowercase identifiers, numbers) is a constant. Line comments start
//! with `%` (Prolog style) or `//`.

use crate::ast::{Atom, GroundAtom, Program, Term};
use std::collections::HashMap;
use std::fmt;

/// A parse error with 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datalog parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a Datalog program.
///
/// # Errors
///
/// Returns the first syntax or validation error (arity mismatch, unsafe
/// rule).
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut prog = Program::new();
    let mut pending = String::new();
    let mut start_line = 1;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw
            .split("//")
            .next()
            .unwrap_or("")
            .split('%')
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }
        if pending.is_empty() {
            start_line = lineno + 1;
        }
        // Clauses end at `.`; several may share a line.
        for (i, piece) in line.split('.').enumerate() {
            if i > 0 {
                // A `.` preceded this piece: the pending clause is done.
                let clause = pending.trim().to_owned();
                pending.clear();
                if !clause.is_empty() {
                    parse_clause(&mut prog, &clause, start_line)?;
                }
                start_line = lineno + 1;
            }
            if !piece.trim().is_empty() {
                pending.push_str(piece.trim());
                pending.push(' ');
            }
        }
    }
    if !pending.trim().is_empty() {
        return Err(ParseError {
            line: start_line,
            message: "clause not terminated by `.`".into(),
        });
    }
    Ok(prog)
}

/// Parses a single ground atom, e.g. for queries: `path(a, d)`.
///
/// # Errors
///
/// Fails on syntax errors, variables, or unknown predicates.
pub fn parse_ground_atom(prog: &mut Program, text: &str) -> Result<GroundAtom, ParseError> {
    let mut vars = HashMap::new();
    let atom = parse_atom(prog, text.trim(), 1, &mut vars)?;
    if !atom.is_ground() {
        return Err(ParseError {
            line: 1,
            message: format!("atom `{text}` contains variables"),
        });
    }
    Ok(atom.to_ground())
}

fn parse_clause(prog: &mut Program, clause: &str, line: usize) -> Result<(), ParseError> {
    let mut vars: HashMap<String, u32> = HashMap::new();
    let (head_text, body_text) = match clause.split_once(":-") {
        Some((h, b)) => (h.trim(), Some(b.trim())),
        None => (clause.trim(), None),
    };
    let head = parse_atom(prog, head_text, line, &mut vars)?;
    let body = match body_text {
        None => Vec::new(),
        Some(b) => split_atoms(b, line)?
            .into_iter()
            .map(|t| parse_atom(prog, &t, line, &mut vars))
            .collect::<Result<Vec<_>, _>>()?,
    };
    prog.rule(head, body).map_err(|e| ParseError {
        line,
        message: e.to_string(),
    })
}

/// Splits `p(X, Y), q(Y)` at top-level commas.
fn split_atoms(body: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in body.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.checked_sub(1).ok_or(ParseError {
                    line,
                    message: "unbalanced `)`".into(),
                })?;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if depth != 0 {
        return Err(ParseError {
            line,
            message: "unbalanced `(`".into(),
        });
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    Ok(out)
}

fn parse_atom(
    prog: &mut Program,
    text: &str,
    line: usize,
    vars: &mut HashMap<String, u32>,
) -> Result<Atom, ParseError> {
    let err = |message: String| ParseError { line, message };
    let text = text.trim();
    let (name, rest) = match text.find('(') {
        Some(i) => (&text[..i], Some(&text[i..])),
        None => (text, None),
    };
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(format!("bad predicate name `{name}`")));
    }
    let args: Vec<String> = match rest {
        None => Vec::new(),
        Some(r) => {
            let r = r.trim();
            if !r.starts_with('(') || !r.ends_with(')') {
                return Err(err(format!("malformed argument list in `{text}`")));
            }
            let inner = &r[1..r.len() - 1];
            if inner.trim().is_empty() {
                Vec::new()
            } else {
                split_atoms(inner, line)?
            }
        }
    };
    if let Some(existing) = prog.lookup_pred(name) {
        if prog.pred_arity(existing) != args.len() {
            return Err(err(format!(
                "predicate `{name}` used with {} args, declared with {}",
                args.len(),
                prog.pred_arity(existing)
            )));
        }
    }
    let pred = prog.predicate(name, args.len());
    let terms = args
        .into_iter()
        .map(|a| {
            let a = a.trim().to_owned();
            if a.chars()
                .next()
                .map(|c| c.is_ascii_uppercase())
                .unwrap_or(false)
            {
                let n = vars.len() as u32;
                Term::Var(*vars.entry(a).or_insert(n))
            } else {
                Term::Const(prog.constant(&a))
            }
        })
        .collect();
    Ok(Atom::new(pred, terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::linear::is_linear;

    const TC: &str = r#"
        % transitive closure
        edge(a, b).
        edge(b, c).
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y), edge(Y, Z).  // nonlinear rule
    "#;

    #[test]
    fn parses_and_evaluates() {
        let mut prog = parse_program(TC).unwrap();
        assert!(!is_linear(&prog));
        let goal = parse_ground_atom(&mut prog, "path(a, c)").unwrap();
        assert!(Evaluator::new(&prog).query(&goal));
        let bad = parse_ground_atom(&mut prog, "path(c, a)").unwrap();
        assert!(!Evaluator::new(&prog).query(&bad));
    }

    #[test]
    fn zero_arity_predicates() {
        let mut prog = parse_program("go.\nwin :- go.").unwrap();
        let goal = parse_ground_atom(&mut prog, "win").unwrap();
        assert!(Evaluator::new(&prog).query(&goal));
    }

    #[test]
    fn variables_are_uppercase() {
        let prog = parse_program("q(X) :- p(X).\np(a).").unwrap();
        let rule = &prog.rules()[0];
        assert_eq!(rule.head.variables(), vec![0]);
        assert!(prog.rules()[1].is_fact());
    }

    #[test]
    fn arity_mismatch_reported() {
        let err = parse_program("p(a).\np(a, b).").unwrap_err();
        assert!(err.message.contains("2 args"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unsafe_rule_reported() {
        let err = parse_program("q(X) :- p(a).").unwrap_err();
        assert!(err.message.contains("does not occur"));
    }

    #[test]
    fn ground_atom_rejects_variables() {
        let mut prog = parse_program("p(a).").unwrap();
        let err = parse_ground_atom(&mut prog, "p(X)").unwrap_err();
        assert!(err.message.contains("variables"));
    }

    #[test]
    fn multiline_clauses() {
        let prog = parse_program("path(X, Z) :-\n  path(X, Y),\n  edge(Y, Z).").unwrap();
        assert_eq!(prog.rules().len(), 1);
        assert_eq!(prog.rules()[0].body.len(), 2);
    }

    #[test]
    fn unterminated_clause_reported() {
        let err = parse_program("p(a)").unwrap_err();
        assert!(err.message.contains("not terminated"));
    }
}
