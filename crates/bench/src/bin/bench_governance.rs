//! Resource-governance overhead benchmark and regression gate (A7).
//!
//! Runs a litmus subset through the simplified-reach and cache-datalog
//! engines twice — once ungoverned, once under generous limits (a 1-hour
//! deadline plus an effectively unlimited memory budget) — and records
//! best-of-N wall-clock for both. The delta is the cost of the
//! round-granularity `ResourceBudget::check()` calls; it should stay in
//! the noise floor because the checks are O(1) and run once per
//! wave/semi-naive round, not per state.
//!
//! ```text
//! bench_governance [--out FILE]        # measure and write FILE (default BENCH_governance.json)
//! bench_governance --check BASELINE    # measure and fail (exit 1) on regression
//! ```
//!
//! The check fails when a governed entry's wall-clock exceeds the
//! baseline by more than 25% *and* by more than an absolute 20 ms floor.
//! The governed/ungoverned ratio is recorded per entry (permille) but is
//! informational only — on CI timers it is too noisy to gate on.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use std::process::ExitCode;
use std::time::Duration;

/// The litmus subset: benchmarks where the engines do enough rounds for
/// a per-round check to show up if it were expensive.
const BENCHES: &[&str] = &[
    "producer-consumer",
    "peterson-ra",
    "dekker",
    "lamport-2-ra",
    "sb",
    "iriw",
];

const ENGINES: [EngineId; 2] = [EngineId::SimplifiedReach, EngineId::CacheDatalog];

/// Timed repetitions per entry; the best is recorded.
const REPS: usize = 3;

/// Relative wall-clock tolerance of the `--check` gate.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which drift is timer noise.
const FLOOR_US: u64 = 20_000;

struct Entry {
    bench: String,
    engine: String,
    verdict: String,
    ungoverned_us: u64,
    governed_us: u64,
}

impl Entry {
    /// Governed/ungoverned wall-clock ratio in permille (1000 = parity).
    fn overhead_permille(&self) -> u64 {
        if self.ungoverned_us == 0 {
            return 1000;
        }
        self.governed_us.saturating_mul(1000) / self.ungoverned_us
    }
}

fn best_wall_us(verifier: &Verifier, engine: EngineId, verdict: &mut String) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..REPS {
        let r = verifier.run(engine);
        *verdict = r.verdict.to_string();
        best = best.min(r.stats.duration.as_micros() as u64);
    }
    best
}

fn measure() -> Vec<Entry> {
    let mut out = Vec::new();
    for name in BENCHES {
        let bench = parra_litmus::by_name(name)
            .unwrap_or_else(|| panic!("unknown litmus benchmark `{name}`"));
        let plain = VerifierOptions {
            threads: 1,
            ..Default::default()
        };
        let governed = VerifierOptions {
            threads: 1,
            timeout: Some(Duration::from_secs(3600)),
            memory_budget: Some(usize::MAX),
            ..Default::default()
        };
        let ungoverned_verifier =
            Verifier::new(&bench.system, plain).unwrap_or_else(|e| panic!("{name}: {e}"));
        let governed_verifier =
            Verifier::new(&bench.system, governed).unwrap_or_else(|e| panic!("{name}: {e}"));
        for engine in ENGINES {
            let mut verdict = String::new();
            let ungoverned_us = best_wall_us(&ungoverned_verifier, engine, &mut verdict);
            let mut governed_verdict = String::new();
            let governed_us = best_wall_us(&governed_verifier, engine, &mut governed_verdict);
            assert_eq!(
                verdict, governed_verdict,
                "{name}/{engine}: generous limits changed the verdict"
            );
            out.push(Entry {
                bench: name.to_string(),
                engine: engine.to_string(),
                verdict,
                ungoverned_us,
                governed_us,
            });
        }
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut items = Vec::new();
    for e in entries {
        let mut w = ObjWriter::new();
        w.str_field("bench", &e.bench);
        w.str_field("engine", &e.engine);
        w.str_field("verdict", &e.verdict);
        w.num_field("ungoverned_us", e.ungoverned_us);
        w.num_field("governed_us", e.governed_us);
        w.num_field("overhead_permille", e.overhead_permille());
        items.push(w.finish());
    }
    let mut root = ObjWriter::new();
    root.num_field("threads", 1);
    root.raw_field("entries", &format!("[{}]", items.join(",")));
    let mut buf = root.finish();
    buf.push('\n');
    buf
}

fn parse_baseline(text: &str) -> Result<Vec<(String, String, u64)>, String> {
    let root = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("baseline has no `entries` array")?;
    let mut out = Vec::new();
    for e in entries {
        out.push((
            e.get("bench")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `bench`")?
                .to_string(),
            e.get("engine")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `engine`")?
                .to_string(),
            e.get("governed_us")
                .and_then(Value::as_u64)
                .ok_or("baseline entry missing numeric `governed_us`")?,
        ));
    }
    Ok(out)
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

fn check(entries: &[Entry], baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let baseline = parse_baseline(&text)?;
    let mut failures = Vec::new();
    for e in entries {
        let Some((_, _, base_us)) = baseline
            .iter()
            .find(|(b, eng, _)| *b == e.bench && *eng == e.engine)
        else {
            println!(
                "note: {} / {} has no baseline entry (new benchmark?)",
                e.bench, e.engine
            );
            continue;
        };
        let marker = if regresses(*base_us, e.governed_us) {
            failures.push(format!(
                "{} / {}: governed {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
                e.bench,
                e.engine,
                e.governed_us,
                base_us,
                (TOLERANCE - 1.0) * 100.0,
                FLOOR_US / 1000
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<22} {:<18} governed {:>9} µs (baseline {:>9}, overhead {:>5}‰) {}",
            e.bench,
            e.engine,
            e.governed_us,
            base_us,
            e.overhead_permille(),
            marker
        );
    }
    if failures.is_empty() {
        println!(
            "governed wall-clock within tolerance for all {} entries",
            entries.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("governance bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let entries = measure();
    match flag("--check") {
        Some(baseline) => match check(&entries, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_governance: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_governance.json".into());
            let jsonv = to_json(&entries);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_governance: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            for e in &entries {
                println!(
                    "{:<22} {:<18} ungoverned {:>9} µs  governed {:>9} µs  overhead {:>5}‰",
                    e.bench,
                    e.engine,
                    e.ungoverned_us,
                    e.governed_us,
                    e.overhead_permille()
                );
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let entries = vec![Entry {
            bench: "dekker".into(),
            engine: "simplified-reach".into(),
            verdict: "UNSAFE".into(),
            ungoverned_us: 1000,
            governed_us: 1010,
        }];
        assert_eq!(entries[0].overhead_permille(), 1010);
        let parsed = parse_baseline(&to_json(&entries)).unwrap();
        assert_eq!(parsed.len(), 1);
        let (bench, engine, governed_us) = &parsed[0];
        assert_eq!(bench, "dekker");
        assert_eq!(engine, "simplified-reach");
        assert_eq!(*governed_us, 1010);
    }
}
