//! Cross-engine agreement: the direct simplified-semantics search and the
//! `makeP` Datalog encoding are two implementations of the same decision
//! procedure (Theorem 3.4 + Theorem 4.1/Lemma 4.3) and must produce the
//! same verdict on every system in the decidable class.

use parra_core::verify::{Engine, Verdict, Verifier, VerifierOptions};
use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, k: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((self.0 >> 33) as usize) % k.max(1)
    }
}

fn random_system(seed: u64, allow_cas: bool, n_dis: usize) -> ParamSystem {
    let mut rng = Lcg(seed);
    let n_vars = 2u32;
    let dom = 2u32;
    let mut b = SystemBuilder::new(dom);
    for i in 0..n_vars {
        b.var(&format!("v{i}"));
    }
    let mut build_program = |name: &str, len: usize, cas: bool, with_assert: bool| {
        let mut p = b.program(name);
        let r0 = p.reg("r0");
        for _ in 0..len {
            let x = VarId(rng.next(n_vars as usize) as u32);
            match rng.next(if cas { 5 } else { 4 }) {
                0 => {
                    p.load(r0, x);
                }
                1 => {
                    let v = rng.next(dom as usize) as u32;
                    p.store(x, Expr::val(v));
                }
                2 => {
                    let v = rng.next(dom as usize) as u32;
                    p.assume(Expr::reg(r0).eq(Expr::val(v)));
                }
                3 => {
                    p.store(x, Expr::reg(r0));
                }
                _ => {
                    let v1 = rng.next(dom as usize) as u32;
                    let v2 = rng.next(dom as usize) as u32;
                    p.cas(x, Expr::val(v1), Expr::val(v2));
                }
            }
        }
        if with_assert {
            p.assert_false();
        }
        p.finish()
    };
    let env = build_program("env", 3, false, false);
    let dis: Vec<_> = (0..n_dis)
        .map(|i| build_program(&format!("d{i}"), 2, allow_cas, i == 0))
        .collect();
    b.build(env, dis)
}

fn check(sys: &ParamSystem, label: &str) {
    let v = Verifier::new(sys, VerifierOptions::default()).expect("decidable class");
    let r1 = v.run(Engine::SimplifiedReach);
    let r2 = v.run(Engine::CacheDatalog);
    assert_ne!(r1.verdict, Verdict::Unknown, "{label}: reach truncated");
    assert_ne!(r2.verdict, Verdict::Unknown, "{label}: datalog truncated");
    assert_eq!(
        r1.verdict,
        r2.verdict,
        "{label}: engines disagree\nsystem:\n{}",
        parra_program::pretty::system_to_string(sys)
    );
    // The concrete baseline may only strengthen Unsafe verdicts.
    let r3 = v.run(Engine::BoundedConcrete);
    if r3.verdict == Verdict::Unsafe {
        assert_eq!(
            r1.verdict,
            Verdict::Unsafe,
            "{label}: concrete found a bug the parameterized engines missed"
        );
    }
}

#[test]
fn random_cas_free_systems() {
    for seed in 0..40 {
        let sys = random_system(seed, false, 1);
        check(&sys, &format!("nocas-{seed}"));
    }
}

#[test]
fn random_cas_systems() {
    for seed in 0..40 {
        let sys = random_system(2000 + seed, true, 1);
        check(&sys, &format!("cas-{seed}"));
    }
}

#[test]
fn random_two_dis_systems() {
    for seed in 0..25 {
        let sys = random_system(9000 + seed, true, 2);
        check(&sys, &format!("2dis-{seed}"));
    }
}
