#![warn(missing_docs)]

//! # parra-campaign — crater-style verification campaigns
//!
//! `parra batch` is one process and one pass with no memory of prior
//! runs. This crate turns batch sweeps into *campaigns*: persistent,
//! checkpointed, sharded, resumable, and diffable experiments over a
//! plain-directory store — the regression-fleet layer ROADMAP item 2
//! asks for, modelled on crater's experiment/checkpoint/report split.
//!
//! The moving parts:
//!
//! * [`hash`] — a stable content key over `(canonical system text,
//!   engine id, options fingerprint)`. The canonical text is the
//!   pretty-printer's rendering of the *parsed* system, so the key is
//!   invariant under whitespace, formatting, and file renames, and
//!   changes exactly when the system, the engine selection, or a
//!   verdict-relevant option changes.
//! * [`store`] — the on-disk experiment store: a `manifest.json`
//!   describing the campaign and an append-only `results.jsonl` of
//!   per-input records, checkpointed after every input. Each record
//!   separates deterministic fields from a `volatile` section (wall
//!   clock), so two stores can be compared byte-for-byte modulo timing.
//! * [`runner`] — planning (key computation, cache hits, deterministic
//!   `--shard K/N` assignment in sorted key order) and execution
//!   (per-input panic isolation, resource budgets, checkpoint append).
//!   Interrupted and errored inputs are re-run on resume; decisive and
//!   completed-Unknown verdicts are kept.
//! * [`diff`] — campaign-vs-campaign comparison through the existing
//!   `parra report` machinery: verdict flips are always fatal, duration
//!   regressions past a threshold are flagged, and added/removed inputs
//!   are listed — crater's toolchain diff, for verification sweeps.

pub mod diff;
pub mod hash;
pub mod runner;
pub mod store;

pub use diff::{diff_stores, render_diff, CampaignDiff, CAMPAIGN_FLOOR_US};
pub use hash::content_key;
pub use runner::{
    plan, run_campaign, shard_of, CampaignOptions, PlanEntry, Shard, Summary, KILL_EXIT_CODE,
};
pub use store::{Manifest, Record, Store, STORE_VERSION};
