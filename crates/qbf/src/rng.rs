//! A small deterministic PRNG (std-only).
//!
//! The offline build environment rules out the `rand` crate; the
//! generators in [`gen`](crate::gen) and the randomized tests across the
//! workspace need nothing more than a seedable, well-mixed `u64` stream.
//! This is `splitmix64` (Steele, Lea, Flood: "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — the generator `rand`
//! itself uses to seed from integers.

/// A seedable splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound > 0`), by rejection-free
    /// multiply-shift (Lemire); bias is negligible for the small bounds
    /// used here.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A biased coin: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bound_and_covers_it() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = Rng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "heads = {heads}");
    }
}
