//! The uniform engine abstraction and the portfolio race.
//!
//! Every decision procedure — the §3 simplified-semantics search, the
//! two §4 `makeP` Datalog routes, and the bounded concrete-RA baseline —
//! implements one [`Engine`] trait: *run under this budget, polling this
//! cancel token, recording into this recorder*. The trait replaces the
//! ad-hoc per-engine dispatch the verifier used to carry and is what the
//! portfolio scheduler, the CLI, and batch campaigns program against.
//!
//! [`Verifier::race`] builds on it: the selected engines run
//! concurrently, each on its own OS thread (engines keep their own
//! internal worker fleets), and the first *decisive* verdict —
//! [`Safe`](Verdict::Safe) or [`Unsafe`](Verdict::Unsafe) — cancels the
//! rest through a race-scoped child [`CancelToken`]. Losers finish as
//! `Interrupted(cancelled)` and are kept as portfolio metadata; they are
//! never aggregated as if an engine had genuinely answered `Unknown`
//! *and* they never trip the caller's token (child tokens do not
//! propagate upward). The raced verdict therefore equals the sequential
//! `--all-engines` aggregate: a decisive verdict dominates aggregation,
//! and with no decisive verdict every engine runs to completion exactly
//! as it would sequentially.

use crate::makep::{DatalogTarget, Guess, MakeP};
use crate::verify::{
    aggregate_verdicts, EngineId, RunReport, Stats, Verdict, VerificationResult, Verifier,
};
use crate::witness::{self, LinearCheck};
use parra_datalog::eval::Evaluator;
use parra_datalog::plan::PlanCache;
use parra_limits::{CancelToken, InterruptReason, ResourceBudget};
use parra_obs::{Phase, PhaseTimer, Recorder};
use parra_ra::explore::{ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachOutcome, Reachability, SimpTarget};
use std::time::{Duration, Instant};

/// A verification engine: one decision procedure over the verifier's
/// goal-transformed system.
///
/// Implementations are cheap handles borrowing a [`Verifier`] (obtain
/// one with [`Verifier::engine`]); `run` is where the work happens. The
/// shared instrumentation — recorder scoping under `{engine}/`,
/// `run_start`/`run_end` events, counter/phase attribution — is applied
/// uniformly inside `run`, so every implementation reports identically.
pub trait Engine: Sync {
    /// Which engine this is.
    fn id(&self) -> EngineId;

    /// Runs the engine to a [`VerificationResult`].
    ///
    /// `budget` carries the deadline/memory limits; `cancel` is the
    /// run-scoping cancellation token the engine polls at round
    /// granularity (callers pass a child token so cancelling this run
    /// never leaks into sibling runs); `rec` receives the run's metrics
    /// and flight-recorder events.
    fn run(
        &self,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
    ) -> VerificationResult;
}

/// [`EngineId::SimplifiedReach`] as an [`Engine`].
pub struct SimplifiedReachEngine<'v>(&'v Verifier);

/// [`EngineId::CacheDatalog`] as an [`Engine`].
pub struct CacheDatalogEngine<'v>(&'v Verifier);

/// [`EngineId::LinearDatalog`] as an [`Engine`].
pub struct LinearDatalogEngine<'v>(&'v Verifier);

/// [`EngineId::BoundedConcrete`] as an [`Engine`].
pub struct BoundedConcreteEngine<'v>(&'v Verifier);

impl Engine for SimplifiedReachEngine<'_> {
    fn id(&self) -> EngineId {
        EngineId::SimplifiedReach
    }
    fn run(
        &self,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
    ) -> VerificationResult {
        self.0
            .instrumented(self.id(), budget, cancel, rec, |scope, gov| {
                self.0.run_simplified(scope, gov)
            })
    }
}

impl Engine for CacheDatalogEngine<'_> {
    fn id(&self) -> EngineId {
        EngineId::CacheDatalog
    }
    fn run(
        &self,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
    ) -> VerificationResult {
        self.0
            .instrumented(self.id(), budget, cancel, rec, |scope, gov| {
                self.0.run_datalog(scope, gov)
            })
    }
}

impl Engine for LinearDatalogEngine<'_> {
    fn id(&self) -> EngineId {
        EngineId::LinearDatalog
    }
    fn run(
        &self,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
    ) -> VerificationResult {
        self.0
            .instrumented(self.id(), budget, cancel, rec, |scope, gov| {
                self.0.run_linear(scope, gov)
            })
    }
}

impl Engine for BoundedConcreteEngine<'_> {
    fn id(&self) -> EngineId {
        EngineId::BoundedConcrete
    }
    fn run(
        &self,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
    ) -> VerificationResult {
        self.0
            .instrumented(self.id(), budget, cancel, rec, |scope, gov| {
                self.0.run_concrete(scope, gov)
            })
    }
}

/// The outcome of one portfolio race ([`Verifier::race`]).
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The racers, in the order they were passed.
    pub engines: Vec<EngineId>,
    /// One result per racer, in `engines` order. Losers cancelled by the
    /// winner carry `Interrupted(cancelled)` and a race note — they are
    /// metadata about the race, not engine answers.
    pub results: Vec<VerificationResult>,
    /// Index (into `engines`) of the racer whose decisive verdict won,
    /// if any. Which engine wins is wall-clock-dependent; the aggregate
    /// `verdict` is not.
    pub winner: Option<usize>,
    /// The aggregate verdict — identical to what the sequential
    /// `--all-engines` aggregation over the same engines reports.
    pub verdict: Verdict,
    /// Wall-clock time of the whole race.
    pub duration: Duration,
}

impl RaceReport {
    /// The winning engine, when some racer answered decisively.
    pub fn winner_engine(&self) -> Option<EngineId> {
        self.winner.map(|i| self.engines[i])
    }

    /// The winning result, when some racer answered decisively.
    pub fn winner_result(&self) -> Option<&VerificationResult> {
        self.winner.map(|i| &self.results[i])
    }
}

impl Verifier {
    /// The [`Engine`] implementation for `id`, borrowing this verifier.
    pub fn engine(&self, id: EngineId) -> Box<dyn Engine + '_> {
        match id {
            EngineId::SimplifiedReach => Box::new(SimplifiedReachEngine(self)),
            EngineId::CacheDatalog => Box::new(CacheDatalogEngine(self)),
            EngineId::LinearDatalog => Box::new(LinearDatalogEngine(self)),
            EngineId::BoundedConcrete => Box::new(BoundedConcreteEngine(self)),
        }
    }

    /// Races `engines` concurrently; the first decisive verdict (Safe or
    /// Unsafe) cancels the rest via a race-scoped child of
    /// [`VerifierOptions::cancel`](crate::verify::VerifierOptions::cancel)
    /// — the caller's token is never tripped by the race.
    ///
    /// Unlike sequential `--all-engines` (where each engine gets the
    /// full timeout), the wall-clock deadline spans the race as a whole:
    /// `--timeout 10` means the answer arrives within ten seconds.
    /// Panicking racers degrade to `Unknown` exactly as
    /// [`Verifier::run_isolated`] does.
    ///
    /// # Errors
    ///
    /// Decisive racers that disagree (a `Safe` next to an `Unsafe`)
    /// indicate an engine bug and surface as an error, as in sequential
    /// aggregation.
    pub fn race(&self, engines: &[EngineId]) -> Result<RaceReport, String> {
        let start = Instant::now();
        let race_cancel = self.options.cancel.child();
        let budget = self.base_budget();
        let jobs: Vec<Box<dyn FnOnce() -> VerificationResult + Send + '_>> = engines
            .iter()
            .map(|&id| {
                let cancel = race_cancel.clone();
                let budget = budget.clone();
                Box::new(move || {
                    self.catch_panics(id, &self.rec, || {
                        self.engine(id).run(&budget, &cancel, &self.rec)
                    })
                }) as Box<dyn FnOnce() -> VerificationResult + Send + '_>
            })
            .collect();
        let outcome = parra_search::race(
            jobs,
            |r: &VerificationResult| r.verdict.is_decided(),
            || race_cancel.cancel(),
        );
        let mut results: Vec<VerificationResult> = outcome
            .results
            .into_iter()
            .map(|r| r.expect("panics are contained inside catch_panics"))
            .collect();
        let duration = start.elapsed();

        // Losers the winner cancelled are portfolio metadata: note why
        // they were interrupted so nobody reads them as engine verdicts.
        if let Some(w) = outcome.winner {
            let (weng, wverdict) = (engines[w], results[w].verdict);
            for (i, r) in results.iter_mut().enumerate() {
                if i != w && r.verdict == Verdict::Interrupted(InterruptReason::Cancelled) {
                    let note =
                        format!("cancelled by portfolio race: {weng} answered {wverdict} first");
                    r.notes.push(note.clone());
                    r.report.notes.push(note);
                }
            }
        }
        // A cancellation of the caller's token that interrupted the race
        // is consumed, exactly as in sequential runs.
        if self.options.cancel.is_cancelled()
            && results
                .iter()
                .any(|r| r.verdict == Verdict::Interrupted(InterruptReason::Cancelled))
        {
            self.options.cancel.acknowledge();
        }

        let verdicts: Vec<(EngineId, Verdict)> = engines
            .iter()
            .copied()
            .zip(results.iter().map(|r| r.verdict))
            .collect();
        let verdict = aggregate_verdicts(&verdicts)?;

        if self.rec.is_enabled() {
            // The engine list and aggregate verdict are deterministic;
            // which racer won (and how long it took) is wall-clock-bound
            // and goes in `volatile`.
            let names = engines
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let mut vol: Vec<(&str, u64)> = vec![("duration_us", duration.as_micros() as u64)];
            if let Some(w) = outcome.winner {
                vol.push(("winner", w as u64));
            }
            self.rec.scoped("race/").event_with(
                "race",
                &[
                    ("n_engines", engines.len().into()),
                    ("engines", names.as_str().into()),
                    ("verdict", verdict.to_string().into()),
                ],
                &vol,
            );
        }

        Ok(RaceReport {
            engines: engines.to_vec(),
            results,
            winner: outcome.winner,
            verdict,
            duration,
        })
    }

    /// Runs an engine *selection* — the portfolio shape both `parra
    /// batch` and `parra campaign` expose: either each engine in turn
    /// (isolated, each with the full budget) or all of them raced. The
    /// aggregate verdict is identical either way; only the scheduling
    /// differs.
    ///
    /// # Errors
    ///
    /// Decisive engines that disagree surface as an error (an engine
    /// bug), as in [`Verifier::race`] and [`aggregate_verdicts`].
    pub fn run_selection(
        &self,
        engines: &[EngineId],
        race: bool,
    ) -> Result<SelectionOutcome, String> {
        if race {
            let outcome = self.race(engines)?;
            let interrupted = outcome
                .results
                .iter()
                .find_map(|r| r.verdict.interrupt_reason());
            return Ok(SelectionOutcome {
                verdict: outcome.verdict,
                interrupted,
                results: outcome.results,
            });
        }
        let mut results = Vec::new();
        let mut verdicts = Vec::new();
        let mut interrupted = None;
        for &engine in engines {
            let result = self.run_isolated(engine);
            interrupted = interrupted.or(result.verdict.interrupt_reason());
            verdicts.push((result.engine, result.verdict));
            results.push(result);
        }
        let verdict = aggregate_verdicts(&verdicts)?;
        Ok(SelectionOutcome {
            verdict,
            interrupted,
            results,
        })
    }
}

/// The outcome of [`Verifier::run_selection`].
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The aggregate verdict over the selection.
    pub verdict: Verdict,
    /// The first interruption reason any engine run reported, decided
    /// aggregate or not. Callers that mirror `parra batch` lines null
    /// this out once `verdict.is_decided()`; callers that audit budget
    /// health (`batch --strict`) read it raw.
    pub interrupted: Option<InterruptReason>,
    /// One result per engine, in selection order.
    pub results: Vec<VerificationResult>,
}

/// Aggregate outcome of the Datalog guess fleet.
struct FleetOutcome {
    /// Max rule count over the evaluated guess programs.
    rules: usize,
    /// Max derived-atom count over the evaluated guess databases.
    atoms: usize,
    /// Lowest-index guess whose query derived the goal.
    winner: Option<usize>,
    /// Set when the governor stopped any worker or evaluation before
    /// every guess completed; "no winner" is then inconclusive.
    interrupted: Option<InterruptReason>,
}

impl Verifier {
    pub(crate) fn run_simplified(
        &self,
        rec: &Recorder,
        gov: &ResourceBudget,
    ) -> VerificationResult {
        if let Some(r) = self.trivially_safe(EngineId::SimplifiedReach) {
            return r;
        }
        let sys = &self.goal.system;
        let engine = Reachability::new(sys.clone(), self.budget.clone(), self.options.reach_limits)
            .expect("env CAS-freedom checked in Verifier::new")
            .with_recorder(rec.clone())
            .with_threads(self.options.threads)
            .with_governor(gov.clone());
        let target = SimpTarget::MessageGenerated(self.goal.goal_var, self.goal.goal_val);
        let report = engine.run(target);
        let mut notes = Vec::new();
        let verdict = match report.outcome {
            ReachOutcome::Unsafe => Verdict::Unsafe,
            ReachOutcome::Safe => Verdict::Safe,
            ReachOutcome::Truncated => {
                notes.push("search limits hit; Safe could not be concluded".into());
                Verdict::Unknown
            }
            ReachOutcome::Interrupted(reason) => {
                notes.push(format!(
                    "interrupted ({reason}): the {reason} budget was exhausted; \
                     partial statistics only, Safe could not be concluded"
                ));
                Verdict::Interrupted(reason)
            }
        };
        let (env_thread_bound, witness_lines) = match &report.witness {
            Some(w) => {
                let graph = DepGraph::build(sys, &self.budget, w);
                let bound = graph
                    .find_message(self.goal.goal_var, self.goal.goal_val)
                    .map(|n| cost_of_graph(&graph, n));
                let lines = w
                    .dis_path
                    .iter()
                    .map(|s| {
                        let p = &sys.dis[s.thread];
                        let names = parra_program::pretty::Names::for_program(&sys.vars, p);
                        let instr = parra_program::pretty::instr_to_string(
                            &p.cfa().edges()[s.edge].instr,
                            names,
                        );
                        format!("dis{}: {}", s.thread + 1, instr)
                    })
                    .collect();
                (bound, lines)
            }
            None => (None, Vec::new()),
        };
        VerificationResult {
            verdict,
            engine: EngineId::SimplifiedReach,
            stats: Stats {
                states: report.states,
                worlds: report.worlds,
                peak_env_msgs: report.peak_env_msgs,
                ..Stats::default()
            },
            env_thread_bound,
            witness_lines,
            notes,
            report: RunReport::empty(EngineId::SimplifiedReach),
        }
    }

    /// Builds `makeP` and enumerates its guesses, mapping failures to an
    /// `Unknown` result for `engine`.
    fn makep_setup(
        &self,
        rec: &Recorder,
        engine: EngineId,
    ) -> Result<(MakeP<'_>, Vec<Guess>), Box<VerificationResult>> {
        let unknown = |note: String| {
            Box::new(VerificationResult {
                verdict: Verdict::Unknown,
                engine,
                stats: Stats::default(),
                env_thread_bound: None,
                witness_lines: vec![],
                notes: vec![note],
                report: RunReport::empty(engine),
            })
        };
        let sys = &self.goal.system;
        let mk = match MakeP::new(sys, self.budget.clone(), self.options.makep_limits) {
            Ok(mk) => mk.with_recorder(rec.clone()),
            Err(e) => return Err(unknown(format!("makeP not applicable: {e}"))),
        };
        let guesses = match mk.guesses() {
            Ok(g) => g,
            Err(e) => return Err(unknown(format!("guess enumeration failed: {e}"))),
        };
        Ok((mk, guesses))
    }

    /// Evaluates every guess's Datalog query with provenance *off*,
    /// racing the fleet and stopping as soon as one derives the goal.
    /// Returns the max program/database sizes seen and the lowest-index
    /// winning guess (`None` means every query completed without the
    /// goal: `Safe`).
    fn datalog_fleet(
        &self,
        rec: &Recorder,
        mk: &MakeP,
        guesses: &[Guess],
        target: DatalogTarget,
        cache: &std::sync::Mutex<PlanCache>,
        gov: &ResourceBudget,
    ) -> FleetOutcome {
        let n_workers = self.options.threads.max(1);
        // With a single guess there is no fleet to parallelize; hand the
        // thread budget to the evaluator's delta batches instead.
        let eval_threads = if guesses.len() <= 1 { n_workers } else { 1 };
        let found = std::sync::atomic::AtomicBool::new(false);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let n_guesses = guesses.len();
        let interrupted: std::sync::Mutex<Option<InterruptReason>> = std::sync::Mutex::new(None);
        // Per-guess records: (guess index, rules, atoms, derived goal).
        let records: Vec<(usize, usize, usize, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let found = &found;
                    let next = &next;
                    let interrupted = &interrupted;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            if found.load(std::sync::atomic::Ordering::Relaxed) {
                                break;
                            }
                            // Round granularity for the fleet is one guess;
                            // the evaluator below also checks per
                            // semi-naive round within a guess.
                            if let Err(reason) = gov.check() {
                                let mut slot = interrupted.lock().expect("interrupt slot poisoned");
                                slot.get_or_insert(reason);
                                break;
                            }
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= guesses.len() {
                                break;
                            }
                            rec.heartbeat(|| format!("datalog: guess {i}/{n_guesses}"));
                            let (prog, goal) = mk.program(&guesses[i], target);
                            // Guess programs share rule lists; the cache
                            // hands every worker the same plan after the
                            // first computes it.
                            let plan = cache.lock().expect("plan cache poisoned").plan(&prog);
                            // Round events stay deterministic only when a
                            // single guess runs (the fleet races workers,
                            // so multi-guess schedules are timing-bound).
                            let db = Evaluator::with_plan(&prog, plan)
                                .with_recorder(rec.clone())
                                .with_events(n_guesses == 1)
                                .with_threads(eval_threads)
                                .with_governor(gov.clone())
                                .run_until(Some(&goal));
                            let won = db.contains(&goal);
                            if let Some(reason) = db.interrupted() {
                                // The partial database is a sound under-
                                // approximation: "goal not derived" proves
                                // nothing for this guess.
                                let mut slot = interrupted.lock().expect("interrupt slot poisoned");
                                slot.get_or_insert(reason);
                                if !won {
                                    break;
                                }
                            }
                            local.push((i, prog.rules().len(), db.len(), won));
                            if won {
                                found.store(true, std::sync::atomic::Ordering::Relaxed);
                                break;
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("guess worker panicked"))
                .collect()
        });
        let mut out = FleetOutcome {
            rules: 0,
            atoms: 0,
            winner: None,
            interrupted: interrupted.into_inner().expect("interrupt slot poisoned"),
        };
        for &(i, rules, atoms, won) in &records {
            out.rules = out.rules.max(rules);
            out.atoms = out.atoms.max(atoms);
            if won {
                out.winner = Some(out.winner.map_or(i, |w: usize| w.min(i)));
            }
        }
        if rec.is_enabled() {
            // Which guesses got evaluated (and so the maxima, and even the
            // winning index when several guesses win) depends on worker
            // timing — everything but the guess count is volatile.
            let mut vol: Vec<(&str, u64)> = vec![
                ("rules_max", out.rules as u64),
                ("atoms_max", out.atoms as u64),
            ];
            if let Some(w) = out.winner {
                vol.push(("winner", w as u64));
            }
            rec.event_with("fleet", &[("n_guesses", n_guesses.into())], &vol);
        }
        out
    }

    pub(crate) fn run_datalog(&self, rec: &Recorder, gov: &ResourceBudget) -> VerificationResult {
        if let Some(r) = self.trivially_safe(EngineId::CacheDatalog) {
            return r;
        }
        let target = DatalogTarget::MessageGenerated(self.goal.goal_var, self.goal.goal_val);
        let (mk, guesses) = match self.makep_setup(rec, EngineId::CacheDatalog) {
            Ok(x) => x,
            Err(r) => return *r,
        };
        // A host-provided shared cache (warm serve requests) takes the
        // place of the run-local one; plans are deterministic, so the
        // only difference is who pays for planning.
        let local_cache;
        let plan_cache: &std::sync::Mutex<PlanCache> = match self.options.plan_cache.as_ref() {
            Some(shared) => shared.as_mutex(),
            None => {
                local_cache = std::sync::Mutex::new(PlanCache::new());
                &local_cache
            }
        };
        let fleet = self.datalog_fleet(rec, &mk, &guesses, target, plan_cache, gov);
        let mut stats = Stats {
            guesses: guesses.len(),
            datalog_rules: fleet.rules,
            datalog_atoms: fleet.atoms,
            ..Stats::default()
        };
        let mut report = RunReport::empty(EngineId::CacheDatalog);
        let mut notes = Vec::new();
        // A winning guess is a sound Unsafe witness even if other guesses
        // were cut short; without one, an interrupted fleet is
        // inconclusive, never Safe.
        let mut verdict = match fleet.interrupted {
            Some(reason) if fleet.winner.is_none() => {
                notes.push(format!(
                    "interrupted ({reason}): not every guess was evaluated; \
                     partial statistics only, Safe could not be concluded"
                ));
                Verdict::Interrupted(reason)
            }
            _ => Verdict::Safe,
        };
        if let Some(wi) = fleet.winner {
            verdict = Verdict::Unsafe;
            // Lemma 4.6: re-run only the winning guess with provenance on
            // and read a bounded-cache schedule off its derivation,
            // counting intensional atoms only.
            let (prog, goal) = mk.program(&guesses[wi], target);
            let plan = plan_cache.lock().expect("plan cache poisoned").plan(&prog);
            let phases = PhaseTimer::new(rec);
            let _replay = phases.start(Phase::WitnessReplay);
            if let Some(w) = witness::extract(&prog, &goal, rec, self.options.threads, Some(plan)) {
                stats.cache_peak = w.peak_intensional;
                stats.datalog_atoms = stats.datalog_atoms.max(w.atoms);
                let occupancy: Vec<u64> = w.occupancy.iter().map(|&c| c as u64).collect();
                if !occupancy.is_empty() {
                    rec.record_series("cache_occupancy", occupancy.clone());
                }
                report.cache_occupancy = occupancy;
            }
        }
        VerificationResult {
            verdict,
            engine: EngineId::CacheDatalog,
            stats,
            env_thread_bound: None,
            witness_lines: vec![],
            notes,
            report,
        }
    }

    pub(crate) fn run_linear(&self, rec: &Recorder, gov: &ResourceBudget) -> VerificationResult {
        if let Some(r) = self.trivially_safe(EngineId::LinearDatalog) {
            return r;
        }
        let target = DatalogTarget::MessageGenerated(self.goal.goal_var, self.goal.goal_val);
        let (mk, guesses) = match self.makep_setup(rec, EngineId::LinearDatalog) {
            Ok(x) => x,
            Err(r) => return *r,
        };
        let local_cache;
        let plan_cache: &std::sync::Mutex<PlanCache> = match self.options.plan_cache.as_ref() {
            Some(shared) => shared.as_mutex(),
            None => {
                local_cache = std::sync::Mutex::new(PlanCache::new());
                &local_cache
            }
        };
        let fleet = self.datalog_fleet(rec, &mk, &guesses, target, plan_cache, gov);
        let mut stats = Stats {
            guesses: guesses.len(),
            datalog_rules: fleet.rules,
            datalog_atoms: fleet.atoms,
            ..Stats::default()
        };
        let mut report = RunReport::empty(EngineId::LinearDatalog);
        let mut notes = Vec::new();
        let mut witness_lines = Vec::new();
        let mut verdict = match fleet.interrupted {
            Some(reason) if fleet.winner.is_none() => {
                notes.push(format!(
                    "interrupted ({reason}): not every guess was evaluated; \
                     partial statistics only, Safe could not be concluded"
                ));
                Verdict::Interrupted(reason)
            }
            _ => Verdict::Safe,
        };
        if let Some(wi) = fleet.winner {
            verdict = Verdict::Unsafe;
            let (prog, goal) = mk.program(&guesses[wi], target);
            let plan = plan_cache.lock().expect("plan cache poisoned").plan(&prog);
            let phases = PhaseTimer::new(rec);
            let _replay = phases.start(Phase::WitnessReplay);
            match witness::extract(&prog, &goal, rec, self.options.threads, Some(plan)) {
                Some(w) => {
                    stats.cache_peak = w.peak_intensional;
                    stats.datalog_atoms = stats.datalog_atoms.max(w.atoms);
                    let occupancy: Vec<u64> = w.occupancy.iter().map(|&c| c as u64).collect();
                    if !occupancy.is_empty() {
                        rec.record_series("cache_occupancy", occupancy.clone());
                    }
                    report.cache_occupancy = occupancy;
                    if w.certified {
                        notes.push(format!(
                            "Lemma 4.6 schedule ({} steps) certified under ⊢ₖ with \
                             k = {} (intensional peak {})",
                            w.schedule.steps.len(),
                            w.schedule.peak,
                            w.peak_intensional,
                        ));
                    } else {
                        notes.push(
                            "certificate replay FAILED: the schedule does not re-derive \
                             the goal under the Cache semantics (engine bug)"
                                .into(),
                        );
                    }
                    match w.linear_check {
                        LinearCheck::Agrees => notes
                            .push("Lemma 4.2 cache→linear translation re-derives the goal".into()),
                        LinearCheck::Disagrees => notes.push(
                            "Lemma 4.2 cross-check FAILED: the translated linear program \
                             does not derive the goal (engine bug)"
                                .into(),
                        ),
                        LinearCheck::OutsideFragment => notes.push(
                            "Lemma 4.2 cross-check skipped: program outside the \
                             ≤2-atom-body fragment"
                                .into(),
                        ),
                    }
                    witness_lines = witness::render_lines(&prog, &w, 64);
                }
                None => notes.push(
                    "witness extraction failed: winning guess did not replay (engine bug)".into(),
                ),
            }
        }
        VerificationResult {
            verdict,
            engine: EngineId::LinearDatalog,
            stats,
            env_thread_bound: None,
            witness_lines,
            notes,
            report,
        }
    }

    pub(crate) fn run_concrete(&self, rec: &Recorder, gov: &ResourceBudget) -> VerificationResult {
        if let Some(r) = self.trivially_safe(EngineId::BoundedConcrete) {
            return r;
        }
        let sys = &self.goal.system;
        let mut stats = Stats::default();
        let mut exhausted_all = true;
        for n_env in 0..=self.options.concrete_max_env {
            let explorer = Explorer::new(
                Instance::new(sys.clone(), n_env),
                self.options.concrete_limits,
            )
            .with_recorder(rec.clone())
            .with_threads(self.options.threads)
            .with_governor(gov.clone());
            let report = explorer.run(Target::MessageGenerated(
                self.goal.goal_var,
                self.goal.goal_val,
            ));
            stats.states += report.states;
            match report.outcome {
                ExploreOutcome::Unsafe => {
                    return VerificationResult {
                        verdict: Verdict::Unsafe,
                        engine: EngineId::BoundedConcrete,
                        stats,
                        env_thread_bound: Some(n_env as u64),
                        witness_lines: report
                            .witness
                            .unwrap_or_default()
                            .into_iter()
                            .map(|s| s.description)
                            .collect(),
                        notes: vec![format!("violation found with {n_env} env threads")],
                        report: RunReport::empty(EngineId::BoundedConcrete),
                    }
                }
                ExploreOutcome::SafeExhausted => {}
                ExploreOutcome::SafeWithinBounds => exhausted_all = false,
                ExploreOutcome::Interrupted(reason) => {
                    // The budget covers the whole engine run, so the
                    // remaining instances would be interrupted too.
                    return VerificationResult {
                        verdict: Verdict::Interrupted(reason),
                        engine: EngineId::BoundedConcrete,
                        stats,
                        env_thread_bound: None,
                        witness_lines: vec![],
                        notes: vec![format!(
                            "interrupted ({reason}) while exploring the instance with \
                             {n_env} env threads; partial statistics only"
                        )],
                        report: RunReport::empty(EngineId::BoundedConcrete),
                    };
                }
            }
        }
        VerificationResult {
            verdict: Verdict::Unknown,
            engine: EngineId::BoundedConcrete,
            stats,
            env_thread_bound: None,
            witness_lines: vec![],
            notes: vec![format!(
                "no violation up to {} env threads ({}); the engine cannot prove \
                 parameterized safety",
                self.options.concrete_max_env,
                if exhausted_all {
                    "each instance exhausted"
                } else {
                    "bounds hit"
                }
            )],
            report: RunReport::empty(EngineId::BoundedConcrete),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::VerifierOptions;
    use parra_program::builder::SystemBuilder;
    use parra_program::system::ParamSystem;

    fn handshake(safe: bool) -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        if !safe {
            d.store(y, 1);
        }
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    fn sequential_aggregate(v: &Verifier, engines: &[EngineId]) -> Verdict {
        let verdicts: Vec<(EngineId, Verdict)> = engines
            .iter()
            .map(|&e| (e, v.run_isolated(e).verdict))
            .collect();
        aggregate_verdicts(&verdicts).expect("sequential engines agree")
    }

    #[test]
    fn race_matches_sequential_aggregate() {
        for safe in [false, true] {
            let sys = handshake(safe);
            let seq = {
                let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
                sequential_aggregate(&v, &EngineId::ALL)
            };
            let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
            let race = v.race(&EngineId::ALL).expect("no disagreement");
            assert_eq!(race.verdict, seq, "safe={safe}");
            assert_eq!(race.engines, EngineId::ALL.to_vec());
            assert_eq!(race.results.len(), 4);
            if let Some(w) = race.winner {
                assert!(race.results[w].verdict.is_decided());
                assert_eq!(race.winner_engine(), Some(race.engines[w]));
            }
        }
    }

    #[test]
    fn race_losers_carry_the_race_note_and_never_aggregate_as_answers() {
        let v = Verifier::new(&handshake(false), VerifierOptions::default()).unwrap();
        let race = v.race(&EngineId::ALL).expect("no disagreement");
        assert_eq!(race.verdict, Verdict::Unsafe);
        for (i, r) in race.results.iter().enumerate() {
            if r.verdict == Verdict::Interrupted(InterruptReason::Cancelled) {
                assert_ne!(Some(i), race.winner);
                assert!(
                    r.notes
                        .iter()
                        .any(|n| n.contains("cancelled by portfolio race")),
                    "loser {i} missing race note: {:?}",
                    r.notes
                );
            }
        }
    }

    #[test]
    fn race_never_trips_the_callers_token() {
        let cancel = parra_limits::CancelToken::new();
        let opts = VerifierOptions {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), opts).unwrap();
        let race = v.race(&EngineId::ALL).expect("no disagreement");
        assert_eq!(race.verdict, Verdict::Unsafe);
        assert!(
            !cancel.is_cancelled(),
            "the race's internal cancellation leaked into the caller's token"
        );
        // And a follow-up sequential run on the same verifier still decides.
        assert_eq!(v.run(EngineId::SimplifiedReach).verdict, Verdict::Unsafe);
    }

    #[test]
    fn precancelled_race_interrupts_everyone_and_rearms() {
        let cancel = parra_limits::CancelToken::new();
        let opts = VerifierOptions {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), opts).unwrap();
        cancel.cancel();
        let race = v.race(&EngineId::ALL).expect("no disagreement");
        assert!(
            race.results
                .iter()
                .all(|r| r.verdict == Verdict::Interrupted(InterruptReason::Cancelled)),
            "pre-cancelled race should interrupt every racer: {:?}",
            race.results.iter().map(|r| r.verdict).collect::<Vec<_>>()
        );
        assert_eq!(race.winner, None);
        // The race consumed the caller's request; the next race decides.
        let race2 = v.race(&EngineId::ALL).expect("no disagreement");
        assert_eq!(race2.verdict, Verdict::Unsafe);
    }

    #[test]
    fn race_contains_a_panicking_engine() {
        let opts = VerifierOptions {
            fail_point_panic: Some(EngineId::SimplifiedReach),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), opts).unwrap();
        let race = v.race(&EngineId::ALL).expect("no disagreement");
        // The panicked racer degrades to Unknown; the others still decide.
        assert_eq!(race.verdict, Verdict::Unsafe);
        let panicked = &race.results[0];
        assert_eq!(panicked.engine, EngineId::SimplifiedReach);
        assert!(matches!(
            panicked.verdict,
            Verdict::Unknown | Verdict::Interrupted(InterruptReason::Cancelled)
        ));
    }

    #[test]
    fn race_emits_one_deterministic_race_event() {
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let v =
            Verifier::new_with_recorder(&handshake(false), VerifierOptions::default(), rec.clone())
                .unwrap();
        let race = v.race(&EngineId::ALL).expect("no disagreement");
        let events = rec.events();
        let race_events: Vec<_> = events
            .iter()
            .filter(|e| e.scope == "race/" && e.kind == "race")
            .collect();
        assert_eq!(race_events.len(), 1);
        let e = race_events[0];
        assert!(e
            .fields
            .contains(&("n_engines".into(), parra_obs::EventValue::U64(4))));
        assert!(e.fields.contains(&(
            "engines".into(),
            parra_obs::EventValue::Str(
                "simplified-reach,cache-datalog,linear-datalog,bounded-concrete".into()
            )
        )));
        assert!(e.fields.contains(&(
            "verdict".into(),
            parra_obs::EventValue::Str("UNSAFE".into())
        )));
        // Winner attribution is wall-clock-bound: volatile only.
        assert!(!e.fields.iter().any(|(k, _)| k == "winner"));
        if let Some(w) = race.winner {
            assert!(e.volatile.contains(&("winner".into(), w as u64)));
        }
    }
}
