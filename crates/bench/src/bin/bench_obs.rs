//! Flight-recorder overhead benchmark and regression gate.
//!
//! Runs a litmus subset through the simplified-reach and cache-datalog
//! engines twice — once with the recorder disabled, once with a fresh
//! summary-level recorder per repetition (so the event log and metric
//! registry grow exactly as they would in one `--events-out` run) — and
//! records best-of-N wall-clock for both. The delta is the cost of the
//! per-world/per-round events, the phase timers, and the metric counters.
//!
//! ```text
//! bench_obs [--out FILE]        # measure and write FILE (default BENCH_obs.json)
//! bench_obs --check BASELINE    # measure and fail (exit 1) on regression
//! ```
//!
//! `--check` enforces two rules:
//!
//! 1. **Overhead** (self-relative, immune to machine speed): the recorded
//!    run must not exceed the unrecorded run by more than 5% *and* an
//!    absolute 2 ms floor (sub-millisecond runs are timer noise).
//! 2. **Wall-clock** (vs the committed baseline): the recorded wall-clock
//!    must not regress past the baseline by more than 25% and a 20 ms
//!    floor — the same rule as the other bench gates.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use parra_obs::{Level, Recorder};
use std::process::ExitCode;

/// The litmus subset: benchmarks with enough worlds/rounds for per-event
/// cost to show up if it were expensive.
const BENCHES: &[&str] = &[
    "producer-consumer",
    "peterson-ra",
    "dekker",
    "lamport-2-ra",
    "sb",
    "iriw",
];

const ENGINES: [EngineId; 2] = [EngineId::SimplifiedReach, EngineId::CacheDatalog];

/// Timed repetitions per entry; the best is recorded.
const REPS: usize = 3;

/// Max tolerated recorder overhead: recorded > unrecorded × 1.05 ...
const OVERHEAD_TOLERANCE: f64 = 1.05;

/// ... *and* recorded > unrecorded + 2 ms (below that it is timer noise).
const OVERHEAD_FLOOR_US: u64 = 2_000;

/// Relative wall-clock tolerance of the baseline comparison.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which baseline drift is noise.
const FLOOR_US: u64 = 20_000;

struct Entry {
    bench: String,
    engine: String,
    verdict: String,
    off_us: u64,
    on_us: u64,
    events: u64,
}

impl Entry {
    /// Recorded/unrecorded wall-clock ratio in permille (1000 = parity).
    fn overhead_permille(&self) -> u64 {
        if self.off_us == 0 {
            return 1000;
        }
        self.on_us.saturating_mul(1000) / self.off_us
    }
}

fn measure() -> Vec<Entry> {
    let mut out = Vec::new();
    for name in BENCHES {
        let bench = parra_litmus::by_name(name)
            .unwrap_or_else(|| panic!("unknown litmus benchmark `{name}`"));
        let options = VerifierOptions {
            threads: 1,
            ..Default::default()
        };
        let off_verifier =
            Verifier::new(&bench.system, options.clone()).unwrap_or_else(|e| panic!("{name}: {e}"));
        for engine in ENGINES {
            let mut verdict = String::new();
            let mut off_us = u64::MAX;
            for _ in 0..REPS {
                let r = off_verifier.run(engine);
                verdict = r.verdict.to_string();
                off_us = off_us.min(r.stats.duration.as_micros() as u64);
            }
            // A fresh recorder per rep: event sequence numbers, spans,
            // and counters start from zero exactly as in a real run.
            let mut on_us = u64::MAX;
            let mut events = 0u64;
            for _ in 0..REPS {
                let rec = Recorder::enabled(Level::Summary);
                let v = Verifier::new_with_recorder(&bench.system, options.clone(), rec.clone())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let r = v.run(engine);
                assert_eq!(
                    verdict,
                    r.verdict.to_string(),
                    "{name}/{engine}: recording changed the verdict"
                );
                on_us = on_us.min(r.stats.duration.as_micros() as u64);
                events = rec.events().len() as u64;
            }
            out.push(Entry {
                bench: name.to_string(),
                engine: engine.to_string(),
                verdict,
                off_us,
                on_us,
                events,
            });
        }
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut items = Vec::new();
    for e in entries {
        let mut w = ObjWriter::new();
        w.str_field("bench", &e.bench);
        w.str_field("engine", &e.engine);
        w.str_field("verdict", &e.verdict);
        w.num_field("off_us", e.off_us);
        w.num_field("on_us", e.on_us);
        w.num_field("events", e.events);
        w.num_field("overhead_permille", e.overhead_permille());
        items.push(w.finish());
    }
    let mut root = ObjWriter::new();
    root.num_field("threads", 1);
    root.raw_field("entries", &format!("[{}]", items.join(",")));
    let mut buf = root.finish();
    buf.push('\n');
    buf
}

fn parse_baseline(text: &str) -> Result<Vec<(String, String, u64)>, String> {
    let root = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("baseline has no `entries` array")?;
    let mut out = Vec::new();
    for e in entries {
        out.push((
            e.get("bench")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `bench`")?
                .to_string(),
            e.get("engine")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `engine`")?
                .to_string(),
            e.get("on_us")
                .and_then(Value::as_u64)
                .ok_or("baseline entry missing numeric `on_us`")?,
        ));
    }
    Ok(out)
}

/// Whether the recorded run exceeds the unrecorded one past the 5%-and-2ms
/// overhead rule.
fn overhead_exceeded(off_us: u64, on_us: u64) -> bool {
    on_us as f64 > off_us as f64 * OVERHEAD_TOLERANCE && on_us > off_us + OVERHEAD_FLOOR_US
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

fn check(entries: &[Entry], baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let baseline = parse_baseline(&text)?;
    let mut failures = Vec::new();
    for e in entries {
        let mut markers = Vec::new();
        if overhead_exceeded(e.off_us, e.on_us) {
            failures.push(format!(
                "{} / {}: recorder overhead {} µs → {} µs (>{:.0}% and >{} ms floor)",
                e.bench,
                e.engine,
                e.off_us,
                e.on_us,
                (OVERHEAD_TOLERANCE - 1.0) * 100.0,
                OVERHEAD_FLOOR_US / 1000
            ));
            markers.push("OVERHEAD");
        }
        let base = baseline
            .iter()
            .find(|(b, eng, _)| *b == e.bench && *eng == e.engine);
        let base_us = match base {
            Some((_, _, us)) => {
                if regresses(*us, e.on_us) {
                    failures.push(format!(
                        "{} / {}: recorded {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
                        e.bench,
                        e.engine,
                        e.on_us,
                        us,
                        (TOLERANCE - 1.0) * 100.0,
                        FLOOR_US / 1000
                    ));
                    markers.push("REGRESSED");
                }
                *us
            }
            None => {
                println!(
                    "note: {} / {} has no baseline entry (new benchmark?)",
                    e.bench, e.engine
                );
                0
            }
        };
        println!(
            "{:<22} {:<18} off {:>9} µs  on {:>9} µs (baseline {:>9}, overhead {:>5}‰, {} events) {}",
            e.bench,
            e.engine,
            e.off_us,
            e.on_us,
            base_us,
            e.overhead_permille(),
            e.events,
            if markers.is_empty() {
                "ok".to_string()
            } else {
                markers.join("+")
            }
        );
    }
    if failures.is_empty() {
        println!(
            "recorder overhead and wall-clock within tolerance for all {} entries",
            entries.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("flight-recorder bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let entries = measure();
    match flag("--check") {
        Some(baseline) => match check(&entries, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_obs: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_obs.json".into());
            let jsonv = to_json(&entries);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_obs: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            for e in &entries {
                println!(
                    "{:<22} {:<18} off {:>9} µs  on {:>9} µs  overhead {:>5}‰  {} events",
                    e.bench,
                    e.engine,
                    e.off_us,
                    e.on_us,
                    e.overhead_permille(),
                    e.events
                );
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_rule_needs_both_ratio_and_floor() {
        assert!(!overhead_exceeded(1_000, 2_900)); // tiny run: under the floor
        assert!(!overhead_exceeded(100_000, 104_000)); // under 5%
        assert!(overhead_exceeded(100_000, 106_000)); // over both
    }

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let entries = vec![Entry {
            bench: "dekker".into(),
            engine: "simplified-reach".into(),
            verdict: "UNSAFE".into(),
            off_us: 1000,
            on_us: 1010,
            events: 7,
        }];
        assert_eq!(entries[0].overhead_permille(), 1010);
        let parsed = parse_baseline(&to_json(&entries)).unwrap();
        assert_eq!(parsed.len(), 1);
        let (bench, engine, on_us) = &parsed[0];
        assert_eq!(bench, "dekker");
        assert_eq!(engine, "simplified-reach");
        assert_eq!(*on_us, 1010);
    }
}
