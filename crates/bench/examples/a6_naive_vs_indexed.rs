//! Experiment A6: indexed/interned evaluator vs the naive reference.
//!
//! For each litmus benchmark, builds the exact makeP guess fleet the
//! Datalog engines run, then evaluates it twice — once with the indexed
//! [`Evaluator`] and once with the [`NaiveEvaluator`] reference — walking
//! guesses in order and stopping at the first one that derives the goal
//! (the same early-exit the sequential engine takes). Prints the measured
//! wall-clock for both and the speedup; the numbers land in
//! EXPERIMENTS.md §A6.
//!
//! ```text
//! cargo run --release -p parra-bench --example a6_naive_vs_indexed
//! ```

use parra_core::makep::{DatalogTarget, MakeP, MakePLimits};
use parra_datalog::{Evaluator, NaiveEvaluator, PlanCache};
use parra_program::transform;
use parra_simplified::state::Budget;
use std::time::{Duration, Instant};

const BENCHES: &[&str] = &[
    "mp",
    "dekker",
    "peterson-ra",
    "peterson-ra-bratosz",
    "sb",
    "lb",
    "iriw",
    "wrc",
    "2+2w",
    "corr-parameterized",
    "producer-consumer",
    "spinlock-cas",
];

const REPS: usize = 3;

fn fmt_us(d: Duration) -> String {
    format!("{:>10} µs", d.as_micros())
}

fn main() {
    println!(
        "{:<22} {:>13} {:>13} {:>9}",
        "benchmark", "indexed", "naive", "speedup"
    );
    for name in BENCHES {
        let bench = parra_litmus::by_name(name).expect("known litmus benchmark");
        let goal = transform::assert_to_goal(&bench.system);
        let budget = Budget::exact(&goal.system).expect("litmus dis are loop-free");
        let mk = MakeP::new(&goal.system, budget, MakePLimits::default())
            .unwrap_or_else(|e| panic!("{name}: makeP not applicable: {e}"));
        let guesses = mk.guesses().unwrap_or_else(|e| panic!("{name}: {e}"));
        let target = DatalogTarget::MessageGenerated(goal.goal_var, goal.goal_val);

        // Build all programs once so both evaluators time pure evaluation.
        let programs: Vec<_> = guesses.iter().map(|g| mk.program(g, target)).collect();

        let indexed = best_of(REPS, || {
            // One plan cache per fleet walk, exactly as the engine runs it:
            // the first guess pays the planner, the rest share its plan.
            let mut cache = PlanCache::new();
            for (prog, g) in &programs {
                let plan = cache.plan(prog);
                if Evaluator::with_plan(prog, plan)
                    .run_until(Some(g))
                    .contains(g)
                {
                    return true;
                }
            }
            false
        });
        let naive = best_of(REPS, || {
            for (prog, g) in &programs {
                if NaiveEvaluator::new(prog).run_until(Some(g)).contains(g) {
                    return true;
                }
            }
            false
        });
        assert_eq!(
            indexed.1, naive.1,
            "{name}: evaluators disagree on the verdict"
        );

        let speedup = naive.0.as_secs_f64() / indexed.0.as_secs_f64();
        println!(
            "{:<22} {} {} {:>8.1}x",
            name,
            fmt_us(indexed.0),
            fmt_us(naive.0),
            speedup
        );
    }
}

fn best_of<F: FnMut() -> bool>(reps: usize, mut f: F) -> (Duration, bool) {
    let mut best = Duration::MAX;
    let mut verdict = false;
    for _ in 0..reps {
        let t = Instant::now();
        verdict = f();
        best = best.min(t.elapsed());
    }
    (best, verdict)
}
