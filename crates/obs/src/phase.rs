//! Phase attribution: where does a run's time go?
//!
//! A [`PhaseTimer`] splits a verification run into the six buckets of
//! [`Phase`] and accumulates elapsed microseconds into `phase/{name}_us`
//! counters on the recorder it was built from. Because phases are plain
//! counters they flow — with zero extra plumbing — into metric
//! snapshots, per-run counter deltas (and thus `RunReport` / `--json`),
//! the Prometheus exposition, and `parra report` aggregation. Each
//! [`PhaseGuard`] additionally opens a `phase:{name}` span so phases
//! show up as blocks in the Chrome trace.
//!
//! Phase counters are *CPU-time-like sums*: when several fleet workers
//! run fixpoints concurrently their phase times add, so a run's phase
//! total can exceed its wall-clock duration.

use crate::{Counter, Recorder, SpanGuard};
use std::time::Instant;

/// The phase taxonomy — every run decomposes into these buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Reading and parsing the input system.
    Parse,
    /// Planning: classification, transformation, guess enumeration,
    /// Datalog program construction.
    Plan,
    /// Building or catching up join indices.
    IndexBuild,
    /// Semi-naive / naive Datalog fixpoint rounds.
    Fixpoint,
    /// State-space search (waves, BFS rounds, concrete exploration).
    Search,
    /// Re-deriving and checking a witness after an unsafe verdict.
    WitnessReplay,
}

impl Phase {
    /// Every phase, in canonical order.
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Plan,
        Phase::IndexBuild,
        Phase::Fixpoint,
        Phase::Search,
        Phase::WitnessReplay,
    ];

    /// The snake_case name used in metric names and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::IndexBuild => "index_build",
            Phase::Fixpoint => "fixpoint",
            Phase::Search => "search",
            Phase::WitnessReplay => "witness_replay",
        }
    }

    /// The counter name (`phase/{name}_us`) under which this phase's
    /// accumulated microseconds are registered.
    pub fn counter_name(self) -> String {
        format!("phase/{}_us", self.as_str())
    }

    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Plan => 1,
            Phase::IndexBuild => 2,
            Phase::Fixpoint => 3,
            Phase::Search => 4,
            Phase::WitnessReplay => 5,
        }
    }
}

/// Accumulates per-phase elapsed time into `phase/{name}_us` counters.
///
/// Cheap to construct from a disabled recorder (all handles are no-ops)
/// and cheap to clone-free share by reference; the counters are atomic.
#[derive(Debug)]
pub struct PhaseTimer {
    enabled: bool,
    counters: [Counter; 6],
    rec: Recorder,
}

impl PhaseTimer {
    /// A timer whose counters live under `rec`'s scope.
    pub fn new(rec: &Recorder) -> PhaseTimer {
        PhaseTimer {
            enabled: rec.is_enabled(),
            counters: Phase::ALL.map(|p| rec.counter(&p.counter_name())),
            rec: rec.clone(),
        }
    }

    /// Whether the underlying recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing `phase`; time accrues when the guard drops. Opens a
    /// summary-level `phase:{name}` span (visible in the default trace).
    pub fn start(&self, phase: Phase) -> PhaseGuard<'_> {
        self.start_inner(phase, self.rec.span(&format!("phase:{}", phase.as_str())))
    }

    /// Like [`PhaseTimer::start`] but the span only exists at
    /// `Level::Debug` — for per-round / per-guess phases that would
    /// flood a summary trace.
    pub fn start_debug(&self, phase: Phase) -> PhaseGuard<'_> {
        self.start_inner(
            phase,
            self.rec.span_debug(&format!("phase:{}", phase.as_str())),
        )
    }

    fn start_inner(&self, phase: Phase, span: SpanGuard) -> PhaseGuard<'_> {
        PhaseGuard {
            timer: self,
            phase,
            start: self.enabled.then(Instant::now),
            _span: span,
        }
    }

    /// Directly adds `us` microseconds to `phase` (for call sites that
    /// measure themselves, e.g. accumulation inside a tight loop).
    pub fn add_us(&self, phase: Phase, us: u64) {
        self.counters[phase.index()].add(us);
    }

    /// The microseconds accumulated so far for `phase`.
    pub fn get_us(&self, phase: Phase) -> u64 {
        self.counters[phase.index()].get()
    }
}

/// RAII guard: accumulates the elapsed time into its phase on drop.
#[derive(Debug)]
pub struct PhaseGuard<'t> {
    timer: &'t PhaseTimer,
    phase: Phase,
    start: Option<Instant>,
    _span: SpanGuard,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.timer
                .add_us(self.phase, start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn phases_accumulate_into_counters() {
        let rec = Recorder::enabled(Level::Summary).scoped("engine/");
        let timer = PhaseTimer::new(&rec);
        {
            let _g = timer.start(Phase::Search);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        timer.add_us(Phase::IndexBuild, 123);
        assert!(timer.get_us(Phase::Search) >= 1_000);
        assert_eq!(timer.get_us(Phase::IndexBuild), 123);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["engine/phase/index_build_us"], 123);
        assert!(snap.counters["engine/phase/search_us"] >= 1_000);
        // The phase shows up as a span for the Chrome trace.
        assert!(rec
            .spans()
            .iter()
            .any(|s| s.name == "phase:search" && s.dur_us.is_some()));
    }

    #[test]
    fn disabled_timer_is_inert() {
        let timer = PhaseTimer::new(&Recorder::disabled());
        assert!(!timer.is_enabled());
        {
            let _g = timer.start(Phase::Fixpoint);
        }
        assert_eq!(timer.get_us(Phase::Fixpoint), 0);
    }

    #[test]
    fn debug_phase_spans_skipped_at_summary() {
        let rec = Recorder::enabled(Level::Summary);
        let timer = PhaseTimer::new(&rec);
        {
            let _g = timer.start_debug(Phase::Fixpoint);
        }
        assert!(rec.spans().is_empty());
        // But the time still accrues.
        assert!(rec.snapshot().counters.contains_key("phase/fixpoint_us"));
    }

    #[test]
    fn canonical_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(
            names,
            [
                "parse",
                "plan",
                "index_build",
                "fixpoint",
                "search",
                "witness_replay"
            ]
        );
        assert_eq!(
            Phase::WitnessReplay.counter_name(),
            "phase/witness_replay_us"
        );
    }
}
