//! Computations `ρ` as first-class, replayable values.
//!
//! A [`Trace`] is an initialized computation: a sequence of transitions
//! starting from `cf_init`. Pushing a transition re-checks every premise of
//! the Figure 2 rules, so a `Trace` is *valid by construction*. The
//! Section 3 operations (lifting, superposition, infinite supply) transform
//! transition sequences and re-validate them by replay.

use crate::config::{Config, Instance, ThreadId};
use crate::memory::Memory;
use crate::step::{self, Action, StepError, Transition};
use crate::timestamp::Timestamp;
use parra_program::ident::VarId;
use parra_program::system::ThreadKind;
use std::collections::BTreeSet;
use std::fmt;

/// A replay failure: which step failed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending transition.
    pub step: usize,
    /// The violated premise.
    pub error: StepError,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replay failed at step {}: {}", self.step, self.error)
    }
}

impl std::error::Error for ReplayError {}

/// An initialized RA computation
/// `ρ = cf_init → cf₁ → … → cfₙ`, valid by construction.
#[derive(Debug, Clone)]
pub struct Trace {
    instance: Instance,
    transitions: Vec<Transition>,
    /// `configs[i]` is the configuration *before* transition `i`;
    /// `configs.last()` is `last(ρ)`.
    configs: Vec<Config>,
}

impl Trace {
    /// The empty computation from `cf_init`.
    pub fn new(instance: Instance) -> Trace {
        let init = instance.initial_config();
        Trace {
            instance,
            transitions: Vec::new(),
            configs: vec![init],
        }
    }

    /// Replays a transition sequence from `cf_init`.
    ///
    /// # Errors
    ///
    /// Returns the first step whose premises fail.
    pub fn from_transitions(
        instance: Instance,
        transitions: Vec<Transition>,
    ) -> Result<Trace, ReplayError> {
        let mut trace = Trace::new(instance);
        for t in transitions {
            trace.push(t).map_err(|e| ReplayError {
                step: trace.len(),
                error: e,
            })?;
        }
        Ok(trace)
    }

    /// Appends a transition, checking all rule premises.
    ///
    /// # Errors
    ///
    /// Returns the violated premise; the trace is unchanged on error.
    pub fn push(&mut self, t: Transition) -> Result<(), StepError> {
        let next = step::apply(&self.instance, self.last(), &t)?;
        self.transitions.push(t);
        self.configs.push(next);
        Ok(())
    }

    /// The instance this computation runs over.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the computation is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// `first(ρ)` — always `cf_init` for initialized computations.
    pub fn first(&self) -> &Config {
        &self.configs[0]
    }

    /// `last(ρ)` — the final configuration.
    pub fn last(&self) -> &Config {
        self.configs.last().expect("configs is never empty")
    }

    /// The configuration before transition `i` (so `config_at(len())` is
    /// `last(ρ)`).
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    pub fn config_at(&self, i: usize) -> &Config {
        &self.configs[i]
    }

    /// `TID(ρ)` — the thread identifiers labelling transitions.
    pub fn thread_ids(&self) -> BTreeSet<ThreadId> {
        self.transitions.iter().map(|t| t.thread).collect()
    }

    /// `TS(ρ)` for variable `x`: all non-zero timestamps occurring on `x`
    /// across all messages of the final memory (messages persist, so the
    /// final memory contains every message of the computation) and all
    /// thread views.
    pub fn timestamps_on(&self, x: VarId) -> BTreeSet<Timestamp> {
        let mut out = BTreeSet::new();
        for cf in &self.configs {
            for m in cf.memory.iter() {
                let t = m.view.get(x);
                if !t.is_zero() {
                    out.insert(t);
                }
            }
            for th in &cf.threads {
                let t = th.view.get(x);
                if !t.is_zero() {
                    out.insert(t);
                }
            }
        }
        out
    }

    /// The projection `ρ↓TID'`: the transition subsequence of the given
    /// threads. The result is label data, not necessarily a valid
    /// initialized computation on its own.
    pub fn project<F: Fn(ThreadId) -> bool>(&self, keep: F) -> Vec<Transition> {
        self.transitions
            .iter()
            .filter(|t| keep(t.thread))
            .cloned()
            .collect()
    }

    /// The transitions of `env` threads (`ρ↓env`).
    pub fn env_projection(&self) -> Vec<Transition> {
        let n_env = self.instance.n_env();
        self.project(|tid| tid.0 < n_env)
    }

    /// The transitions of `dis` threads (`ρ↓dis`).
    pub fn dis_projection(&self) -> Vec<Transition> {
        let n_env = self.instance.n_env();
        self.project(|tid| tid.0 >= n_env)
    }

    /// `Msgs(ρ↓kind)`: the messages added by threads of the given kind
    /// during the computation.
    pub fn messages_added_by<F: Fn(ThreadKind) -> bool>(&self, keep: F) -> Memory {
        let mut out = Memory::empty();
        for t in &self.transitions {
            if !keep(self.instance.kind(t.thread)) {
                continue;
            }
            match &t.action {
                Action::Store(m) => out.insert(m.clone()),
                Action::Cas { store, .. } => out.insert(store.clone()),
                _ => {}
            }
        }
        out
    }

    /// `Msgs(ρ↓env)`.
    pub fn env_messages(&self) -> Memory {
        self.messages_added_by(|k| k == ThreadKind::Env)
    }

    /// `Msgs(ρ↓dis)`.
    pub fn dis_messages(&self) -> Memory {
        self.messages_added_by(|k| matches!(k, ThreadKind::Dis(_)))
    }

    /// For each CAS transition on `x`, the (load, store) timestamp pair —
    /// the pairs an RA-valid lifting must keep adjacent (Lemma 3.1,
    /// condition (2)).
    pub fn cas_pairs_on(&self, x: VarId) -> Vec<(Timestamp, Timestamp)> {
        self.transitions
            .iter()
            .filter_map(|t| match &t.action {
                Action::Cas { load, store } if load.var == x => {
                    Some((load.view.get(x), store.view.get(x)))
                }
                _ => None,
            })
            .collect()
    }

    /// Generates a random monotone computation of at most `steps`
    /// transitions by repeatedly picking an enabled transition, using the
    /// caller-supplied chooser (`chooser(k)` picks an index `< k`).
    ///
    /// Used by property tests to exercise the Section 3 machinery on
    /// arbitrary computations.
    pub fn random<F: FnMut(usize) -> usize>(
        instance: Instance,
        steps: usize,
        mut chooser: F,
    ) -> Trace {
        let mut trace = Trace::new(instance);
        for _ in 0..steps {
            let succs = step::monotone_successors(trace.instance(), trace.last());
            if succs.is_empty() {
                break;
            }
            let pick = succs[chooser(succs.len()) % succs.len()].clone();
            trace
                .push(pick)
                .expect("monotone successor must be applicable");
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use parra_program::builder::SystemBuilder;
    use parra_program::system::ParamSystem;
    use parra_program::value::Val;

    /// env: x := 1; r <- x   ‖  dis: x := 1
    fn sys() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.store(x, 1).load(r, x);
        let env = env.finish();
        let mut d = b.program("d");
        d.store(x, 1);
        let d = d.finish();
        b.build(env, vec![d])
    }

    fn build_store(tid: usize, edge: usize, ts: u64) -> Transition {
        Transition {
            thread: ThreadId(tid),
            edge,
            action: Action::Store(crate::message::Message::new(
                VarId(0),
                Val(1),
                View::from_times(vec![Timestamp(ts)]),
            )),
        }
    }

    #[test]
    fn push_validates() {
        let mut tr = Trace::new(Instance::new(sys(), 1));
        tr.push(build_store(0, 0, 1)).unwrap();
        assert_eq!(tr.len(), 1);
        // Same timestamp again conflicts.
        let err = tr.push(build_store(1, 0, 1)).unwrap_err();
        assert_eq!(err, StepError::Conflict);
        assert_eq!(tr.len(), 1); // unchanged
        tr.push(build_store(1, 0, 2)).unwrap();
        assert_eq!(tr.last().memory.len(), 3); // init + two stores
    }

    #[test]
    fn from_transitions_reports_step_index() {
        let inst = Instance::new(sys(), 1);
        let err = Trace::from_transitions(inst, vec![build_store(0, 0, 1), build_store(1, 0, 1)])
            .unwrap_err();
        assert_eq!(err.step, 1);
        assert_eq!(err.error, StepError::Conflict);
    }

    #[test]
    fn projections_and_message_attribution() {
        let inst = Instance::new(sys(), 1);
        let tr = Trace::from_transitions(inst, vec![build_store(0, 0, 1), build_store(1, 0, 2)])
            .unwrap();
        assert_eq!(tr.env_projection().len(), 1);
        assert_eq!(tr.dis_projection().len(), 1);
        assert_eq!(tr.env_messages().len(), 1);
        assert_eq!(tr.dis_messages().len(), 1);
        assert_eq!(
            tr.env_messages().iter().next().unwrap().timestamp(),
            Timestamp(1)
        );
        assert_eq!(
            tr.thread_ids(),
            [ThreadId(0), ThreadId(1)].into_iter().collect()
        );
    }

    #[test]
    fn timestamps_on_collects_nonzero() {
        let inst = Instance::new(sys(), 1);
        let tr = Trace::from_transitions(inst, vec![build_store(0, 0, 3), build_store(1, 0, 7)])
            .unwrap();
        let ts = tr.timestamps_on(VarId(0));
        assert_eq!(ts, [Timestamp(3), Timestamp(7)].into_iter().collect());
    }

    #[test]
    fn random_traces_replay() {
        let inst = Instance::new(sys(), 2);
        let mut seed = 12345u64;
        let mut next = move |k: usize| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize % k.max(1)
        };
        let tr = Trace::random(inst.clone(), 20, &mut next);
        // Replaying the same transitions must succeed.
        let replayed = Trace::from_transitions(inst, tr.transitions().to_vec()).unwrap();
        assert_eq!(replayed.last(), tr.last());
    }

    #[test]
    fn config_at_boundaries() {
        let inst = Instance::new(sys(), 1);
        let tr = Trace::from_transitions(inst, vec![build_store(0, 0, 1)]).unwrap();
        assert_eq!(tr.config_at(0), tr.first());
        assert_eq!(tr.config_at(1), tr.last());
        assert!(tr.first().memory.len() == 1);
    }
}
