//! Datalog-engine benchmark and regression gate.
//!
//! Runs the two Datalog engines (`cache-datalog`, `linear-datalog`) on a
//! fixed litmus subset at `threads = 1` and records, per (benchmark,
//! engine): best-of-N wall-clock, and the evaluator's deterministic work
//! counters (join attempts, index builds, index hits).
//!
//! ```text
//! bench_datalog [--out FILE]        # measure and write FILE (default BENCH_datalog.json)
//! bench_datalog --check BASELINE    # measure and fail (exit 1) on regression
//! ```
//!
//! The check fails when an entry's wall-clock exceeds the baseline by
//! more than 25% *and* by more than an absolute 20 ms floor (sub-floor
//! entries are all noise at CI timer resolution). Counter drift never
//! fails the gate — the counters are deterministic, so a diff of the
//! regenerated file shows exactly which plans changed and by how much.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use parra_obs::{Level, Recorder};
use std::process::ExitCode;

/// The litmus subset: every benchmark where the Datalog engines do real
/// work (unsafe ones walk the guess fleet to a winner and extract the
/// witness; the safe ones saturate every guess).
const BENCHES: &[&str] = &[
    "producer-consumer",
    "peterson-ra",
    "peterson-ra-bratosz",
    "dekker",
    "lamport-2-ra",
    "mp",
    "sb",
    "iriw",
    "corr-parameterized",
];

const ENGINES: [EngineId; 2] = [EngineId::CacheDatalog, EngineId::LinearDatalog];

/// Timed repetitions per entry; the best is recorded.
const REPS: usize = 3;

/// Relative wall-clock tolerance of the `--check` gate.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which drift is timer noise.
const FLOOR_US: u64 = 20_000;

struct Entry {
    bench: String,
    engine: String,
    verdict: String,
    wall_us: u64,
    join_attempts: u64,
    index_builds: u64,
    index_hits: u64,
}

fn counter(report: &parra_core::verify::RunReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn measure() -> Vec<Entry> {
    let mut out = Vec::new();
    for name in BENCHES {
        let bench = parra_litmus::by_name(name)
            .unwrap_or_else(|| panic!("unknown litmus benchmark `{name}`"));
        let rec = Recorder::enabled(Level::Summary);
        let options = VerifierOptions {
            threads: 1, // deterministic counters: no guess-fleet races
            ..Default::default()
        };
        let verifier = Verifier::new_with_recorder(&bench.system, options, rec)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for engine in ENGINES {
            let mut best: Option<Entry> = None;
            for _ in 0..REPS {
                let r = verifier.run(engine);
                let wall_us = r.stats.duration.as_micros() as u64;
                if best.as_ref().is_none_or(|b| wall_us < b.wall_us) {
                    best = Some(Entry {
                        bench: name.to_string(),
                        engine: engine.to_string(),
                        verdict: r.verdict.to_string(),
                        wall_us,
                        join_attempts: counter(&r.report, "join_attempts"),
                        index_builds: counter(&r.report, "index_builds"),
                        index_hits: counter(&r.report, "index_hits"),
                    });
                }
            }
            out.push(best.expect("REPS >= 1"));
        }
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut items = Vec::new();
    for e in entries {
        let mut w = ObjWriter::new();
        w.str_field("bench", &e.bench);
        w.str_field("engine", &e.engine);
        w.str_field("verdict", &e.verdict);
        w.num_field("wall_us", e.wall_us);
        w.num_field("join_attempts", e.join_attempts);
        w.num_field("index_builds", e.index_builds);
        w.num_field("index_hits", e.index_hits);
        items.push(w.finish());
    }
    let mut root = ObjWriter::new();
    root.num_field("threads", 1);
    root.raw_field("entries", &format!("[{}]", items.join(",")));
    let mut buf = root.finish();
    buf.push('\n');
    buf
}

/// One baseline entry as parsed back from the JSON.
struct Baseline {
    wall_us: u64,
    join_attempts: u64,
    index_hits: u64,
}

fn parse_baseline(text: &str) -> Result<Vec<(String, String, Baseline)>, String> {
    let root = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("baseline has no `entries` array")?;
    let mut out = Vec::new();
    for e in entries {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("baseline entry missing numeric `{k}`"))
        };
        out.push((
            e.get("bench")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `bench`")?
                .to_string(),
            e.get("engine")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `engine`")?
                .to_string(),
            Baseline {
                wall_us: field("wall_us")?,
                join_attempts: field("join_attempts")?,
                index_hits: field("index_hits")?,
            },
        ));
    }
    Ok(out)
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

fn check(entries: &[Entry], baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let baseline = parse_baseline(&text)?;
    let mut failures = Vec::new();
    for e in entries {
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(b, eng, _)| *b == e.bench && *eng == e.engine)
        else {
            println!(
                "note: {} / {} has no baseline entry (new benchmark?)",
                e.bench, e.engine
            );
            continue;
        };
        let marker = if regresses(base.wall_us, e.wall_us) {
            failures.push(format!(
                "{} / {}: {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
                e.bench,
                e.engine,
                e.wall_us,
                base.wall_us,
                (TOLERANCE - 1.0) * 100.0,
                FLOOR_US / 1000
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<22} {:<16} {:>9} µs (baseline {:>9}) {}",
            e.bench, e.engine, e.wall_us, base.wall_us, marker
        );
        if e.join_attempts != base.join_attempts || e.index_hits != base.index_hits {
            println!(
                "  counter drift: join_attempts {} -> {}, index_hits {} -> {} \
                 (informational; regenerate the baseline if the plan change is intended)",
                base.join_attempts, e.join_attempts, base.index_hits, e.index_hits
            );
        }
    }
    if failures.is_empty() {
        println!(
            "wall-clock within tolerance for all {} entries",
            entries.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("datalog bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let entries = measure();
    match flag("--check") {
        Some(baseline) => match check(&entries, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_datalog: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_datalog.json".into());
            let jsonv = to_json(&entries);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_datalog: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            for e in &entries {
                println!(
                    "{:<22} {:<16} {:>9} µs  joins {:>9}  index hits {:>9}",
                    e.bench, e.engine, e.wall_us, e.join_attempts, e.index_hits
                );
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
        assert!(!regresses(100_000, 110_000));
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let entries = vec![Entry {
            bench: "peterson-ra".into(),
            engine: "cache-datalog".into(),
            verdict: "UNSAFE".into(),
            wall_us: 1234,
            join_attempts: 99,
            index_builds: 3,
            index_hits: 42,
        }];
        let parsed = parse_baseline(&to_json(&entries)).unwrap();
        assert_eq!(parsed.len(), 1);
        let (bench, engine, base) = &parsed[0];
        assert_eq!(bench, "peterson-ra");
        assert_eq!(engine, "cache-datalog");
        assert_eq!(base.wall_us, 1234);
        assert_eq!(base.join_attempts, 99);
        assert_eq!(base.index_hits, 42);
    }
}
