//! B1: verification time for every benchmark of the suite under the
//! simplified-semantics engine.

use parra_bench::micro::Harness;
use parra_core::verify::{EngineId, Verifier, VerifierOptions};

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("litmus");
    group.sample_size(10);
    for bench in parra_litmus::all() {
        let verifier = Verifier::new(&bench.system, VerifierOptions::default()).unwrap();
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let r = verifier.run(EngineId::SimplifiedReach);
                std::hint::black_box(r.verdict)
            })
        });
    }
    group.finish();
}
