//! Quickstart: parse a parameterized system, classify it, verify it with
//! all three engines, and print the §4.3 thread bound.
//!
//! Run with: `cargo run --example quickstart`

use parra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Unboundedly many producers wait for the consumer's signal and
    // publish x := 1; the consumer flags a violation if it observes the
    // produced value — a reachable configuration, so the system is UNSAFE.
    let sys = parse_system(
        r#"
        system {
            dom 2;
            vars x, y;
            env producer {
                regs r;
                r <- y;
                assume r == 1;
                x := 1;
            }
            dis consumer {
                regs s;
                y := 1;
                s <- x;
                assume s == 1;
                assert false;
            }
        }
        "#,
    )?;

    let class = SystemClass::of(&sys);
    println!("system class : {class}");
    println!("complexity   : {}", class.complexity());

    let verifier = Verifier::new(&sys, VerifierOptions::default())?;
    for engine in [
        EngineId::SimplifiedReach,
        EngineId::CacheDatalog,
        EngineId::BoundedConcrete,
    ] {
        let result = verifier.run(engine);
        println!(
            "\n[{engine}] verdict: {} ({:.2?})",
            result.verdict, result.stats.duration
        );
        if let Some(bound) = result.env_thread_bound {
            println!("  env threads sufficient for the bug (§4.3 cost): {bound}");
        }
        if !result.witness_lines.is_empty() {
            println!("  witness (dis steps):");
            for line in &result.witness_lines {
                println!("    {line}");
            }
        }
        for note in &result.notes {
            println!("  note: {note}");
        }
    }
    Ok(())
}
