//! The `parra` command-line verifier.
//!
//! ```text
//! parra classify <file.ra>
//! parra verify   <file.ra> [--engine simplified|datalog|linear|concrete]
//!                          [--unroll N] [--all-engines] [--race] [--concretize]
//!                          [--timeout SECS] [--memory-budget SIZE]
//!                          [--stats] [--json] [--trace-out FILE]
//! parra batch    <dir|file.ra ...> [--engine E] [--all-engines] [--race]
//!                          [--unroll N] [--timeout SECS]
//!                          [--memory-budget SIZE] [--threads N]
//! parra print    <file.ra>
//! parra fuzz     [--oracle NAME] [--seconds N | --cases N | --timeout SECS]
//!                [--seed N] [--corpus DIR] [--minimize FILE] [--json]
//! parra report   <file|dir ...> | --diff A B | --check-schema <file ...>
//! parra serve    (--socket PATH | --stdio) [--max-queue N]
//!                [--memory-watermark SIZE] [--events-out FILE]
//! parra serve    --send REQUEST|- --socket PATH
//! ```
//!
//! Input files use the `system { … }` syntax (see the README or
//! `examples/`). Exit code 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN or
//! INTERRUPTED, 64+ = usage/input errors (including exact-engine
//! disagreement under `--all-engines`).
//!
//! `--race` races the whole portfolio concurrently: the first decisive
//! verdict (SAFE or UNSAFE) cancels the remaining engines, whose
//! `INTERRUPTED(cancelled)` results are reported as portfolio metadata.
//! The raced verdict is identical to the sequential `--all-engines`
//! aggregate; unlike `--all-engines` (per-engine timeout), `--timeout`
//! bounds the race as a whole. `--race` conflicts with `--engine` and
//! `--all-engines`.
//!
//! Resource governance: `--timeout SECS` (fractional seconds) and
//! `--memory-budget SIZE` (`512m`, `2g`, plain bytes) bound each engine
//! run; an exhausted budget degrades the verdict to
//! `INTERRUPTED(deadline|memory)` — never to `SAFE` — with partial
//! statistics preserved. Engine panics are caught per run and degrade to
//! `UNKNOWN`. `parra batch` applies the limits per file and prints one
//! JSON line per input, so one pathological system cannot starve or
//! crash the rest of the batch.
//!
//! Observability: `PARRA_LOG=off|summary|debug` selects the logging level
//! (heartbeats and debug lines go to stderr); `--stats` implies at least
//! `summary` and prints the span tree plus metric totals to stderr after
//! the run; `--trace-out FILE` writes a Chrome-trace JSON (load it in
//! `chrome://tracing` or Perfetto); `--json` prints each engine's
//! structured [`RunReport`](parra::core::verify::RunReport) as one JSON
//! object per line on stdout instead of the human-readable report;
//! `--events-out FILE` writes the schema-versioned flight-recorder event
//! log as JSONL (`verify`, `batch`, and `fuzz`); `--metrics-out FILE`
//! writes the final metric snapshot in Prometheus text exposition format.
//! `parra report` ingests any mix of those outputs (plus `--json` run
//! reports, batch lines, and fuzz summaries) into a text dashboard, and
//! `parra report --diff A B` compares two report sets for verdict flips
//! and phase-time regressions.

use parra::limits::{parse_byte_size, TrackingAlloc};
use parra::obs::{Level, Phase, PhaseTimer, Recorder};
use parra::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

/// Counting allocator so `--memory-budget` can observe heap usage.
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("parra: {msg}");
            ExitCode::from(64)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "classify" => classify(rest),
        "verify" => verify(rest),
        "batch" => batch(rest),
        "print" => print_system(rest),
        "fuzz" => fuzz(rest),
        "report" => report(rest),
        "campaign" => campaign(rest),
        "serve" => serve(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  parra classify <file.ra>\n  parra verify <file.ra> \
     [--engine simplified|datalog|linear|concrete] [--unroll N] [--all-engines] \
     [--race] [--concretize] [--timeout SECS] [--memory-budget SIZE] [--threads N] \
     [--stats] [--json] [--trace-out FILE] [--events-out FILE] \
     [--metrics-out FILE]\n  \
     parra batch <dir|file.ra ...> [--engine E] [--all-engines] [--race] \
     [--unroll N] [--timeout SECS] [--memory-budget SIZE] [--threads N] \
     [--events-out FILE] [--strict]\n  \
     parra campaign run <dir|file.ra ...> --store DIR [--engine E] \
     [--all-engines] [--race] [--unroll N] [--timeout SECS] \
     [--memory-budget SIZE] [--threads N] [--shard K/N] [--events-out FILE]\n  \
     parra campaign resume --store DIR [--threads N] [--events-out FILE]\n  \
     parra campaign status <store ...> [--merge-out DIR]\n  \
     parra campaign diff <baseline-store> <new-store> [--threshold PCT]\n  \
     parra serve (--socket PATH | --stdio) [--engine E] [--all-engines] \
     [--race] [--unroll N] [--timeout SECS] [--memory-budget SIZE] \
     [--threads N] [--max-queue N] [--memory-watermark SIZE] \
     [--events-out FILE]\n  \
     parra serve --send REQUEST|- --socket PATH\n  \
     parra print <file.ra>\n  parra fuzz [--oracle NAME] [--seconds N | \
     --cases N | --timeout SECS] [--seed N] [--corpus DIR] [--minimize FILE] \
     [--json] [--events-out FILE] [--metrics-out FILE]\n  \
     parra report <file|dir ...> [--threshold PCT]\n  \
     parra report --diff A B [--threshold PCT]\n  \
     parra report --check-schema <file ...>\n\n\
     PARRA_LOG=off|summary|debug selects the logging level (--stats \
     implies summary). --threads defaults to PARRA_THREADS or the \
     machine's parallelism; reports are identical for every thread \
     count. --timeout takes fractional seconds; --memory-budget takes \
     bytes with an optional k/m/g suffix (e.g. 512m). Exhausted budgets \
     degrade the verdict to INTERRUPTED (exit code 2), never to SAFE.\n\n\
     --race races every engine concurrently; the first decisive verdict \
     cancels the rest (reported as INTERRUPTED(cancelled) portfolio \
     metadata) and --timeout bounds the race as a whole. The raced \
     verdict equals the sequential --all-engines aggregate. --race \
     conflicts with --engine and --all-engines.\n\n\
     batch verifies each input under per-file limits and prints one JSON \
     line per file; a panic or exhausted budget on one file does not \
     stop the rest. --strict additionally exits 2 when any *decided* \
     file lost an engine run to a deadline or memory budget (a silently \
     degraded portfolio).\n\ncampaign runs batch sweeps against a \
     persistent store (manifest.json + append-only results.jsonl), \
     checkpointed per input: re-runs skip inputs whose content key — \
     hash of (canonical system text, engine selection, verdict-relevant \
     options) — is already settled; `resume` re-runs interrupted/errored \
     inputs after a crash or kill; --shard K/N deterministically \
     partitions the key set across N workers and `status --merge-out` \
     folds shard stores back into one; `campaign diff` compares two \
     stores (verdict flips always fail; duration regressions past \
     --threshold PCT with a 50ms floor; added/removed inputs listed, \
     never fatal) and exits 1 when dirty.\n\nfuzz oracles: engines-agree, \
     equivalence, \
     thread-determinism, round-trip, monotonicity, eval-agree \
     (default: all). A \
     --seconds budget is a deterministic case target (seconds x the \
     oracle's calibrated cases/sec), so repeated runs are identical; \
     --timeout is a wall-clock bound instead (the completed cases are \
     still a deterministic prefix); failures are minimized and, with \
     --corpus DIR, saved as .ra files.\n\nreport ingests flight-recorder \
     event logs (--events-out), --json run reports, batch lines, and \
     fuzz summaries — files or directories (scanned for *.json/*.jsonl) \
     — and prints a dashboard with per-engine phase breakdowns and \
     duration percentiles. --diff A B compares two report sets and exits \
     1 on verdict flips or phase-time regressions beyond --threshold PCT \
     (default 25). --check-schema strictly validates event logs.\n\n\
     serve runs a long-lived daemon speaking line-delimited JSON \
     (protocol v1; one response line per request line) over a Unix \
     socket or --stdio, with request types verify, batch, status, and \
     shutdown. Prepared verifiers and Datalog query plans are cached \
     across requests (warm requests skip parse/plan); per-request \
     budgets anchor at admission; --max-queue bounds in-flight work and \
     --memory-watermark refuses new work under heap pressure — both \
     reject with a structured `overloaded` error that never touches \
     admitted requests. --send REQUEST (or `-` to stream stdin) is the \
     client mode: it prints the daemon's response lines."
        .to_owned()
}

/// Flags whose next argument is a value, not the input path.
const VALUE_FLAGS: &[&str] = &[
    "--engine",
    "--unroll",
    "--trace-out",
    "--events-out",
    "--metrics-out",
    "--threshold",
    "--threads",
    "--timeout",
    "--memory-budget",
    "--oracle",
    "--seconds",
    "--cases",
    "--seed",
    "--corpus",
    "--minimize",
    "--store",
    "--shard",
    "--merge-out",
    "--socket",
    "--send",
    "--max-queue",
    "--memory-watermark",
];

fn load(args: &[String]) -> Result<ParamSystem, String> {
    let mut path = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            path = Some(a);
            break;
        }
    }
    let path = path.ok_or("missing input file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_system(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--timeout` (fractional seconds) and `--memory-budget`
/// (bytes with an optional k/m/g suffix).
fn parse_limit_flags(args: &[String]) -> Result<(Option<Duration>, Option<usize>), String> {
    let timeout = flag_value(args, "--timeout")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s >= 0.0)
                .map(Duration::from_secs_f64)
                .ok_or_else(|| format!("--timeout: `{v}` is not a non-negative number of seconds"))
        })
        .transpose()?;
    let memory_budget = flag_value(args, "--memory-budget")
        .map(|v| {
            parse_byte_size(&v)
                .ok_or_else(|| format!("--memory-budget: `{v}` is not a byte size (try 512m, 2g)"))
        })
        .transpose()?;
    Ok((timeout, memory_budget))
}

/// Maps an aggregated verdict to the process exit code.
fn exit_code_for(verdict: Verdict) -> ExitCode {
    match verdict {
        Verdict::Safe => ExitCode::SUCCESS,
        Verdict::Unsafe => ExitCode::from(1),
        Verdict::Unknown | Verdict::Interrupted(_) => ExitCode::from(2),
    }
}

fn classify(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    let class = SystemClass::of(&sys);
    println!("class      : {class}");
    println!("complexity : {}", class.complexity());
    println!(
        "supported  : {}",
        if class.is_decidable_fragment() {
            "yes (decided exactly)"
        } else if class.env.nocas {
            "with --unroll N (bounded model checking of dis loops)"
        } else {
            "no (undecidable, Theorem 1.1)"
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn verify(args: &[String]) -> Result<ExitCode, String> {
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let json = args.iter().any(|a| a == "--json");
    let stats_flag = args.iter().any(|a| a == "--stats");
    let trace_out = flag_value(args, "--trace-out");
    let events_out = flag_value(args, "--events-out");
    let metrics_out = flag_value(args, "--metrics-out");
    for (flag, v) in [
        ("--trace-out", &trace_out),
        ("--events-out", &events_out),
        ("--metrics-out", &metrics_out),
    ] {
        if args.iter().any(|a| a == flag) && v.is_none() {
            return Err(format!("{flag} needs a file path"));
        }
    }
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let threads = parra::search::Threads::resolve(threads).get();
    let (timeout, memory_budget) = parse_limit_flags(args)?;

    let mut rec = Recorder::from_env();
    let wants_obs =
        stats_flag || trace_out.is_some() || events_out.is_some() || metrics_out.is_some();
    if wants_obs && !rec.is_enabled() {
        rec = Recorder::enabled(Level::Summary);
    }

    // The recorder exists before the input does, so loading gets its own
    // phase attribution.
    let sys = {
        let phases = PhaseTimer::new(&rec);
        let _parse = phases.start(Phase::Parse);
        load(args)?
    };

    let options = VerifierOptions {
        unroll_dis: unroll,
        threads,
        timeout,
        memory_budget,
        ..Default::default()
    };
    let verifier =
        Verifier::new_with_recorder(&sys, options, rec.clone()).map_err(|e| e.to_string())?;

    let engines = engine_selection(args)?;

    let concretize = args.iter().any(|a| a == "--concretize");
    let race_flag = args.iter().any(|a| a == "--race");
    let (results, race_meta) = if race_flag {
        let race = verifier.race(&engines)?;
        let meta = (race.winner_engine(), race.verdict, race.duration);
        (race.results, Some(meta))
    } else {
        (
            engines
                .iter()
                .map(|&engine| verifier.run_isolated(engine))
                .collect::<Vec<_>>(),
            None,
        )
    };
    let mut verdicts: Vec<(EngineId, Verdict)> = Vec::new();
    for mut result in results {
        let engine = result.engine;
        // Concretization runs regardless of the output format, so the
        // witness lands in the JSON report too.
        let concrete = if concretize && result.verdict == Verdict::Unsafe {
            let outcome = verifier.concretize_auto(&result);
            result.report.concrete = outcome.witness.clone();
            Some(outcome)
        } else {
            None
        };
        if json {
            println!("{}", result.report.to_json());
        } else {
            println!(
                "[{engine}] {} ({:.2?}, {} states)",
                result.verdict, result.stats.duration, result.stats.states
            );
            if let Some(bound) = result.env_thread_bound {
                println!("  env threads sufficient for the violation: {bound}");
            }
            for line in &result.witness_lines {
                println!("  witness: {line}");
            }
            for note in &result.notes {
                println!("  note: {note}");
            }
            if let Some(outcome) = &concrete {
                match &outcome.witness {
                    Some(w) => {
                        println!("  concrete interleaving ({} env threads):", w.n_env);
                        for step in &w.steps {
                            println!("    {step}");
                        }
                    }
                    None => println!(
                        "  (no concrete interleaving found within {} env threads \
                         [{}] and default depth)",
                        outcome.max_env_searched,
                        if outcome.from_bound {
                            "from the \u{a7}4.3 cost bound"
                        } else {
                            "default cap"
                        }
                    ),
                }
            }
        }
        verdicts.push((result.engine, result.verdict));
    }
    if let Some((winner, verdict, duration)) = &race_meta {
        if !json {
            match winner {
                Some(engine) => println!(
                    "[race] {verdict} in {duration:.2?} — first decisive answer: {engine} \
                     ({} engines raced)",
                    verdicts.len()
                ),
                None => println!(
                    "[race] {verdict} in {duration:.2?} — no decisive answer \
                     ({} engines raced to completion)",
                    verdicts.len()
                ),
            }
        }
    }

    if stats_flag {
        let tree = rec.render_tree();
        if !tree.is_empty() {
            eprint!("{tree}");
        }
        let snap = rec.snapshot();
        for (name, v) in &snap.counters {
            eprintln!("  {name} = {v}");
        }
        for (name, g) in &snap.gauges {
            eprintln!("  {name} = {} (peak {})", g.value, g.peak);
        }
    }
    if let Some(path) = trace_out {
        rec.write_chrome_trace(std::path::Path::new(&path))
            .map_err(|e| format!("--trace-out `{path}`: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = events_out {
        rec.write_events(std::path::Path::new(&path))
            .map_err(|e| format!("--events-out `{path}`: {e}"))?;
        eprintln!("events written to {path}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, rec.snapshot().render_prometheus())
            .map_err(|e| format!("--metrics-out `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }

    // The raced aggregate is computed inside `race` (and equals the
    // sequential aggregate over the same engines).
    let final_verdict = match race_meta {
        Some((_, verdict, _)) => verdict,
        None => aggregate_verdicts(&verdicts)?,
    };
    Ok(exit_code_for(final_verdict))
}

/// Resolves `--engine`/`--all-engines`/`--race` into the engine list to
/// run. The three flags are mutually exclusive: `--engine` picks one
/// engine, `--all-engines` runs the portfolio sequentially, `--race`
/// races it. Conflicting combinations are rejected rather than silently
/// resolved (an ignored `--engine` used to mask typos).
fn engine_selection(args: &[String]) -> Result<Vec<EngineId>, String> {
    let race = args.iter().any(|a| a == "--race");
    let all = args.iter().any(|a| a == "--all-engines");
    let single = flag_value(args, "--engine");
    if all && single.is_some() {
        return Err(
            "--engine and --all-engines conflict: pass one engine or the whole portfolio, \
             not both"
                .into(),
        );
    }
    if race && single.is_some() {
        return Err(
            "--engine and --race conflict: --race races the whole portfolio; \
             drop --engine (or drop --race to run one engine)"
                .into(),
        );
    }
    if race && all {
        return Err(
            "--all-engines and --race conflict: --all-engines runs the portfolio \
             sequentially (per-engine timeout), --race races it (one race-wide timeout)"
                .into(),
        );
    }
    if all || race {
        return Ok(EngineId::ALL.to_vec());
    }
    let engine = match single.as_deref() {
        None | Some("simplified") => EngineId::SimplifiedReach,
        Some("datalog") => EngineId::CacheDatalog,
        Some("linear") => EngineId::LinearDatalog,
        Some("concrete") => EngineId::BoundedConcrete,
        Some(other) => return Err(format!("unknown engine `{other}`")),
    };
    Ok(vec![engine])
}

/// Verifies one batch input. Errors (unreadable file, parse failure,
/// rejected system, engine disagreement) become the line's `error` field.
fn batch_one(
    path: &std::path::Path,
    engines: &[EngineId],
    race: bool,
    options: &VerifierOptions,
    rec: &Recorder,
) -> Result<(Verdict, Option<InterruptReason>, Vec<String>), String> {
    // Test hook: `PARRA_INJECT_PANIC=<substring>` panics on matching
    // files so the batch loop's panic isolation can be exercised
    // end-to-end.
    if let Ok(needle) = std::env::var("PARRA_INJECT_PANIC") {
        if !needle.is_empty() && path.display().to_string().contains(&needle) {
            panic!("injected panic (PARRA_INJECT_PANIC={needle})");
        }
    }
    let sys = {
        let phases = PhaseTimer::new(rec);
        let _parse = phases.start(Phase::Parse);
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
        parse_system(&text).map_err(|e| e.to_string())?
    };
    let verifier = Verifier::new_with_recorder(&sys, options.clone(), rec.clone())
        .map_err(|e| e.to_string())?;
    // Test hook: `PARRA_INJECT_DEADLINE=<substring>` re-runs the
    // selection's last engine under a zero wall-clock deadline on
    // matching files (sequential selections only). This manufactures the
    // shape `--strict` exists for — a *decided* file whose portfolio
    // still lost an engine to a budget — deterministically, without a
    // real timeout race.
    let inject_deadline = !race
        && std::env::var("PARRA_INJECT_DEADLINE")
            .is_ok_and(|needle| !needle.is_empty() && path.display().to_string().contains(&needle));
    let sel = if inject_deadline {
        let (head, last) = engines.split_at(engines.len() - 1);
        let mut sel = verifier.run_selection(head, false)?;
        let zero = Verifier::new_with_recorder(
            &sys,
            VerifierOptions {
                timeout: Some(Duration::ZERO),
                ..options.clone()
            },
            rec.clone(),
        )
        .map_err(|e| e.to_string())?;
        let result = zero.run_isolated(last[0]);
        sel.interrupted = sel.interrupted.or(result.verdict.interrupt_reason());
        let mut verdicts: Vec<(EngineId, Verdict)> =
            sel.results.iter().map(|r| (r.engine, r.verdict)).collect();
        verdicts.push((result.engine, result.verdict));
        sel.verdict = aggregate_verdicts(&verdicts)?;
        sel.results.push(result);
        sel
    } else {
        verifier.run_selection(engines, race)?
    };
    let reports = sel.results.iter().map(|r| r.report.to_json()).collect();
    Ok((sel.verdict, sel.interrupted, reports))
}

fn batch(args: &[String]) -> Result<ExitCode, String> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;

    let (timeout, memory_budget) = parse_limit_flags(args)?;
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let options = VerifierOptions {
        unroll_dis: unroll,
        threads: parra::search::Threads::resolve(threads).get(),
        timeout,
        memory_budget,
        ..Default::default()
    };
    let engines = engine_selection(args)?;
    let race = args.iter().any(|a| a == "--race");

    // Inputs are the non-flag arguments; a directory expands to its
    // `.ra` files in sorted order, so line order is deterministic.
    let mut files: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            let path = PathBuf::from(a);
            if path.is_dir() {
                let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
                    .map_err(|e| format!("cannot read directory `{a}`: {e}"))?
                    .filter_map(|entry| entry.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|ext| ext == "ra"))
                    .collect();
                entries.sort();
                files.extend(entries);
            } else {
                files.push(path);
            }
        }
    }
    if files.is_empty() {
        return Err("batch: no input files (pass .ra files or directories)".into());
    }
    let events_out = flag_value(args, "--events-out");
    if args.iter().any(|a| a == "--events-out") && events_out.is_none() {
        return Err("--events-out needs a file path".into());
    }

    let strict = args.iter().any(|a| a == "--strict");
    let mut any_unsafe = false;
    let mut any_undecided = false;
    // `--strict` health audit: decided files whose portfolio still lost
    // an engine run to a deadline or memory budget. Race cancellations
    // don't count — a raced loser is cancelled *because* the portfolio
    // answered, which is healthy, not degraded.
    let mut any_degraded = false;
    let mut event_log = String::new();
    for file in &files {
        // One recorder per file: events carry a `file` attribution and
        // each file's event sequence starts at 0, so batch logs are
        // deterministic however the batch is split or re-ordered.
        let rec = if events_out.is_some() {
            Recorder::enabled(Level::Summary)
        } else {
            Recorder::disabled()
        };
        let start = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            batch_one(file, &engines, race, &options, &rec)
        }));
        let duration_us = start.elapsed().as_micros() as u64;
        if events_out.is_some() {
            event_log.push_str(&rec.render_events_jsonl(&[("file", &file.display().to_string())]));
        }

        let mut w = parra::obs::json::ObjWriter::new();
        w.str_field("file", &file.display().to_string());
        match outcome {
            Ok(Ok((verdict, interrupted, reports))) => {
                any_unsafe |= verdict == Verdict::Unsafe;
                any_undecided |= !verdict.is_decided();
                any_degraded |= matches!(
                    interrupted,
                    Some(InterruptReason::Deadline | InterruptReason::Memory)
                );
                // Aggregation folds Interrupted into Unknown; the line
                // keeps the reason only while the file is undecided.
                let interrupted = if verdict.is_decided() {
                    None
                } else {
                    interrupted
                };
                w.str_field("verdict", &verdict.to_string());
                match interrupted {
                    Some(r) => w.str_field("interrupted", r.as_str()),
                    None => w.raw_field("interrupted", "null"),
                }
                w.raw_field("error", "null");
                w.num_field("duration_us", duration_us);
                w.raw_field("reports", &format!("[{}]", reports.join(",")));
            }
            Ok(Err(error)) => {
                any_undecided = true;
                w.raw_field("verdict", "null");
                w.raw_field("interrupted", "null");
                w.str_field("error", &error);
                w.num_field("duration_us", duration_us);
                w.raw_field("reports", "[]");
            }
            Err(payload) => {
                any_undecided = true;
                let msg: &str = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("panic with non-string payload");
                w.raw_field("verdict", "null");
                w.raw_field("interrupted", "null");
                w.str_field("error", &format!("panicked: {msg}"));
                w.num_field("duration_us", duration_us);
                w.raw_field("reports", "[]");
            }
        }
        println!("{}", w.finish());
    }
    if let Some(path) = events_out {
        std::fs::write(&path, event_log).map_err(|e| format!("--events-out `{path}`: {e}"))?;
        eprintln!("events written to {path}");
    }
    Ok(if any_unsafe {
        ExitCode::from(1)
    } else if any_undecided || (strict && any_degraded) {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn print_system(args: &[String]) -> Result<ExitCode, String> {
    let sys = load(args)?;
    print!("{}", parra::program::pretty::system_to_string(&sys));
    Ok(ExitCode::SUCCESS)
}

/// The `parra serve` daemon (and its `--send` client mode). The request
/// execution itself lives in `parra::serve`; this function only does
/// flag parsing and transport (Unix socket or stdio).
fn serve(args: &[String]) -> Result<ExitCode, String> {
    use parra::serve::{ServeConfig, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::Arc;

    // Client mode: write request lines, print response lines.
    if let Some(request) = flag_value(args, "--send") {
        let path = flag_value(args, "--socket").ok_or("serve --send: --socket PATH is required")?;
        let stream =
            UnixStream::connect(&path).map_err(|e| format!("cannot connect to `{path}`: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream);
        let requests: Vec<String> = if request == "-" {
            std::io::stdin()
                .lines()
                .collect::<Result<_, _>>()
                .map_err(|e| format!("stdin: {e}"))?
        } else {
            vec![request]
        };
        let sent = requests.len();
        for line in &requests {
            writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
        }
        writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut responses = reader.lines();
        for _ in 0..sent {
            let line = responses
                .next()
                .ok_or("daemon closed the connection before answering")?
                .map_err(|e| format!("receive: {e}"))?;
            println!("{line}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Daemon mode.
    let (timeout, memory_budget) = parse_limit_flags(args)?;
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let engines = engine_selection(args)?;
    let race = args.iter().any(|a| a == "--race");
    let all = args.iter().any(|a| a == "--all-engines");
    let max_queue = flag_value(args, "--max-queue")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--max-queue: {e}")))
        .transpose()?
        .unwrap_or(64);
    let watermark = flag_value(args, "--memory-watermark")
        .map(|v| {
            parse_byte_size(&v).ok_or_else(|| format!("--memory-watermark: invalid size `{v}`"))
        })
        .transpose()?;
    let cfg = ServeConfig {
        options: VerifierOptions {
            unroll_dis: unroll,
            threads: parra::search::Threads::resolve(threads).get(),
            timeout,
            memory_budget,
            ..Default::default()
        },
        engine: selection_label(&engines, race, all),
        max_in_flight: max_queue,
        memory_watermark: watermark,
    };
    let mut server = Server::new(cfg);
    if let Some(path) = flag_value(args, "--events-out") {
        let file = std::fs::File::create(&path)
            .map_err(|e| format!("--events-out: cannot create `{path}`: {e}"))?;
        server = server.with_events_sink(Box::new(file));
    }
    let server = Arc::new(server);

    if args.iter().any(|a| a == "--stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server
            .handle_stream(stdin.lock(), stdout.lock())
            .map_err(|e| format!("stdio: {e}"))?;
        return Ok(ExitCode::SUCCESS);
    }

    let path = flag_value(args, "--socket").ok_or("serve: pass --socket PATH or --stdio")?;
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).map_err(|e| format!("cannot bind `{path}`: {e}"))?;
    // Non-blocking accept so a `shutdown` request received on any
    // connection stops the daemon promptly.
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    eprintln!("parra serve: listening on {path}");
    loop {
        if server.is_shutdown() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| format!("connection: {e}"))?;
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(s) => BufReader::new(s),
                        Err(_) => return,
                    };
                    // A vanished peer only ends this connection.
                    let _ = server.handle_stream(reader, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                return Err(format!("accept: {e}"));
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(ExitCode::SUCCESS)
}

fn fuzz(args: &[String]) -> Result<ExitCode, String> {
    use parra::fuzz::oracle::{all_oracles, oracle_by_name, Oracle, OracleOutcome};
    use parra::fuzz::runner::{self, FuzzBudget, FuzzConfig, MinimizeOutcome};

    let json = args.iter().any(|a| a == "--json");
    let seed = flag_value(args, "--seed")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(0);
    let cases = flag_value(args, "--cases")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--cases: {e}")))
        .transpose()?;
    let seconds = flag_value(args, "--seconds")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--seconds: {e}")))
        .transpose()?;
    let (timeout, _) = parse_limit_flags(args)?;
    // A wall-clock --timeout on its own means "as many cases as fit":
    // the case target becomes unbounded and the deadline stops the run.
    let budget = match (cases, seconds, timeout) {
        (Some(n), _, _) => FuzzBudget::Cases(n),
        (None, Some(s), _) => FuzzBudget::Seconds(s),
        (None, None, Some(_)) => FuzzBudget::Cases(u64::MAX),
        (None, None, None) => FuzzBudget::Seconds(1),
    };
    let corpus_dir = flag_value(args, "--corpus").map(std::path::PathBuf::from);
    let oracles: Vec<Box<dyn Oracle>> = match flag_value(args, "--oracle").as_deref() {
        None | Some("all") => all_oracles(),
        Some(name) => vec![oracle_by_name(name).ok_or_else(|| {
            format!(
                "unknown oracle `{name}` (expected one of: {}, or all)",
                all_oracles()
                    .iter()
                    .map(|o| o.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?],
    };

    if let Some(path) = flag_value(args, "--minimize") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let sys = parse_system(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut any_failure = false;
        for oracle in &oracles {
            match runner::minimize(oracle.as_ref(), &sys) {
                MinimizeOutcome::NotFailing(OracleOutcome::Pass) => {
                    println!("[{}] passes; nothing to minimize", oracle.name());
                }
                MinimizeOutcome::NotFailing(OracleOutcome::Skip(why)) => {
                    println!("[{}] skipped: {why}", oracle.name());
                }
                MinimizeOutcome::NotFailing(OracleOutcome::Fail(_)) => unreachable!(),
                MinimizeOutcome::Minimized { message, result } => {
                    any_failure = true;
                    println!("[{}] FAIL: {message}", oracle.name());
                    println!(
                        "minimized in {} steps ({} candidates tried):",
                        result.steps, result.candidates_tried
                    );
                    print!("{}", parra::program::pretty::system_to_string(&result.sys));
                    if let Some(dir) = &corpus_dir {
                        let saved = parra::fuzz::corpus::save(
                            dir,
                            oracle.name(),
                            seed,
                            &message,
                            &result.sys,
                        )
                        .map_err(|e| format!("--corpus: {e}"))?;
                        println!("saved to {}", saved.display());
                    }
                }
            }
        }
        return Ok(if any_failure {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        });
    }

    let events_out = flag_value(args, "--events-out");
    let metrics_out = flag_value(args, "--metrics-out");
    let mut rec = Recorder::from_env();
    if (events_out.is_some() || metrics_out.is_some()) && !rec.is_enabled() {
        rec = Recorder::enabled(Level::Summary);
    }
    // The deadline is handed to the runner unanchored: `runner::run`
    // anchors it when the run is admitted, not at flag-parse time, so a
    // long-lived caller looping over oracles gives each run the full
    // window (each oracle below gets its own `--timeout`).
    let cfg = FuzzConfig {
        seed,
        budget,
        corpus_dir,
        deadline: timeout,
        governor: ResourceBudget::unlimited(),
    };
    let mut any_failure = false;
    for oracle in &oracles {
        let summary = runner::run(oracle.as_ref(), &cfg, &rec);
        any_failure |= !summary.failures.is_empty();
        if json {
            println!("{}", summary.to_json());
        } else {
            println!("{}", summary.render());
            if let Some(reason) = summary.interrupted {
                println!("  note: stopped early ({reason} budget exhausted)");
            }
            for f in &summary.failures {
                println!("  seed {}: {}", f.seed, f.message);
                println!(
                    "  minimized ({} shrink steps, size {}):",
                    f.shrink_steps, f.minimized_size
                );
                for line in parra::program::pretty::system_to_string(&f.minimized).lines() {
                    println!("    {line}");
                }
                if let Some(path) = &f.saved_to {
                    println!("  saved to {}", path.display());
                }
            }
        }
    }
    if let Some(path) = events_out {
        rec.write_events(std::path::Path::new(&path))
            .map_err(|e| format!("--events-out `{path}`: {e}"))?;
        eprintln!("events written to {path}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, rec.snapshot().render_prometheus())
            .map_err(|e| format!("--metrics-out `{path}`: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(if any_failure {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// `parra report`: ingest run reports / batch lines / event logs / fuzz
/// summaries into a dashboard, diff two report sets, or strictly validate
/// event-log schemas.
fn report(args: &[String]) -> Result<ExitCode, String> {
    use parra::obs::report as rpt;
    use std::path::PathBuf;

    let mut opts = rpt::DiffOptions::default();
    if let Some(t) = flag_value(args, "--threshold") {
        opts.threshold_pct = t.parse::<u64>().map_err(|e| format!("--threshold: {e}"))?;
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            paths.push(PathBuf::from(a));
        }
    }

    if args.iter().any(|a| a == "--check-schema") {
        if paths.is_empty() {
            return Err("report --check-schema: no event-log files given".into());
        }
        let mut total = 0;
        for p in &paths {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read `{}`: {e}", p.display()))?;
            total += rpt::check_schema(&text)
                .map_err(|m| format!("{}:{}: {}", p.display(), m.line, m.message))?;
        }
        println!(
            "schema OK: {total} event line{} across {} file{}",
            if total == 1 { "" } else { "s" },
            paths.len(),
            if paths.len() == 1 { "" } else { "s" },
        );
        return Ok(ExitCode::SUCCESS);
    }

    if args.iter().any(|a| a == "--diff") {
        if paths.len() != 2 {
            return Err("report --diff: pass exactly two files/directories (baseline new)".into());
        }
        let (a, ma) = rpt::load(&paths[..1]).map_err(|e| e.to_string())?;
        let (b, mb) = rpt::load(&paths[1..]).map_err(|e| e.to_string())?;
        for m in ma.iter().chain(&mb) {
            eprintln!("warning: {}:{}: {}", m.path, m.line, m.message);
        }
        let d = rpt::diff(&a, &b, opts);
        print!("{}", rpt::render_diff(&d));
        return Ok(if d.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }

    if paths.is_empty() {
        return Err("report: no input files (pass report/event files or directories)".into());
    }
    let (set, malformed) = rpt::load(&paths).map_err(|e| e.to_string())?;
    for m in &malformed {
        eprintln!("warning: {}:{}: {}", m.path, m.line, m.message);
    }
    if set.is_empty() {
        return Err("report: nothing ingestible in the given files".into());
    }
    print!("{}", rpt::render_dashboard(&set));
    Ok(ExitCode::SUCCESS)
}

/// `parra campaign`: checkpointed, sharded, resumable, diffable sweeps
/// against a persistent experiment store (see `crates/campaign`).
fn campaign(args: &[String]) -> Result<ExitCode, String> {
    let (sub, rest) = args
        .split_first()
        .ok_or("campaign: expected run, resume, status, or diff")?;
    match sub.as_str() {
        "run" => campaign_run(rest),
        "resume" => campaign_resume(rest),
        "status" => campaign_status(rest),
        "diff" => campaign_diff(rest),
        other => Err(format!(
            "campaign: unknown subcommand `{other}` (expected run, resume, status, or diff)"
        )),
    }
}

/// The engine-selection label stored in manifests and content keys.
fn selection_label(engines: &[EngineId], race: bool, all: bool) -> String {
    if race {
        "race".to_string()
    } else if all {
        "all-engines".to_string()
    } else {
        engines[0].to_string()
    }
}

/// Inverts [`selection_label`] — how `campaign resume` reconstructs the
/// engine selection from a manifest.
fn selection_from_label(label: &str) -> Result<(Vec<EngineId>, bool), String> {
    match label {
        "race" => Ok((EngineId::ALL.to_vec(), true)),
        "all-engines" => Ok((EngineId::ALL.to_vec(), false)),
        single => EngineId::ALL
            .iter()
            .find(|e| e.to_string() == single)
            .map(|&e| (vec![e], false))
            .ok_or_else(|| format!("manifest: unknown engine label `{single}`")),
    }
}

/// Expands positional arguments into the input list (directories expand
/// to their `.ra` files in sorted order, as in `parra batch`).
fn campaign_inputs(args: &[String]) -> Result<Vec<String>, String> {
    let mut inputs = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if VALUE_FLAGS.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            let path = std::path::PathBuf::from(a);
            if path.is_dir() {
                let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(&path)
                    .map_err(|e| format!("cannot read directory `{a}`: {e}"))?
                    .filter_map(|entry| entry.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|ext| ext == "ra"))
                    .collect();
                entries.sort();
                inputs.extend(entries.iter().map(|p| p.display().to_string()));
            } else {
                inputs.push(a.clone());
            }
        }
    }
    Ok(inputs)
}

fn campaign_run(args: &[String]) -> Result<ExitCode, String> {
    use parra::campaign::{CampaignOptions, Manifest, Shard, Store};

    let store_dir = flag_value(args, "--store").ok_or("campaign run: --store DIR is required")?;
    let inputs = campaign_inputs(args)?;
    if inputs.is_empty() {
        return Err("campaign run: no input files (pass .ra files or directories)".into());
    }
    let (timeout, memory_budget) = parse_limit_flags(args)?;
    let unroll = flag_value(args, "--unroll")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--unroll: {e}")))
        .transpose()?;
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let options = VerifierOptions {
        unroll_dis: unroll,
        threads: parra::search::Threads::resolve(threads).get(),
        timeout,
        memory_budget,
        ..Default::default()
    };
    let engines = engine_selection(args)?;
    let race = args.iter().any(|a| a == "--race");
    let all = args.iter().any(|a| a == "--all-engines");
    let shard = flag_value(args, "--shard")
        .map(|s| Shard::parse(&s))
        .transpose()?;
    let copts = CampaignOptions {
        engine_label: selection_label(&engines, race, all),
        engines,
        race,
        options,
        shard,
    };
    let manifest = Manifest {
        engine: copts.engine_label.clone(),
        options_fp: copts.options_fp(),
        unroll: unroll.map(|n| n as u64),
        timeout_us: timeout.map(|d| d.as_micros() as u64),
        memory_budget: memory_budget.map(|n| n as u64),
        shard: shard.map(|s| (s.k, s.n)),
        inputs,
    };
    let store = Store::open_or_create(std::path::Path::new(&store_dir), &manifest)?;
    campaign_execute(&store, &manifest, &copts, args)
}

fn campaign_resume(args: &[String]) -> Result<ExitCode, String> {
    use parra::campaign::{CampaignOptions, Shard, Store};

    let store_dir =
        flag_value(args, "--store").ok_or("campaign resume: --store DIR is required")?;
    let (store, manifest) = Store::open(std::path::Path::new(&store_dir))?;
    let (engines, race) = selection_from_label(&manifest.engine)?;
    let threads = flag_value(args, "--threads")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--threads: {e}")))
        .transpose()?;
    let options = VerifierOptions {
        unroll_dis: manifest.unroll.map(|n| n as usize),
        threads: parra::search::Threads::resolve(threads).get(),
        timeout: manifest.timeout_us.map(Duration::from_micros),
        memory_budget: manifest.memory_budget.map(|n| n as usize),
        ..Default::default()
    };
    let copts = CampaignOptions {
        engine_label: manifest.engine.clone(),
        engines,
        race,
        options,
        shard: manifest.shard.map(|(k, n)| Shard { k, n }),
    };
    if copts.options_fp() != manifest.options_fp {
        return Err(format!(
            "store `{store_dir}`: manifest options (fingerprint `{}`) no longer reproduce \
             fingerprint `{}` — the store predates an options-format change; re-run the campaign",
            manifest.options_fp,
            copts.options_fp()
        ));
    }
    campaign_execute(&store, &manifest, &copts, args)
}

/// Shared `run`/`resume` execution: plan, verify, stream one JSON line
/// per owned input plus a final summary line, write the event log, and
/// map the owned inputs' verdict tallies to the exit code.
fn campaign_execute(
    store: &parra::campaign::Store,
    manifest: &parra::campaign::Manifest,
    copts: &parra::campaign::CampaignOptions,
    args: &[String],
) -> Result<ExitCode, String> {
    let events_out = flag_value(args, "--events-out");
    if args.iter().any(|a| a == "--events-out") && events_out.is_none() {
        return Err("--events-out needs a file path".into());
    }
    let rec = if events_out.is_some() {
        Recorder::enabled(Level::Summary)
    } else {
        Recorder::disabled()
    };
    let entries = parra::campaign::plan(&manifest.inputs, store, copts)?;
    let mut input_events = String::new();
    let summary =
        parra::campaign::run_campaign(store, &entries, copts, &rec, |entry, record, irec| {
            let mut w = parra::obs::json::ObjWriter::new();
            w.str_field("input", &entry.input);
            w.str_field("key", &entry.key);
            match &record.verdict {
                Some(v) => w.str_field("verdict", v),
                None => w.raw_field("verdict", "null"),
            }
            match &record.interrupted {
                Some(r) => w.str_field("interrupted", r),
                None => w.raw_field("interrupted", "null"),
            }
            match &record.error {
                Some(e) => w.str_field("error", e),
                None => w.raw_field("error", "null"),
            }
            w.raw_field("cached", if entry.cached { "true" } else { "false" });
            w.num_field("duration_us", record.duration_us);
            println!("{}", w.finish());
            if irec.is_enabled() {
                input_events.push_str(&irec.render_events_jsonl(&[("file", &entry.input)]));
            }
        })?;
    let mut w = parra::obs::json::ObjWriter::new();
    w.num_field("planned", summary.planned);
    w.num_field("assigned", summary.assigned);
    w.num_field("cached", summary.cached);
    w.num_field("verified", summary.verified);
    w.num_field("safe", summary.safe);
    w.num_field("unsafe", summary.unsafe_);
    w.num_field("unknown", summary.unknown);
    w.num_field("interrupted", summary.interrupted);
    w.num_field("errors", summary.errors);
    println!("{}", w.finish());
    if let Some(path) = events_out {
        // Campaign-scope events first, then each input's engine events
        // with `file` attribution — the same shape `parra report` ingests
        // from `batch --events-out`.
        let log = rec.render_events_jsonl(&[]) + &input_events;
        std::fs::write(&path, log).map_err(|e| format!("--events-out `{path}`: {e}"))?;
        eprintln!("events written to {path}");
    }
    Ok(if summary.unsafe_ > 0 {
        ExitCode::from(1)
    } else if summary.unknown + summary.interrupted + summary.errors > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}

fn campaign_status(args: &[String]) -> Result<ExitCode, String> {
    use parra::campaign::{Manifest, Record, Store};
    use std::collections::BTreeMap;

    let stores: Vec<String> = {
        let mut v = Vec::new();
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                iter.next();
            } else if !a.starts_with("--") {
                v.push(a.clone());
            }
        }
        v
    };
    if stores.is_empty() {
        return Err("campaign status: pass one or more store directories".into());
    }
    let mut merged: BTreeMap<String, Record> = BTreeMap::new();
    let mut all_inputs: Vec<String> = Vec::new();
    let mut first_manifest: Option<Manifest> = None;
    for dir in &stores {
        let (store, manifest) = Store::open(std::path::Path::new(dir))?;
        if let Some(first) = &first_manifest {
            if manifest.engine != first.engine || manifest.options_fp != first.options_fp {
                return Err(format!(
                    "campaign status: store `{dir}` (engine `{}`, options `{}`) does not \
                     belong to the same campaign as `{}` (engine `{}`, options `{}`)",
                    manifest.engine, manifest.options_fp, stores[0], first.engine, first.options_fp
                ));
            }
        }
        let records = store.records()?;
        let settled = store.merged()?.values().filter(|r| r.is_settled()).count();
        let shard = manifest
            .shard
            .map(|(k, n)| format!("shard {k}/{n}"))
            .unwrap_or_else(|| "unsharded".to_string());
        println!(
            "{dir}: {} ({}), {} inputs listed, {} records, {} settled keys",
            manifest.engine,
            shard,
            manifest.inputs.len(),
            records.len(),
            settled,
        );
        for input in &manifest.inputs {
            if !all_inputs.contains(input) {
                all_inputs.push(input.clone());
            }
        }
        // Chronological within each store; across stores, later
        // command-line position wins — status is a fold, not a race.
        for r in records {
            merged.insert(r.key.clone(), r);
        }
        first_manifest.get_or_insert(manifest);
    }
    let (mut safe, mut unsafe_, mut unknown, mut interrupted, mut errors) = (0, 0, 0, 0, 0);
    for r in merged.values() {
        if r.error.is_some() {
            errors += 1;
        } else if r.interrupted.is_some() {
            interrupted += 1;
        } else {
            match r.verdict.as_deref() {
                Some("SAFE") => safe += 1,
                Some("UNSAFE") => unsafe_ += 1,
                _ => unknown += 1,
            }
        }
    }
    println!(
        "merged: {} keys — {safe} safe, {unsafe_} unsafe, {unknown} unknown, \
         {interrupted} interrupted, {errors} errors",
        merged.len()
    );
    if let Some(out) = flag_value(args, "--merge-out") {
        let manifest = Manifest {
            shard: None,
            inputs: all_inputs,
            ..first_manifest.expect("stores is non-empty")
        };
        Store::write_merged(std::path::Path::new(&out), &manifest, &merged)?;
        println!("merged store written to {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn campaign_diff(args: &[String]) -> Result<ExitCode, String> {
    let dirs: Vec<String> = {
        let mut v = Vec::new();
        let mut iter = args.iter();
        while let Some(a) = iter.next() {
            if VALUE_FLAGS.contains(&a.as_str()) {
                iter.next();
            } else if !a.starts_with("--") {
                v.push(a.clone());
            }
        }
        v
    };
    if dirs.len() != 2 {
        return Err("campaign diff: pass exactly two store directories (baseline new)".into());
    }
    let threshold = flag_value(args, "--threshold")
        .map(|t| t.parse::<u64>().map_err(|e| format!("--threshold: {e}")))
        .transpose()?;
    let (a, b) = (
        std::path::Path::new(&dirs[0]),
        std::path::Path::new(&dirs[1]),
    );
    let d = parra::campaign::diff_stores(a, b, threshold)?;
    print!("{}", parra::campaign::render_diff(a, b, &d));
    Ok(if d.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
