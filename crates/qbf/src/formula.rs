//! Quantified boolean formulas of the paper's shape:
//! `Ψ = ∀u₀ ∃e₁ ∀u₁ … ∃eₙ ∀uₙ Φ(u₀, e₁, …, uₙ)`.
//!
//! The prefix strictly alternates, starting and ending universally, with
//! `n+1` universal and `n` existential variables (`2n+1` in total). This is
//! the canonical PSPACE-complete TQBF form used by the Section 5
//! reduction; arbitrary QBFs can be padded into it with dummy variables.

use std::fmt;

/// A variable of the prefix, by position: `QVar(0) = u₀`, `QVar(1) = e₁`,
/// `QVar(2) = u₁`, … — universal iff the position is even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QVar(pub usize);

impl QVar {
    /// Whether the variable is universally quantified.
    pub fn is_universal(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The paper's name: `u_i` for universals, `e_i` for existentials.
    pub fn name(self) -> String {
        if self.is_universal() {
            format!("u{}", self.0 / 2)
        } else {
            format!("e{}", self.0 / 2 + 1)
        }
    }
}

/// A boolean formula over prefix variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// A constant.
    Const(bool),
    /// A variable.
    Var(QVar),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Variable leaf.
    pub fn var(i: usize) -> BoolExpr {
        BoolExpr::Var(QVar(i))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // DSL naming mirrors the syntax
    pub fn not(self) -> BoolExpr {
        BoolExpr::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// Conjunction of any number of formulas (`true` when empty).
    pub fn conj<I: IntoIterator<Item = BoolExpr>>(parts: I) -> BoolExpr {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => BoolExpr::Const(true),
            Some(first) => iter.fold(first, BoolExpr::and),
        }
    }

    /// Disjunction of any number of formulas (`false` when empty).
    pub fn disj<I: IntoIterator<Item = BoolExpr>>(parts: I) -> BoolExpr {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => BoolExpr::Const(false),
            Some(first) => iter.fold(first, BoolExpr::or),
        }
    }

    /// Evaluates under an assignment (indexed by prefix position).
    ///
    /// # Panics
    ///
    /// Panics if the formula mentions a variable outside the assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(v) => assignment[v.0],
            BoolExpr::Not(e) => !e.eval(assignment),
            BoolExpr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            BoolExpr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }

    /// Negation normal form: negations pushed to the literals.
    pub fn to_nnf(&self) -> Nnf {
        match self {
            BoolExpr::Const(b) => Nnf::Const(*b),
            BoolExpr::Var(v) => Nnf::Lit(*v, true),
            BoolExpr::And(a, b) => Nnf::And(Box::new(a.to_nnf()), Box::new(b.to_nnf())),
            BoolExpr::Or(a, b) => Nnf::Or(Box::new(a.to_nnf()), Box::new(b.to_nnf())),
            BoolExpr::Not(e) => e.negate_nnf(),
        }
    }

    fn negate_nnf(&self) -> Nnf {
        match self {
            BoolExpr::Const(b) => Nnf::Const(!*b),
            BoolExpr::Var(v) => Nnf::Lit(*v, false),
            BoolExpr::Not(e) => e.to_nnf(),
            BoolExpr::And(a, b) => Nnf::Or(Box::new(a.negate_nnf()), Box::new(b.negate_nnf())),
            BoolExpr::Or(a, b) => Nnf::And(Box::new(a.negate_nnf()), Box::new(b.negate_nnf())),
        }
    }

    /// The highest prefix position mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            BoolExpr::Const(_) => None,
            BoolExpr::Var(v) => Some(v.0),
            BoolExpr::Not(e) => e.max_var(),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => a.max_var().max(b.max_var()),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Var(v) => write!(f, "{}", v.name()),
            BoolExpr::Not(e) => write!(f, "¬({e})"),
            BoolExpr::And(a, b) => write!(f, "({a} ∧ {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

/// Negation normal form: literals with polarity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Nnf {
    /// Constant.
    Const(bool),
    /// A literal: variable and polarity (`true` = positive).
    Lit(QVar, bool),
    /// Conjunction.
    And(Box<Nnf>, Box<Nnf>),
    /// Disjunction.
    Or(Box<Nnf>, Box<Nnf>),
}

/// A quantified boolean formula of the paper's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qbf {
    /// The alternation parameter: `n+1` universals, `n` existentials.
    pub n: usize,
    /// The matrix `Φ` over prefix positions `0..2n+1`.
    pub matrix: BoolExpr,
}

impl Qbf {
    /// Creates a formula, validating that the matrix stays within the
    /// prefix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix mentions a variable beyond position `2n`.
    pub fn new(n: usize, matrix: BoolExpr) -> Qbf {
        if let Some(m) = matrix.max_var() {
            assert!(
                m <= 2 * n,
                "matrix mentions prefix position {m}, but the prefix has {} variables",
                2 * n + 1
            );
        }
        Qbf { n, matrix }
    }

    /// Total number of prefix variables (`2n + 1`).
    pub fn n_vars(&self) -> usize {
        2 * self.n + 1
    }

    /// The prefix variables in order.
    pub fn prefix(&self) -> impl Iterator<Item = QVar> {
        (0..self.n_vars()).map(QVar)
    }
}

impl fmt::Display for Qbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in self.prefix() {
            write!(
                f,
                "{}{} ",
                if v.is_universal() { "∀" } else { "∃" },
                v.name()
            )?;
        }
        write!(f, ". {}", self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_alternation() {
        let q = Qbf::new(2, BoolExpr::Const(true));
        let kinds: Vec<bool> = q.prefix().map(|v| v.is_universal()).collect();
        assert_eq!(kinds, vec![true, false, true, false, true]);
        assert_eq!(QVar(0).name(), "u0");
        assert_eq!(QVar(1).name(), "e1");
        assert_eq!(QVar(4).name(), "u2");
    }

    #[test]
    fn eval_on_assignments() {
        // (u0 ∨ e1) ∧ ¬u1
        let m = BoolExpr::var(0)
            .or(BoolExpr::var(1))
            .and(BoolExpr::var(2).not());
        assert!(m.eval(&[true, false, false]));
        assert!(!m.eval(&[false, false, false]));
        assert!(!m.eval(&[true, true, true]));
    }

    #[test]
    fn nnf_pushes_negations() {
        // ¬(u0 ∧ ¬e1) = ¬u0 ∨ e1
        let m = BoolExpr::var(0).and(BoolExpr::var(1).not()).not();
        let nnf = m.to_nnf();
        match nnf {
            Nnf::Or(a, b) => {
                assert_eq!(*a, Nnf::Lit(QVar(0), false));
                assert_eq!(*b, Nnf::Lit(QVar(1), true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nnf_preserves_semantics() {
        fn eval_nnf(n: &Nnf, a: &[bool]) -> bool {
            match n {
                Nnf::Const(b) => *b,
                Nnf::Lit(v, pos) => a[v.0] == *pos,
                Nnf::And(x, y) => eval_nnf(x, a) && eval_nnf(y, a),
                Nnf::Or(x, y) => eval_nnf(x, a) || eval_nnf(y, a),
            }
        }
        let m = BoolExpr::var(0)
            .and(BoolExpr::var(1).or(BoolExpr::var(2)).not())
            .or(BoolExpr::var(2).not().not());
        let nnf = m.to_nnf();
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(m.eval(&a), eval_nnf(&nnf, &a), "bits {bits:#b}");
        }
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn out_of_prefix_matrix_rejected() {
        Qbf::new(0, BoolExpr::var(1));
    }

    #[test]
    fn display() {
        let q = Qbf::new(1, BoolExpr::var(0).and(BoolExpr::var(2)));
        assert_eq!(q.to_string(), "∀u0 ∃e1 ∀u1 . (u0 ∧ u1)");
    }

    #[test]
    fn conj_disj_helpers() {
        assert_eq!(BoolExpr::conj([]), BoolExpr::Const(true));
        assert_eq!(BoolExpr::disj([]), BoolExpr::Const(false));
        let c = BoolExpr::conj([BoolExpr::var(0), BoolExpr::var(2)]);
        assert!(c.eval(&[true, false, true]));
        assert!(!c.eval(&[true, false, false]));
    }
}
