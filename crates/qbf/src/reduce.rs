//! The Section 5 reduction: TQBF → parameterized safety verification in
//! PureRA (Figure 6, Theorem 5.1).
//!
//! Given `Ψ = ∀u₀∃e₁…∀uₙ Φ`, the construction emits a single `env`
//! program — a non-deterministic choice of *roles* — over shared variables
//! `t_b, f_b` (per prefix variable `b`), `s`, and `a_{i,v}`
//! (`0 ≤ i ≤ n`, `v ∈ {0,1}`), such that the program is unsafe iff `Ψ` is
//! true:
//!
//! * **Assignment Guesser** `c_AG` — picks, for each prefix variable, one
//!   of `t_b := 1` or `f_b := 1` (raising that variable's timestamp in its
//!   view), then publishes the assignment via `s := 1`. The view encodes
//!   `b` as `vw(t_b) = 0 ⟺ b = 1`: the *initial* message of `t_b` stays
//!   readable exactly when nobody whose view we inherited wrote `t_b`.
//! * **Satisfiability Checker** `c_SATC` — synchronizes on `s = 1`
//!   (inheriting a guesser's view), checks `Φ` literal-by-literal by
//!   readability of initial messages, then verifies `uₙ`'s value and
//!   publishes `a_{n,uₙ}` := 1.
//! * **∀∃-Checker** `c_FE[i]` — reads `a_{i+1,0} = 1` *and*
//!   `a_{i+1,1} = 1` (both branches of `∀u_{i+1}` verified — joining both
//!   publishers' views), checks that the two branches agreed on `e_{i+1}`
//!   (one of `t_{e_{i+1}}`, `f_{e_{i+1}}` still readable at 0), then
//!   verifies `u_i` and publishes `a_{i,u_i}` := 1.
//! * **Assertion Checker** `c_assert` — reads `a_{0,0} = 1` and
//!   `a_{0,1} = 1` and executes `assert false`.
//!
//! PureRA forbids registers and restricts stores to writing `1`; the
//! `assume (x = v)` idiom is realized as the standard load-into-scratch
//! followed by `assume` (the wait-loop remodelling the paper applies to
//! its benchmarks). Figure 6 renders `pick` with stores of `0`; we write
//! `1` as PureRA prescribes ("stores can only write value one") — only the
//! timestamp raise matters, but distinct values let `assume (t_b = 0)` pin
//! the initial message.

use crate::formula::{Nnf, Qbf};
use parra_program::builder::{ProgramBuilder, SystemBuilder};
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::stmt::Com;
use parra_program::system::ParamSystem;

/// The output of the reduction, with the variable layout exposed for
/// tests and experiments.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The PureRA system (`env` only, no `dis` threads).
    pub system: ParamSystem,
    /// `t_b` per prefix position.
    pub t_vars: Vec<VarId>,
    /// `f_b` per prefix position.
    pub f_vars: Vec<VarId>,
    /// The publication variable `s`.
    pub s_var: VarId,
    /// `a_{i,v}` for `i ∈ 0..=n`, `v ∈ {0,1}`: `a_vars[i][v]`.
    pub a_vars: Vec<[VarId; 2]>,
}

/// Builds the Figure 6 program for `Ψ`.
pub fn reduce_to_purera(qbf: &Qbf) -> Reduction {
    let n = qbf.n;
    let mut b = SystemBuilder::new(2);

    let t_vars: Vec<VarId> = qbf
        .prefix()
        .map(|v| b.var(&format!("t_{}", v.name())))
        .collect();
    let f_vars: Vec<VarId> = qbf
        .prefix()
        .map(|v| b.var(&format!("f_{}", v.name())))
        .collect();
    let s_var = b.var("s");
    let a_vars: Vec<[VarId; 2]> = (0..=n)
        .map(|i| [b.var(&format!("a_{i}_0")), b.var(&format!("a_{i}_1"))])
        .collect();

    let mut p: ProgramBuilder = b.program("c_env");
    let scratch = p.reg("r");

    let await_eq = |x: VarId, v: u32| Com::await_value(x, scratch, Expr::val(v));
    // pick(b) = (t_b := 1) ⊕ (f_b := 1)
    let pick = |pos: usize| {
        Com::choice([
            Com::Store(t_vars[pos], Expr::val(1)),
            Com::Store(f_vars[pos], Expr::val(1)),
        ])
    };
    // Literal check: `b = 1` ⟺ init message of t_b readable; `b = 0` ⟺
    // init message of f_b readable.
    let check_lit = |pos: usize, positive: bool| {
        if positive {
            await_eq(t_vars[pos], 0)
        } else {
            await_eq(f_vars[pos], 0)
        }
    };
    // check(Φ): the NNF-structured readability program.
    fn check_nnf(nnf: &Nnf, check_lit: &impl Fn(usize, bool) -> Com) -> Com {
        match nnf {
            Nnf::Const(true) => Com::Skip,
            Nnf::Const(false) => Com::Assume(Expr::val(0)),
            Nnf::Lit(v, positive) => check_lit(v.0, *positive),
            Nnf::And(a, b) => Com::seq([check_nnf(a, check_lit), check_nnf(b, check_lit)]),
            Nnf::Or(a, b) => Com::choice([check_nnf(a, check_lit), check_nnf(b, check_lit)]),
        }
    }
    // Verify a universal variable's value and publish the a-message:
    // ((assume t_u = 0; a_{i,1} := 1) ⊕ (assume f_u = 0; a_{i,0} := 1)).
    let verify_and_publish = |pos: usize, level: usize| {
        Com::choice([
            Com::seq([
                await_eq(t_vars[pos], 0),
                Com::Store(a_vars[level][1], Expr::val(1)),
            ]),
            Com::seq([
                await_eq(f_vars[pos], 0),
                Com::Store(a_vars[level][0], Expr::val(1)),
            ]),
        ])
    };

    // c_AG: pick every prefix variable, then publish s := 1.
    let c_ag = Com::seq(
        (0..qbf.n_vars())
            .map(&pick)
            .chain(std::iter::once(Com::Store(s_var, Expr::val(1)))),
    );

    // c_SATC: sync on s, check Φ, verify u_n (prefix position 2n).
    let c_satc = Com::seq([
        await_eq(s_var, 1),
        check_nnf(&qbf.matrix.to_nnf(), &check_lit),
        verify_and_publish(2 * n, n),
    ]);

    // c_FE[i] for i ∈ 0..n: consume level i+1, check e_{i+1} (prefix
    // position 2(i+1) - 1 = 2i + 1), verify u_i (prefix position 2i).
    let c_fes: Vec<Com> = (0..n)
        .map(|i| {
            let e_pos = 2 * i + 1;
            Com::seq([
                await_eq(a_vars[i + 1][0], 1),
                await_eq(a_vars[i + 1][1], 1),
                Com::choice([await_eq(f_vars[e_pos], 0), await_eq(t_vars[e_pos], 0)]),
                verify_and_publish(2 * i, i),
            ])
        })
        .collect();

    // c_assert: consume level 0 and violate.
    let c_assert = Com::seq([
        await_eq(a_vars[0][0], 1),
        await_eq(a_vars[0][1], 1),
        Com::AssertFalse,
    ]);

    let mut roles = vec![c_ag, c_satc];
    roles.extend(c_fes);
    roles.push(c_assert);
    p.push(Com::choice(roles));
    let env = p.finish();

    Reduction {
        system: b.build(env, vec![]),
        t_vars,
        f_vars,
        s_var,
        a_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::BoolExpr;
    use parra_program::classify::SystemClass;

    #[test]
    fn output_is_purera_class() {
        let q = Qbf::new(1, BoolExpr::var(0).or(BoolExpr::var(0).not()));
        let r = reduce_to_purera(&q);
        let class = SystemClass::of(&r.system);
        // env(nocas, acyc), no dis threads.
        assert!(class.env.nocas);
        assert!(class.env.acyc);
        assert!(r.system.dis.is_empty());
        assert_eq!(r.system.dom.size(), 2);
    }

    #[test]
    fn variable_layout() {
        let q = Qbf::new(2, BoolExpr::Const(true));
        let r = reduce_to_purera(&q);
        assert_eq!(r.t_vars.len(), 5);
        assert_eq!(r.f_vars.len(), 5);
        assert_eq!(r.a_vars.len(), 3);
        // 2·(2n+1) + 1 + 2(n+1) shared variables.
        assert_eq!(r.system.n_vars() as usize, 2 * 5 + 1 + 2 * 3);
    }

    #[test]
    fn stores_write_only_one() {
        // PureRA: every store writes the constant 1.
        let q = Qbf::new(1, BoolExpr::var(1));
        let r = reduce_to_purera(&q);
        for e in r.system.env.cfa().edges() {
            if let parra_program::cfg::Instr::Store(_, expr) = &e.instr {
                assert_eq!(expr, &Expr::val(1));
            }
        }
    }

    #[test]
    fn program_has_assert_and_is_loop_free() {
        let q = Qbf::new(1, BoolExpr::Const(true));
        let r = reduce_to_purera(&q);
        assert!(r.system.env.cfa().has_assert());
        assert!(r.system.env.cfa().is_acyclic());
    }
}
