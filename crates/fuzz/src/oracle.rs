//! Differential oracles: executable statements of the repo's correctness
//! criteria, each checkable on an arbitrary [`ParamSystem`].
//!
//! | oracle | checks | theorem |
//! |---|---|---|
//! | [`EnginesAgree`] | simplified-reach ≡ cache-datalog verdicts, concrete only strengthens | Thm 4.1 / Lemma 4.3 |
//! | [`Equivalence`] | simplified ≡ bounded concrete RA on small instances | Thm 3.4 |
//! | [`ThreadDeterminism`] | 1-thread and N-thread reports are identical | §7c determinism |
//! | [`RoundTrip`] | `pretty → parse_system` reproduces the system | parser/printer drift |
//! | [`Monotonicity`] | verdicts persist under larger `max_states` / deeper unrolling | search soundness |
//! | [`EvalAgree`] | indexed Datalog evaluator ≡ naive reference on `makeP` outputs | evaluator substrate |
//! | [`ServeRoundTrip`] | every serve frame — mangled or not — gets one structured response; served verdicts match direct runs | §7i protocol totality |
//!
//! An oracle returns [`OracleOutcome::Skip`] when the system is outside
//! its preconditions (undecidable class, truncated search, no target) —
//! a skip is not a pass, and the fuzz summary counts them separately.

use crate::gen::GenConfig;
use parra_core::makep::{DatalogTarget, MakeP, MakePLimits};
use parra_core::verify::{EngineId, Verdict, Verifier, VerifierError, VerifierOptions};
use parra_datalog::{Evaluator, NaiveEvaluator};
use parra_program::parser::parse_system;
use parra_program::pretty;
use parra_program::system::ParamSystem;
use parra_program::transform;
use parra_program::value::Val;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra_simplified::state::Budget;

/// The result of one oracle check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// The property holds on this system.
    Pass,
    /// The property is violated — a bug in an engine, the printer, or the
    /// parser. The string describes the disagreement.
    Fail(String),
    /// The system is outside the oracle's preconditions; nothing was
    /// checked. The string names the precondition.
    Skip(String),
}

impl OracleOutcome {
    /// Whether this outcome is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self, OracleOutcome::Fail(_))
    }
}

/// A differential-fuzzing oracle: a correctness property checkable on any
/// system, plus the generator family that exercises it best.
pub trait Oracle: Sync {
    /// Stable kebab-case name (the CLI's `--oracle` values).
    fn name(&self) -> &'static str;
    /// The generator family tailored to this oracle.
    fn gen_config(&self) -> GenConfig;
    /// Deterministic case budget per second of `--seconds` (calibrated
    /// conservatively; see `FuzzConfig`'s docs for why the budget is a
    /// case count, not a wall clock).
    fn cases_per_second(&self) -> u64;
    /// Checks the property on `sys`.
    fn check(&self, sys: &ParamSystem) -> OracleOutcome;
}

/// Every built-in oracle, in CLI order.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(EnginesAgree),
        Box::new(Equivalence),
        Box::new(ThreadDeterminism),
        Box::new(RoundTrip),
        Box::new(Monotonicity),
        Box::new(EvalAgree),
        Box::new(ServeRoundTrip),
    ]
}

/// Looks an oracle up by its CLI name.
pub fn oracle_by_name(name: &str) -> Option<Box<dyn Oracle>> {
    all_oracles().into_iter().find(|o| o.name() == name)
}

fn verifier_for(sys: &ParamSystem, options: VerifierOptions) -> Result<Verifier, OracleOutcome> {
    match Verifier::new(sys, options.clone()) {
        Ok(v) => Ok(v),
        Err(VerifierError::NeedsUnrolling) => Verifier::new(
            sys,
            VerifierOptions {
                unroll_dis: Some(2),
                ..options
            },
        )
        .map_err(|e| OracleOutcome::Skip(format!("verifier rejected system: {e}"))),
        Err(e) => Err(OracleOutcome::Skip(format!(
            "verifier rejected system: {e}"
        ))),
    }
}

// ---------------------------------------------------------------------
// 1. Cross-engine verdict agreement
// ---------------------------------------------------------------------

/// The direct simplified-semantics search and the `makeP` Datalog encoding
/// are two implementations of one decision procedure (Theorem 4.1 / Lemma
/// 4.3): their verdicts must agree, and the bounded concrete baseline may
/// only strengthen `Unsafe`.
pub struct EnginesAgree;

impl Oracle for EnginesAgree {
    fn name(&self) -> &'static str {
        "engines-agree"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::agreement()
    }

    fn cases_per_second(&self) -> u64 {
        25
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        let v = match verifier_for(sys, VerifierOptions::default()) {
            Ok(v) => v,
            Err(skip) => return skip,
        };
        let r1 = v.run(EngineId::SimplifiedReach);
        let r2 = v.run(EngineId::CacheDatalog);
        if r1.verdict == Verdict::Unknown || r2.verdict == Verdict::Unknown {
            return OracleOutcome::Skip("an exact engine hit its search limits".into());
        }
        if r1.verdict != r2.verdict {
            return OracleOutcome::Fail(format!(
                "simplified-reach={} but cache-datalog={}",
                r1.verdict, r2.verdict
            ));
        }
        let r3 = v.run(EngineId::BoundedConcrete);
        if r3.verdict == Verdict::Unsafe && r1.verdict != Verdict::Unsafe {
            return OracleOutcome::Fail(format!(
                "bounded-concrete found a violation but the exact engines say {}",
                r1.verdict
            ));
        }
        OracleOutcome::Pass
    }
}

// ---------------------------------------------------------------------
// 2. Simplified ≡ concrete (Theorem 3.4)
// ---------------------------------------------------------------------

/// Theorem 3.4 on small instances: a goal message is generable under the
/// simplified semantics iff some concrete-RA instance generates it.
/// Completeness is checked exactly (a concrete hit forces `Unsafe`);
/// soundness is checked when the tested instances were exhausted and the
/// §4.3 cost bound says they suffice.
pub struct Equivalence;

/// Instances tested by the concrete side of [`Equivalence`].
const EQUIV_MAX_ENV: usize = 3;

impl Oracle for Equivalence {
    fn name(&self) -> &'static str {
        "equivalence"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::equivalence()
    }

    fn cases_per_second(&self) -> u64 {
        10
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        if sys.dom.size() < 2 {
            return OracleOutcome::Skip("goal transformation needs |Dom| >= 2".into());
        }
        // Resolve the goal message: prefer the assert-based reduction;
        // fall back to a variable literally named `goal` (the generator's
        // Message Generation families).
        let (sys, goal, goal_val) =
            if sys.env.com().has_assert() || sys.dis.iter().any(|p| p.com().has_assert()) {
                let g = transform::assert_to_goal(sys);
                (g.system, g.goal_var, g.goal_val)
            } else if let Some(i) = sys.vars.lookup("goal") {
                (sys.clone(), parra_program::ident::VarId(i), Val(1))
            } else {
                return OracleOutcome::Skip("no assert and no `goal` variable to target".into());
            };
        let budget = match Budget::exact(&sys) {
            Some(b) => b,
            None => return OracleOutcome::Skip("dis threads have loops (no exact budget)".into()),
        };
        let engine = match Reachability::new(sys.clone(), budget.clone(), ReachLimits::default()) {
            Ok(e) => e,
            Err(e) => return OracleOutcome::Skip(format!("simplified engine rejected: {e}")),
        };
        let report = engine.run(SimpTarget::MessageGenerated(goal, goal_val));
        if report.outcome == ReachOutcome::Truncated {
            return OracleOutcome::Skip("simplified search truncated".into());
        }
        let cost_bound = report.witness.as_ref().and_then(|w| {
            let g = DepGraph::build(&sys, &budget, w);
            g.find_message(goal, goal_val).map(|n| cost_of_graph(&g, n))
        });

        let mut concrete_hit = None;
        let mut concrete_exact = true;
        for n_env in 0..=EQUIV_MAX_ENV {
            let limits = ExploreLimits {
                max_depth: 40,
                max_states: 400_000,
            };
            let rep = Explorer::new(Instance::new(sys.clone(), n_env), limits)
                .run(Target::MessageGenerated(goal, goal_val));
            match rep.outcome {
                ExploreOutcome::Unsafe => {
                    concrete_hit = Some(n_env);
                    break;
                }
                ExploreOutcome::SafeExhausted => {}
                ExploreOutcome::SafeWithinBounds => concrete_exact = false,
                // Oracles run ungoverned; an interruption can only mean an
                // unexpected external budget, so the instance is inconclusive.
                ExploreOutcome::Interrupted(_) => concrete_exact = false,
            }
        }
        match (report.outcome, concrete_hit) {
            (ReachOutcome::Unsafe, Some(_)) | (ReachOutcome::Safe, None) => OracleOutcome::Pass,
            (ReachOutcome::Safe, Some(n)) => OracleOutcome::Fail(format!(
                "completeness violation: concrete instance with {n} env threads \
                 generates the goal but the simplified semantics says Safe"
            )),
            (ReachOutcome::Unsafe, None) => {
                let enough = cost_bound
                    .map(|c| c <= EQUIV_MAX_ENV as u64)
                    .unwrap_or(false);
                if concrete_exact && enough {
                    OracleOutcome::Fail(format!(
                        "soundness violation: simplified says Unsafe (cost bound \
                         {cost_bound:?}) but no concrete instance up to \
                         {EQUIV_MAX_ENV} env threads generates the goal"
                    ))
                } else {
                    // The concrete search is bounded; nothing refutable.
                    OracleOutcome::Pass
                }
            }
            (ReachOutcome::Truncated, _) => unreachable!("handled above"),
            (ReachOutcome::Interrupted(_), _) => {
                OracleOutcome::Skip("simplified search interrupted".into())
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Thread-count determinism
// ---------------------------------------------------------------------

/// The sharded parallel searches commit results in a deterministic merge
/// order: every report field (verdict, state counts, witness, §4.3 bound)
/// must be byte-identical between a 1-worker and an N-worker run.
pub struct ThreadDeterminism;

impl Oracle for ThreadDeterminism {
    fn name(&self) -> &'static str {
        "thread-determinism"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::agreement()
    }

    fn cases_per_second(&self) -> u64 {
        10
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        let mk = |threads: usize| {
            verifier_for(
                sys,
                VerifierOptions {
                    threads,
                    ..Default::default()
                },
            )
        };
        let (seq, par) = match (mk(1), mk(4)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(skip), _) | (_, Err(skip)) => return skip,
        };
        for engine in [EngineId::SimplifiedReach, EngineId::BoundedConcrete] {
            let a = seq.run(engine);
            let b = par.run(engine);
            let mismatch = |field: &str| {
                OracleOutcome::Fail(format!(
                    "{engine}: {field} differs between 1 and 4 worker threads"
                ))
            };
            if a.verdict != b.verdict {
                return mismatch("verdict");
            }
            if a.stats.states != b.stats.states {
                return mismatch("stats.states");
            }
            if a.stats.worlds != b.stats.worlds {
                return mismatch("stats.worlds");
            }
            if a.witness_lines != b.witness_lines {
                return mismatch("witness");
            }
            if a.env_thread_bound != b.env_thread_bound {
                return mismatch("env_thread_bound");
            }
        }
        OracleOutcome::Pass
    }
}

// ---------------------------------------------------------------------
// 4. Pretty-printer / parser round-trip
// ---------------------------------------------------------------------

/// `parse_system(pretty(sys))` must reproduce `sys` exactly — same symbol
/// tables, same statement trees, same compiled CFAs — and printing the
/// reparsed system must reproduce the text (idempotence). Catches silent
/// printer/parser drift.
pub struct RoundTrip;

impl Oracle for RoundTrip {
    fn name(&self) -> &'static str {
        "round-trip"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig {
            env_loops: true,
            ..GenConfig::wide()
        }
    }

    fn cases_per_second(&self) -> u64 {
        400
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        let printed = pretty::system_to_string(sys);
        let reparsed = match parse_system(&printed) {
            Ok(s) => s,
            Err(e) => {
                return OracleOutcome::Fail(format!(
                    "pretty-printed system does not parse: {e}\n{printed}"
                ))
            }
        };
        if &reparsed != sys {
            return OracleOutcome::Fail(format!(
                "parse(pretty(sys)) differs from sys\nprinted:\n{printed}"
            ));
        }
        let reprinted = pretty::system_to_string(&reparsed);
        if reprinted != printed {
            return OracleOutcome::Fail(format!(
                "pretty-printing is not idempotent\nfirst:\n{printed}\nsecond:\n{reprinted}"
            ));
        }
        OracleOutcome::Pass
    }
}

// ---------------------------------------------------------------------
// 5. Verdict monotonicity
// ---------------------------------------------------------------------

/// Growing a search budget can only refine a verdict, never flip it:
///
/// * once `SimplifiedReach` decides (Safe/Unsafe) under a `max_states`
///   cap, every larger cap must yield the same verdict;
/// * `Unsafe` under `unroll_dis = k` must persist for every deeper
///   unrolling (deeper unrolling only adds behaviours).
pub struct Monotonicity;

impl Oracle for Monotonicity {
    fn name(&self) -> &'static str {
        "monotonicity"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::looping_dis()
    }

    fn cases_per_second(&self) -> u64 {
        10
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        // (a) max_states ladder.
        let ladder = [200usize, 2_000, ReachLimits::default().max_states];
        let mut decided: Option<(usize, Verdict)> = None;
        for cap in ladder {
            let opts = VerifierOptions {
                reach_limits: ReachLimits {
                    max_states: cap,
                    ..ReachLimits::default()
                },
                ..Default::default()
            };
            let v = match verifier_for(sys, opts) {
                Ok(v) => v,
                Err(skip) => return skip,
            };
            let r = v.run(EngineId::SimplifiedReach);
            if let Some((prev_cap, prev)) = decided {
                if r.verdict != Verdict::Unknown && r.verdict != prev {
                    return OracleOutcome::Fail(format!(
                        "simplified-reach verdict flipped from {prev} (max_states \
                         {prev_cap}) to {} (max_states {cap})",
                        r.verdict
                    ));
                }
                if r.verdict == Verdict::Unknown {
                    return OracleOutcome::Fail(format!(
                        "simplified-reach regressed from {prev} (max_states \
                         {prev_cap}) to Unknown at the larger cap {cap}"
                    ));
                }
            } else if r.verdict != Verdict::Unknown {
                decided = Some((cap, r.verdict));
            }
        }

        // (b) unrolling-depth ladder, for systems with dis loops.
        if sys.dis.iter().any(|p| p.com().has_star()) {
            let mut unsafe_at: Option<usize> = None;
            for depth in 1..=3usize {
                let opts = VerifierOptions {
                    unroll_dis: Some(depth),
                    ..Default::default()
                };
                let v = match Verifier::new(sys, opts) {
                    Ok(v) => v,
                    Err(e) => return OracleOutcome::Skip(format!("verifier rejected system: {e}")),
                };
                let r = v.run(EngineId::SimplifiedReach);
                match (unsafe_at, r.verdict) {
                    (Some(k), verdict) if verdict != Verdict::Unsafe => {
                        return OracleOutcome::Fail(format!(
                            "Unsafe under unroll depth {k} became {verdict} at \
                             depth {depth}: unrolling deeper only adds behaviours"
                        ));
                    }
                    (None, Verdict::Unsafe) => unsafe_at = Some(depth),
                    _ => {}
                }
            }
        }
        OracleOutcome::Pass
    }
}

// ---------------------------------------------------------------------
// 6. Indexed evaluator ≡ naive reference
// ---------------------------------------------------------------------

/// The indexed, interned Datalog evaluator and the unindexed naive
/// reference are two implementations of the same least-model semantics:
/// on every `makeP` query they must compute *identical* atom sets and
/// agree on the goal. This is the differential pin for the evaluation
/// substrate (tuple arena, join indices, join planner, parallel delta
/// batches) — an index bug shows up here as a concrete missing or extra
/// atom long before it skews a verdict.
pub struct EvalAgree;

/// Guesses checked per system (full-database comparison is quadratic in
/// fleet size, so a prefix keeps the oracle's case rate useful).
const EVAL_AGREE_MAX_GUESSES: usize = 4;

impl Oracle for EvalAgree {
    fn name(&self) -> &'static str {
        "eval-agree"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::agreement()
    }

    fn cases_per_second(&self) -> u64 {
        20
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        if sys.dom.size() < 2 {
            return OracleOutcome::Skip("goal transformation needs |Dom| >= 2".into());
        }
        // Resolve the goal message exactly as `Equivalence` does.
        let (sys, goal_var, goal_val) =
            if sys.env.com().has_assert() || sys.dis.iter().any(|p| p.com().has_assert()) {
                let g = transform::assert_to_goal(sys);
                (g.system, g.goal_var, g.goal_val)
            } else if let Some(i) = sys.vars.lookup("goal") {
                (sys.clone(), parra_program::ident::VarId(i), Val(1))
            } else {
                return OracleOutcome::Skip("no assert and no `goal` variable to target".into());
            };
        let budget = match Budget::exact(&sys) {
            Some(b) => b,
            None => return OracleOutcome::Skip("dis threads have loops (no exact budget)".into()),
        };
        let mk = match MakeP::new(&sys, budget, MakePLimits::default()) {
            Ok(mk) => mk,
            Err(e) => return OracleOutcome::Skip(format!("makeP not applicable: {e}")),
        };
        let guesses = match mk.guesses() {
            Ok(g) => g,
            Err(e) => return OracleOutcome::Skip(format!("guess enumeration failed: {e}")),
        };
        let target = DatalogTarget::MessageGenerated(goal_var, goal_val);
        for (gi, guess) in guesses.iter().take(EVAL_AGREE_MAX_GUESSES).enumerate() {
            let (prog, goal) = mk.program(guess, target);
            // Full least models (no early exit), so the comparison covers
            // every derivation path, not just the goal cone.
            let fast = Evaluator::new(&prog).run();
            let slow = NaiveEvaluator::new(&prog).run();
            let fast_set: std::collections::HashSet<_> = fast.iter().collect();
            let slow_set: std::collections::HashSet<_> = slow.atoms().iter().cloned().collect();
            if fast_set != slow_set {
                let missing = slow_set.difference(&fast_set).next();
                let extra = fast_set.difference(&slow_set).next();
                return OracleOutcome::Fail(format!(
                    "guess {gi}: indexed evaluator derived {} atoms, naive reference \
                     {}; first missing: {}; first extra: {}",
                    fast_set.len(),
                    slow_set.len(),
                    missing.map_or("none".into(), |a| prog.display_ground(a)),
                    extra.map_or("none".into(), |a| prog.display_ground(a)),
                ));
            }
            if fast.contains(&goal) != slow.contains(&goal) {
                return OracleOutcome::Fail(format!(
                    "guess {gi}: evaluators disagree on the goal {}",
                    prog.display_ground(&goal)
                ));
            }
        }
        OracleOutcome::Pass
    }
}

// ---------------------------------------------------------------------
// 7. Serve protocol totality and parity
// ---------------------------------------------------------------------

/// The serve protocol is *total*: every frame thrown at a daemon —
/// well-formed, truncated, version-skewed, type-mangled, oversized, or
/// plain garbage — must yield exactly one parseable structured response
/// with a stable error code, never a hang, a crash, or a poisoned
/// daemon; and after the whole barrage, a well-formed verify of the
/// generated system must return the same verdict as a direct
/// [`Verifier`] run.
pub struct ServeRoundTrip;

impl Oracle for ServeRoundTrip {
    fn name(&self) -> &'static str {
        "serve-roundtrip"
    }

    fn gen_config(&self) -> GenConfig {
        GenConfig::agreement()
    }

    fn cases_per_second(&self) -> u64 {
        5
    }

    fn check(&self, sys: &ParamSystem) -> OracleOutcome {
        use parra_obs::json::{self, Value};
        use parra_serve::proto::MAX_FRAME_BYTES;
        use parra_serve::{ServeConfig, Server};

        let options = VerifierOptions {
            threads: 1,
            ..Default::default()
        };
        let server = Server::new(ServeConfig {
            options: options.clone(),
            ..Default::default()
        });

        // The well-formed frame: the pretty-printed system as an inline
        // `program` request (with the same unrolling fallback as every
        // other oracle's `verifier_for`).
        let printed = pretty::system_to_string(sys);
        let needs_unroll = matches!(
            Verifier::new(sys, options.clone()),
            Err(VerifierError::NeedsUnrolling)
        );
        let mut request = String::from(r#"{"proto":1,"id":"rt","type":"verify","program":"#);
        json::write_escaped(&mut request, &printed);
        if needs_unroll {
            request.push_str(r#","unroll":2"#);
        }
        request.push('}');

        // Mangled frames derived from the request. Each must produce one
        // parseable error response carrying the expected stable code.
        let mangled: Vec<(String, &str)> = vec![
            // Truncated JSON: a proper prefix of an object never balances.
            (request[..request.len() / 2].to_string(), "malformed"),
            // A protocol version this daemon does not speak.
            (
                request.replacen(r#""proto":1"#, r#""proto":99"#, 1),
                "unsupported-version",
            ),
            // An unknown request type.
            (
                request.replacen(r#""type":"verify""#, r#""type":"verify-fast""#, 1),
                "unknown-type",
            ),
            // A verify with no source at all.
            (
                r#"{"proto":1,"id":"rt","type":"verify"}"#.to_string(),
                "bad-field",
            ),
            // The raw program text is not JSON.
            (printed.clone(), "malformed"),
            // A frame past the size cap is rejected before parsing.
            (
                format!(
                    r#"{{"proto":1,"type":"verify","litmus":"{}"}}"#,
                    "x".repeat(MAX_FRAME_BYTES)
                ),
                "oversized",
            ),
        ];
        for (frame, want) in &mangled {
            let resp = match server.process_line(frame) {
                Some(r) => r,
                None => return OracleOutcome::Fail(format!("no response to a `{want}` frame")),
            };
            let v = match json::parse(&resp) {
                Ok(v) => v,
                Err(e) => {
                    return OracleOutcome::Fail(format!(
                        "`{want}` response is not valid JSON ({e}): {resp}"
                    ))
                }
            };
            if v.get("type").and_then(Value::as_str) != Some("error")
                || v.get("code").and_then(Value::as_str) != Some(want)
            {
                return OracleOutcome::Fail(format!("expected an `{want}` error, got: {resp}"));
            }
        }

        // The daemon must still answer the well-formed frame — and agree
        // with a direct run of the same system.
        let resp = match server.process_line(&request) {
            Some(r) => r,
            None => return OracleOutcome::Fail("no response to the well-formed frame".into()),
        };
        let v = match json::parse(&resp) {
            Ok(v) => v,
            Err(e) => {
                return OracleOutcome::Fail(format!(
                    "serve response is not valid JSON ({e}): {resp}"
                ))
            }
        };
        let direct = match verifier_for(sys, options) {
            Ok(d) => d,
            Err(skip) => {
                // Outside the verifier's preconditions: serve must reject
                // it with a structured error, never a hang or a verdict.
                return if v.get("type").and_then(Value::as_str) == Some("error") {
                    skip
                } else {
                    OracleOutcome::Fail(format!(
                        "direct verifier rejects the system but serve answered: {resp}"
                    ))
                };
            }
        };
        let want = direct.run(EngineId::SimplifiedReach).verdict.to_string();
        match v.get("verdict").and_then(Value::as_str) {
            Some(got) if got == want => OracleOutcome::Pass,
            Some(got) => OracleOutcome::Fail(format!(
                "served verdict {got} but the direct run says {want}"
            )),
            None => OracleOutcome::Fail(format!("no verdict in serve response: {resp}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SystemGen;
    use parra_program::builder::SystemBuilder;
    use parra_program::expr::Expr;

    fn handshake(unsafe_variant: bool) -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, Expr::val(1));
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        if unsafe_variant {
            d.store(y, Expr::val(1));
        }
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn oracle_registry_is_complete_and_named() {
        let names: Vec<_> = all_oracles().iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            vec![
                "engines-agree",
                "equivalence",
                "thread-determinism",
                "round-trip",
                "monotonicity",
                "eval-agree",
                "serve-roundtrip"
            ]
        );
        for n in names {
            assert!(oracle_by_name(n).is_some());
        }
        assert!(oracle_by_name("nope").is_none());
    }

    #[test]
    fn all_oracles_pass_on_the_handshake() {
        for unsafe_variant in [false, true] {
            let sys = handshake(unsafe_variant);
            for o in all_oracles() {
                assert_eq!(
                    o.check(&sys),
                    OracleOutcome::Pass,
                    "oracle {} on handshake(unsafe={unsafe_variant})",
                    o.name()
                );
            }
        }
    }

    #[test]
    fn oracles_pass_on_their_own_families() {
        for o in all_oracles() {
            let gen = SystemGen::new(o.gen_config());
            let mut checked = 0;
            for seed in 0..8u64 {
                match o.check(&gen.case(seed).sys) {
                    OracleOutcome::Pass => checked += 1,
                    OracleOutcome::Skip(_) => {}
                    OracleOutcome::Fail(msg) => {
                        panic!("oracle {} failed on seed {seed}: {msg}", o.name())
                    }
                }
            }
            assert!(checked > 0, "oracle {} skipped every seed", o.name());
        }
    }

    #[test]
    fn undecidable_systems_are_skipped_not_failed() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1).assert_false();
        let env = env.finish();
        let sys = b.build(env, vec![]);
        for o in all_oracles() {
            if o.name() == "round-trip" {
                continue; // round-trip has no decidability precondition
            }
            assert!(
                matches!(o.check(&sys), OracleOutcome::Skip(_)),
                "oracle {} should skip an undecidable system",
                o.name()
            );
        }
    }
}
