//! Abstract messages with provenance.

use crate::timestamp::ATime;
use crate::view::AView;
use parra_program::ident::VarId;
use parra_program::value::Val;
use std::fmt;

/// Who generated a message — the asymmetry at the heart of the timestamp
/// abstraction (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// One of the initial messages (timestamp `Int(0)`).
    Init,
    /// Stored by a distinguished thread (integer slot).
    Dis,
    /// Stored by an environment thread (gap timestamp `ts⁺`).
    Env,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Init => "init",
            Origin::Dis => "dis",
            Origin::Env => "env",
        };
        f.write_str(s)
    }
}

/// An abstract message `(x, d, vw^de)` with provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AMessage {
    /// The variable written.
    pub var: VarId,
    /// The value written.
    pub val: Val,
    /// The abstract view; `view.get(var)` is the message's timestamp.
    pub view: AView,
    /// Who generated it.
    pub origin: Origin,
}

impl AMessage {
    /// Creates a message, checking the timestamp/provenance invariant:
    /// `env` messages carry gap timestamps, `dis` messages non-zero integer
    /// slots, `init` messages timestamp zero.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated.
    pub fn new(var: VarId, val: Val, view: AView, origin: Origin) -> AMessage {
        let ts = view.get(var);
        match origin {
            Origin::Init => assert!(ts.is_zero(), "init message with timestamp {ts}"),
            Origin::Dis => assert!(
                !ts.is_plus() && !ts.is_zero(),
                "dis message with timestamp {ts}"
            ),
            Origin::Env => assert!(ts.is_plus(), "env message with timestamp {ts}"),
        }
        AMessage {
            var,
            val,
            view,
            origin,
        }
    }

    /// The initial message for `x`.
    pub fn initial(x: VarId, n_vars: usize) -> AMessage {
        AMessage::new(x, Val::INIT, AView::zero(n_vars), Origin::Init)
    }

    /// The message's abstract timestamp.
    pub fn timestamp(&self) -> ATime {
        self.view.get(self.var)
    }
}

impl fmt::Display for AMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}, {} :{}]",
            self.var, self.val, self.view, self.origin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_message_shape() {
        let m = AMessage::initial(VarId(1), 3);
        assert_eq!(m.timestamp(), ATime::ZERO);
        assert_eq!(m.origin, Origin::Init);
        assert_eq!(m.val, Val::INIT);
    }

    #[test]
    fn env_messages_live_in_gaps() {
        let view = AView::zero(2).with(VarId(0), ATime::Plus(1));
        let m = AMessage::new(VarId(0), Val(1), view, Origin::Env);
        assert_eq!(m.timestamp(), ATime::Plus(1));
    }

    #[test]
    #[should_panic(expected = "env message with timestamp")]
    fn env_message_with_slot_timestamp_rejected() {
        let view = AView::zero(1).with(VarId(0), ATime::Int(1));
        AMessage::new(VarId(0), Val(1), view, Origin::Env);
    }

    #[test]
    #[should_panic(expected = "dis message with timestamp")]
    fn dis_message_with_gap_timestamp_rejected() {
        let view = AView::zero(1).with(VarId(0), ATime::Plus(1));
        AMessage::new(VarId(0), Val(1), view, Origin::Dis);
    }

    #[test]
    #[should_panic(expected = "init message with timestamp")]
    fn init_message_with_nonzero_timestamp_rejected() {
        let view = AView::zero(1).with(VarId(0), ATime::Int(2));
        AMessage::new(VarId(0), Val(0), view, Origin::Init);
    }

    #[test]
    fn display() {
        let m = AMessage::initial(VarId(0), 1);
        assert_eq!(m.to_string(), "[x0, 0, ⟨0⟩ :init]");
    }
}
