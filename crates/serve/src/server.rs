//! The serve engine: request execution over shared warm caches, behind
//! an admission gate, with per-request isolation.
//!
//! [`Server`] is transport-agnostic — [`Server::process_line`] maps one
//! request line to one response line, and [`Server::handle_stream`] runs
//! that loop over any `BufRead`/`Write` pair. The `parra serve` binary
//! wires it to a Unix socket and `--stdio`; the tests, the
//! `serve-roundtrip` fuzz oracle, and `bench_serve` drive it in-process.
//!
//! ## Execution contract
//!
//! * **Warm caches.** All requests share one [`VerifierCache`] (prepared
//!   verifiers keyed on canonical program text + options fingerprint) and
//!   one [`SharedPlanCache`] (Datalog query plans). A warm request skips
//!   classify/unroll/goal-transform and planning entirely: its reports
//!   carry no `plan` phase. Neither cache can change a verdict, a note,
//!   or a deterministic event field — that is the serve/CLI parity
//!   contract `tests/serve_parity.rs` enforces.
//! * **Admission.** Each request takes an [`AdmissionGate`] permit
//!   before touching a verifier; at capacity (queue depth, or the live
//!   heap watermark when the binary's tracking allocator is installed)
//!   the request is rejected with a structured `overloaded` error and
//!   zero effect on admitted work.
//! * **Budgets anchor at admission.** A request's `timeout_ms` (or the
//!   daemon default timeout) becomes an absolute deadline at the moment
//!   the permit is granted — never at daemon start or config parse.
//! * **Isolation.** Engines run through the portfolio's panic-contained
//!   paths (`run_isolated` / race-job containment) under a per-request
//!   [`CancelToken`]; anything that still unwinds is caught here and
//!   degraded to an `error` response. The daemon answers the next
//!   request normally either way.
//!
//! ## Test hooks
//!
//! The daemon honors the workspace's standard fault-injection variables,
//! matched against the request *name* (the `file` attribution field):
//! `PARRA_INJECT_PANIC` panics inside the first selected engine,
//! `PARRA_INJECT_DEADLINE` admits the request with an already-spent
//! deadline, and `PARRA_SERVE_INJECT_STALL` holds the admission permit
//! for a beat before running — how the overload tests fill the queue
//! deterministically.

use crate::proto::{self, ErrorCode, ProtoError, Request, Source, VerifyRequest, PROTO_VERSION};
use parra_core::verify::{EngineId, SharedPlanCache, Verifier, VerifierOptions};
use parra_core::VerifierCache;
use parra_limits::{AdmissionGate, CancelToken};
use parra_obs::json::ObjWriter;
use parra_obs::{Level, Recorder};
use parra_program::parser::parse_system;
use parra_program::system::ParamSystem;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long [`Server::handle_stream`] lets a `PARRA_SERVE_INJECT_STALL`
/// request hold its permit before running (long enough for a test's
/// overload burst to arrive, short enough not to slow the suite).
const INJECT_STALL: Duration = Duration::from_millis(400);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Default verifier options for requests that do not override them.
    /// `timeout` here is the per-request default window (anchored at
    /// each request's admission, despite being a plain duration).
    pub options: VerifierOptions,
    /// Default engine selection label (`simplified-reach`, …,
    /// `all-engines`, `race`).
    pub engine: String,
    /// Max admitted-but-unfinished requests (the admission queue depth).
    pub max_in_flight: usize,
    /// Reject new work once live heap reaches this many bytes (enforced
    /// only under the binary's tracking allocator).
    pub memory_watermark: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            options: VerifierOptions::default(),
            engine: EngineId::SimplifiedReach.to_string(),
            max_in_flight: 64,
            memory_watermark: None,
        }
    }
}

/// Parses an engine selection label (the serve-side mirror of the CLI's
/// `--engine`/`--all-engines`/`--race` resolution).
pub fn selection_from_label(label: &str) -> Result<(Vec<EngineId>, bool), String> {
    match label {
        "race" => Ok((EngineId::ALL.to_vec(), true)),
        "all-engines" => Ok((EngineId::ALL.to_vec(), false)),
        single => EngineId::ALL
            .iter()
            .find(|e| e.to_string() == single)
            .map(|&e| (vec![e], false))
            .ok_or_else(|| {
                format!("unknown engine label `{single}` (expected an engine name, all-engines, or race)")
            }),
    }
}

/// The long-lived verification service. See the module docs for the
/// execution contract.
pub struct Server {
    cfg: ServeConfig,
    gate: AdmissionGate,
    verifiers: VerifierCache,
    plans: SharedPlanCache,
    served: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    shutdown: AtomicBool,
    events: Option<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("cfg", &self.cfg)
            .field("verifiers", &self.verifiers)
            .field("served", &self.served.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// A fresh server with empty caches.
    pub fn new(cfg: ServeConfig) -> Server {
        let gate = AdmissionGate::new(cfg.max_in_flight, cfg.memory_watermark);
        Server {
            cfg,
            gate,
            verifiers: VerifierCache::new(),
            plans: SharedPlanCache::new(),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            events: None,
        }
    }

    /// Attaches an event sink: every request is then recorded and its
    /// flight-recorder events (with a `file` attribution extra carrying
    /// the request name) are appended to the sink — the stream `parra
    /// report` ingests.
    pub fn with_events_sink(mut self, sink: Box<dyn Write + Send>) -> Server {
        self.events = Some(Mutex::new(sink));
        self
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests answered with a `result`/`batch` response so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The admission gate (shared with every connection handler clone).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The prepared-verifier cache counters, `(hits, misses)`.
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.verifiers.hits(), self.verifiers.misses())
    }

    /// Maps one request line to one response line. Blank lines map to
    /// `None`; everything else — including unparseable garbage — gets
    /// exactly one structured response, and this function never panics.
    pub fn process_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let request = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Some(proto::error_response(&e));
            }
        };
        let response = match request {
            Request::Status { id } => self.status_response(&id),
            Request::Shutdown { id } => {
                self.shutdown.store(true, Ordering::Release);
                let mut w = ObjWriter::new();
                w.num_field("proto", PROTO_VERSION);
                w.str_field("id", &id);
                w.str_field("type", "ok");
                w.finish()
            }
            Request::Verify(req) => self.contained(&req.id, || {
                let mut w = ObjWriter::new();
                w.num_field("proto", PROTO_VERSION);
                w.str_field("id", &req.id);
                match self.admit_and_run(&req) {
                    Ok(render) => {
                        w.str_field("type", "result");
                        render(&mut w);
                        self.served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        w.str_field("type", "error");
                        w.str_field("code", e.code.as_str());
                        w.str_field("error", &e.message);
                        w.str_field("file", &req.name);
                    }
                }
                w.finish()
            }),
            Request::Batch { id, items } => self.contained(&id, || {
                let mut w = ObjWriter::new();
                w.num_field("proto", PROTO_VERSION);
                w.str_field("id", &id);
                w.str_field("type", "batch");
                let results: Vec<String> = items
                    .iter()
                    .map(|item| {
                        let mut one = ObjWriter::new();
                        match self.admit_and_run(item) {
                            Ok(render) => {
                                render(&mut one);
                                self.served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                self.errors.fetch_add(1, Ordering::Relaxed);
                                one.str_field("code", e.code.as_str());
                                one.str_field("error", &e.message);
                                one.str_field("file", &item.name);
                            }
                        }
                        one.finish()
                    })
                    .collect();
                w.raw_field("results", &format!("[{}]", results.join(",")));
                w.finish()
            }),
        };
        Some(response)
    }

    /// Runs the request/response loop over a stream until EOF or
    /// shutdown: one response line per request line, flushed eagerly.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors (a vanished peer); protocol
    /// problems are answered in-band, never surfaced here.
    pub fn handle_stream<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if let Some(response) = self.process_line(&line) {
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            if self.is_shutdown() {
                break;
            }
        }
        Ok(())
    }

    /// Last-resort panic containment around a whole request: the
    /// engine-level paths already degrade panics to `Unknown` verdicts,
    /// so anything reaching this catch is a daemon bug — answered as a
    /// structured error so the daemon (and the connection) live on.
    fn contained(&self, id: &str, f: impl FnOnce() -> String) -> String {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(response) => response,
            Err(_) => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                proto::error_response(&ProtoError {
                    code: ErrorCode::BadProgram,
                    message: "request processing panicked; verdict unavailable".into(),
                    id: Some(id.to_string()),
                })
            }
        }
    }

    fn status_response(&self, id: &str) -> String {
        let mut w = ObjWriter::new();
        w.num_field("proto", PROTO_VERSION);
        w.str_field("id", id);
        w.str_field("type", "status");
        w.num_field("capacity", self.gate.capacity() as u64);
        let (hits, misses) = self.cache_counters();
        let mut vol = ObjWriter::new();
        vol.num_field("served", self.served.load(Ordering::Relaxed));
        vol.num_field("errors", self.errors.load(Ordering::Relaxed));
        vol.num_field("panics", self.panics.load(Ordering::Relaxed));
        vol.num_field("admitted", self.gate.admitted());
        vol.num_field("rejected", self.gate.rejected());
        vol.num_field("in_flight", self.gate.in_flight() as u64);
        vol.num_field("cache_hits", hits);
        vol.num_field("cache_misses", misses);
        w.raw_field("volatile", &vol.finish());
        w.finish()
    }

    fn resolve_system(&self, req: &VerifyRequest) -> Result<ParamSystem, ProtoError> {
        match &req.source {
            Source::Litmus(name) => {
                parra_litmus::by_name(name)
                    .map(|b| b.system)
                    .ok_or_else(|| ProtoError {
                        code: ErrorCode::BadField,
                        message: format!("unknown litmus benchmark `{name}`"),
                        id: Some(req.id.clone()),
                    })
            }
            Source::Program(text) => parse_system(text).map_err(|e| ProtoError {
                code: ErrorCode::BadProgram,
                message: e.to_string(),
                id: Some(req.id.clone()),
            }),
        }
    }

    /// Admits and executes one verify request. Returns a closure that
    /// writes the result fields (everything after `type`) so the caller
    /// can embed them in a top-level response or a batch item alike.
    #[allow(clippy::type_complexity)]
    fn admit_and_run(
        &self,
        req: &VerifyRequest,
    ) -> Result<Box<dyn FnOnce(&mut ObjWriter)>, ProtoError> {
        let label = req
            .engine
            .clone()
            .unwrap_or_else(|| self.cfg.engine.clone());
        let (engines, race) = selection_from_label(&label).map_err(|message| ProtoError {
            code: ErrorCode::BadField,
            message,
            id: Some(req.id.clone()),
        })?;
        let sys = self.resolve_system(req)?;

        // Admission: the permit is held (and the deadline window opens)
        // from here until the response is assembled.
        let _permit = self.gate.try_admit().map_err(|reason| ProtoError {
            code: ErrorCode::Overloaded,
            message: reason.to_string(),
            id: Some(req.id.clone()),
        })?;
        let admitted = Instant::now();
        if env_needle_matches("PARRA_SERVE_INJECT_STALL", &req.name) {
            std::thread::sleep(INJECT_STALL);
        }

        let mut options = self.cfg.options.clone();
        if let Some(t) = req.threads {
            options.threads = t.max(1);
        }
        if let Some(u) = req.unroll {
            options.unroll_dis = Some(u);
        }
        if let Some(m) = req.memory {
            options.memory_budget = Some(m);
        }
        // The request window (explicit or the daemon default) anchors at
        // admission; the relative `timeout` is cleared so nothing
        // re-anchors it at run time.
        let window = req
            .timeout_ms
            .map(Duration::from_millis)
            .or(options.timeout);
        options.timeout = None;
        options.deadline_at = window.map(|d| admitted + d);
        if env_needle_matches("PARRA_INJECT_DEADLINE", &req.name) {
            options.deadline_at = Some(admitted);
        }
        if env_needle_matches("PARRA_INJECT_PANIC", &req.name) {
            options.fail_point_panic = Some(engines[0]);
        }
        options.cancel = CancelToken::new();
        options.plan_cache = Some(self.plans.clone());

        let rec = if self.events.is_some() {
            Recorder::enabled(Level::Summary)
        } else {
            Recorder::disabled()
        };
        let (verifier, cached) = self
            .verifiers
            .get_or_prepare(&sys, options, rec.clone())
            .map_err(|e| ProtoError {
                code: ErrorCode::BadProgram,
                message: e.to_string(),
                id: Some(req.id.clone()),
            })?;
        let sel = run_selection_for(&verifier, &engines, race).map_err(|message| ProtoError {
            code: ErrorCode::Disagreement,
            message,
            id: Some(req.id.clone()),
        })?;
        let duration_us = admitted.elapsed().as_micros() as u64;

        if let Some(sink) = &self.events {
            let rendered = rec.render_events_jsonl(&[("file", &req.name)]);
            let mut sink = sink.lock().expect("events sink poisoned");
            let _ = sink.write_all(rendered.as_bytes());
            let _ = sink.flush();
        }

        let name = req.name.clone();
        let in_flight = self.gate.in_flight() as u64;
        Ok(Box::new(move |w: &mut ObjWriter| {
            w.str_field("file", &name);
            w.str_field("engine", &label);
            w.str_field("verdict", &sel.verdict.to_string());
            // Mirror `parra batch`: a decided verdict nulls the
            // interruption (some losing engine may still have been cut).
            match sel.interrupted {
                Some(r) if !sel.verdict.is_decided() => w.str_field("interrupted", r.as_str()),
                _ => w.raw_field("interrupted", "null"),
            }
            w.raw_field("error", "null");
            let reports: Vec<String> = sel.results.iter().map(|r| r.report.to_json()).collect();
            w.raw_field("reports", &format!("[{}]", reports.join(",")));
            let mut vol = ObjWriter::new();
            vol.num_field("cached", u64::from(cached));
            vol.num_field("duration_us", duration_us);
            vol.num_field("in_flight", in_flight);
            w.raw_field("volatile", &vol.finish());
        }))
    }
}

/// Runs the selection through the portfolio's isolated paths (shared
/// with `parra verify`): sequential selections via `run_isolated`, races
/// via `race()` — both panic-contained per engine.
fn run_selection_for(
    verifier: &Verifier,
    engines: &[EngineId],
    race: bool,
) -> Result<parra_core::SelectionOutcome, String> {
    verifier.run_selection(engines, race)
}

fn env_needle_matches(var: &str, name: &str) -> bool {
    match std::env::var(var) {
        Ok(needle) => !needle.is_empty() && name.contains(&needle),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_obs::json::{self, Value};

    fn server() -> Server {
        Server::new(ServeConfig {
            options: VerifierOptions {
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn verdict_of(response: &str) -> String {
        let v = json::parse(response).expect("response parses");
        v.get("verdict")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("no verdict in {response}"))
            .to_string()
    }

    #[test]
    fn litmus_request_round_trips_and_warms_the_cache() {
        let s = server();
        let line = r#"{"proto":1,"type":"verify","id":"a","litmus":"mp"}"#;
        let cold = s.process_line(line).expect("response");
        assert_eq!(verdict_of(&cold), "SAFE");
        let warm = s.process_line(line).expect("response");
        assert_eq!(verdict_of(&warm), "SAFE");
        assert_eq!(s.cache_counters(), (1, 1));
        // Identical modulo the volatile section (cached flag, timing).
        assert_eq!(
            proto::canonical_response(&cold).unwrap(),
            proto::canonical_response(&warm).unwrap()
        );
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn garbage_gets_a_structured_error_and_the_daemon_lives_on() {
        let s = server();
        for bad in [
            "garbage",
            r#"{"proto":1,"type":"verify","id":"x","litmus":"no-such-benchmark"}"#,
            r#"{"proto":1,"type":"verify","id":"y","program":"this is not a program"}"#,
            r#"{"proto":7,"type":"verify"}"#,
        ] {
            let resp = s.process_line(bad).expect("response");
            let v = json::parse(&resp).expect("error response parses");
            assert_eq!(v.get("type").and_then(Value::as_str), Some("error"));
            assert!(v.get("code").and_then(Value::as_str).is_some());
        }
        // Still healthy afterwards.
        let ok = s
            .process_line(r#"{"proto":1,"type":"verify","id":"z","litmus":"sb"}"#)
            .expect("response");
        assert_eq!(verdict_of(&ok), "UNSAFE");
    }

    #[test]
    fn batch_and_status_and_shutdown() {
        let s = server();
        let resp = s
            .process_line(
                r#"{"proto":1,"type":"batch","id":"b","items":[{"litmus":"mp"},{"litmus":"sb"},{"litmus":"no-such"}]}"#,
            )
            .expect("response");
        let v = json::parse(&resp).expect("batch response parses");
        let results = v.get("results").and_then(Value::as_arr).expect("results");
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].get("verdict").and_then(Value::as_str),
            Some("SAFE")
        );
        assert_eq!(
            results[1].get("verdict").and_then(Value::as_str),
            Some("UNSAFE")
        );
        assert_eq!(
            results[2].get("code").and_then(Value::as_str),
            Some("bad-field")
        );

        let status = s
            .process_line(r#"{"proto":1,"type":"status","id":"s"}"#)
            .expect("response");
        let v = json::parse(&status).expect("status parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("status"));

        assert!(!s.is_shutdown());
        let bye = s
            .process_line(r#"{"proto":1,"type":"shutdown","id":"q"}"#)
            .expect("response");
        assert!(json::parse(&bye).is_ok());
        assert!(s.is_shutdown());
    }

    #[test]
    fn handle_stream_answers_every_line_in_order() {
        let s = server();
        let input = concat!(
            r#"{"proto":1,"type":"verify","id":"1","litmus":"mp"}"#,
            "\n\n",
            "garbage\n",
            r#"{"proto":1,"type":"shutdown","id":"2"}"#,
            "\n",
            r#"{"proto":1,"type":"verify","id":"never","litmus":"rcu"}"#,
            "\n",
        );
        let mut out = Vec::new();
        s.handle_stream(input.as_bytes(), &mut out).expect("stream");
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // verify + garbage error + shutdown ack; the post-shutdown
        // request is never read.
        assert_eq!(lines.len(), 3, "got: {out}");
        let ids: Vec<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .expect("line parses")
                    .get("id")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string()
            })
            .collect();
        assert_eq!(ids, ["1", "", "2"]);
    }

    #[test]
    fn admission_rejects_when_full_without_touching_served_work() {
        let s = Server::new(ServeConfig {
            max_in_flight: 1,
            options: VerifierOptions {
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let _held = s.gate().try_admit().expect("fill the only slot");
        let resp = s
            .process_line(r#"{"proto":1,"type":"verify","id":"o","litmus":"rcu"}"#)
            .expect("response");
        let v = json::parse(&resp).expect("parses");
        assert_eq!(v.get("code").and_then(Value::as_str), Some("overloaded"));
        drop(_held);
        let resp = s
            .process_line(r#"{"proto":1,"type":"verify","id":"o2","litmus":"mp"}"#)
            .expect("response");
        assert_eq!(verdict_of(&resp), "SAFE");
    }
}
