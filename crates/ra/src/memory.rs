//! Memory states `Mem = 2^Msgs`: the message pool.
//!
//! Messages are added by stores and remain in the pool forever. The pool is
//! a set; we keep it as a sorted, deduplicated vector so memories hash and
//! compare cheaply.

use crate::message::Message;
use crate::timestamp::Timestamp;
use parra_program::ident::VarId;
use std::fmt;

/// A memory state: a set of messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Memory {
    msgs: Vec<Message>, // sorted, deduplicated
}

impl Memory {
    /// The empty memory.
    pub fn empty() -> Memory {
        Memory::default()
    }

    /// The initial memory `Mem_init`: one message per variable with value
    /// `d_init` and the zero view.
    pub fn initial(n_vars: usize) -> Memory {
        let msgs = (0..n_vars)
            .map(|i| Message::initial(VarId(i as u32), n_vars))
            .collect();
        Memory { msgs }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Whether `msg` is in the pool.
    pub fn contains(&self, msg: &Message) -> bool {
        self.msgs.binary_search(msg).is_ok()
    }

    /// Inserts a message (idempotent).
    pub fn insert(&mut self, msg: Message) {
        if let Err(pos) = self.msgs.binary_search(&msg) {
            self.msgs.insert(pos, msg);
        }
    }

    /// Whether `msg` is non-conflicting with everything in the pool — the
    /// side condition `msg # m` of the ST-GLOBAL rule.
    pub fn admits(&self, msg: &Message) -> bool {
        self.msgs.iter().all(|m| m.non_conflicting(msg))
    }

    /// Whether every pair of messages across the two memories is
    /// non-conflicting (`m₁ # m₂`, Section 3.2).
    pub fn non_conflicting(&self, other: &Memory) -> bool {
        self.msgs
            .iter()
            .all(|a| other.msgs.iter().all(|b| a.non_conflicting(b)))
    }

    /// Set union (used by configuration addition `⊕`).
    pub fn union(&self, other: &Memory) -> Memory {
        let mut out = self.clone();
        for m in &other.msgs {
            out.insert(m.clone());
        }
        out
    }

    /// Iterates over all messages.
    pub fn iter(&self) -> impl Iterator<Item = &Message> {
        self.msgs.iter()
    }

    /// Iterates over the messages on variable `x`.
    pub fn on_var(&self, x: VarId) -> impl Iterator<Item = &Message> {
        self.msgs.iter().filter(move |m| m.var == x)
    }

    /// The message on `x` with timestamp `t`, if present. There is at most
    /// one in any memory reachable from `Mem_init` (conflicts are excluded
    /// by the store rule).
    pub fn at(&self, x: VarId, t: Timestamp) -> Option<&Message> {
        self.on_var(x).find(|m| m.timestamp() == t)
    }

    /// The maximal timestamp used on `x` (zero for untouched variables).
    pub fn max_timestamp(&self, x: VarId) -> Timestamp {
        self.on_var(x)
            .map(Message::timestamp)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// All messages in `self` that are not in `other`.
    pub fn difference(&self, other: &Memory) -> Vec<Message> {
        self.msgs
            .iter()
            .filter(|m| !other.contains(m))
            .cloned()
            .collect()
    }
}

impl FromIterator<Message> for Memory {
    fn from_iter<I: IntoIterator<Item = Message>>(iter: I) -> Self {
        let mut m = Memory::empty();
        for msg in iter {
            m.insert(msg);
        }
        m
    }
}

impl Extend<Message> for Memory {
    fn extend<I: IntoIterator<Item = Message>>(&mut self, iter: I) {
        for msg in iter {
            self.insert(msg);
        }
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.msgs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use parra_program::value::Val;

    fn msg(var: u32, val: u32, ts: &[u64]) -> Message {
        Message::new(
            VarId(var),
            Val(val),
            View::from_times(ts.iter().map(|&t| Timestamp(t)).collect()),
        )
    }

    #[test]
    fn initial_memory_has_one_message_per_var() {
        let m = Memory::initial(3);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            let x = VarId(i);
            assert_eq!(m.on_var(x).count(), 1);
            assert!(m.at(x, Timestamp::ZERO).unwrap().is_initial());
        }
    }

    #[test]
    fn insert_is_idempotent() {
        let mut m = Memory::empty();
        m.insert(msg(0, 1, &[1]));
        m.insert(msg(0, 1, &[1]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn admits_rejects_conflicts() {
        let mut m = Memory::initial(1);
        m.insert(msg(0, 1, &[4]));
        assert!(!m.admits(&msg(0, 2, &[4]))); // same var, same ts
        assert!(m.admits(&msg(0, 2, &[5])));
    }

    #[test]
    fn union_and_difference() {
        let a: Memory = [msg(0, 1, &[1]), msg(0, 2, &[2])].into_iter().collect();
        let b: Memory = [msg(0, 2, &[2]), msg(0, 3, &[3])].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(a.difference(&b), vec![msg(0, 1, &[1])]);
    }

    #[test]
    fn memory_non_conflict() {
        let a: Memory = [msg(0, 1, &[1])].into_iter().collect();
        let b: Memory = [msg(0, 2, &[1])].into_iter().collect();
        let c: Memory = [msg(0, 2, &[2])].into_iter().collect();
        assert!(!a.non_conflicting(&b));
        assert!(a.non_conflicting(&c));
    }

    #[test]
    fn max_timestamp() {
        let m: Memory = [msg(0, 1, &[1, 0]), msg(0, 2, &[5, 0]), msg(1, 1, &[0, 2])]
            .into_iter()
            .collect();
        assert_eq!(m.max_timestamp(VarId(0)), Timestamp(5));
        assert_eq!(m.max_timestamp(VarId(1)), Timestamp(2));
    }
}
