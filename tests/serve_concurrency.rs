//! Concurrent-client determinism: N clients hammering one daemon over a
//! Unix socket, with a deterministically shuffled litmus workload, must
//! get responses whose canonical projections are byte-identical to a
//! sequential single-client run of the same requests against a fresh
//! daemon. Interleaving, connection assignment, and cache temperature
//! are not allowed to leak into any deterministic response field.
//!
//! (Raced selections are excluded by construction: race-loser notes name
//! the wall-clock winner, so they are volatile. The campaign layer makes
//! the same exclusion for its canonical result comparison.)

use parra::obs::json::{self, Value};
use parra::serve::canonical_response;
use parra_litmus::all;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn sock_path(name: &str) -> String {
    format!("{}/{name}.sock", env!("CARGO_TARGET_TMPDIR"))
}

/// A spawned daemon killed on drop, so an assertion failure anywhere in
/// the test never leaks a live server holding the harness's pipes open.
struct Daemon {
    child: Option<Child>,
    sock: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns a socket daemon and waits until it accepts connections.
fn spawn_daemon(sock: &str, args: &[&str]) -> Daemon {
    let _ = std::fs::remove_file(sock);
    let child = Command::new(BIN)
        .args(["serve", "--socket", sock])
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn parra serve");
    let daemon = Daemon {
        child: Some(child),
        sock: sock.to_string(),
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if UnixStream::connect(sock).is_ok() {
            return daemon;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not open {sock} within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown_daemon(mut daemon: Daemon) {
    let mut child = daemon.child.take().expect("daemon still running");
    let stream = UnixStream::connect(&daemon.sock).expect("connect for shutdown");
    let mut w = stream.try_clone().unwrap();
    writeln!(w, r#"{{"proto":1,"type":"shutdown"}}"#).unwrap();
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).unwrap();
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exited {status}");
}

/// Sends requests over one connection and returns `id -> response`.
fn run_client(sock: &str, requests: &[(String, String)]) -> BTreeMap<String, String> {
    let stream = UnixStream::connect(sock).expect("client connects");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = BTreeMap::new();
    for (id, line) in requests {
        writeln!(writer, "{line}").expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("receive");
        assert!(!resp.trim().is_empty(), "daemon closed on request {id}");
        let v = json::parse(resp.trim()).expect("response parses");
        assert_eq!(
            v.get("id").and_then(Value::as_str),
            Some(id.as_str()),
            "response answers a different request"
        );
        responses.insert(id.clone(), resp.trim_end().to_string());
    }
    responses
}

/// The workload: every litmus benchmark twice (so both cache-cold and
/// cache-warm requests occur under contention), shuffled by an FNV-based
/// sort key so the order is arbitrary-looking but build-stable.
fn workload() -> Vec<(String, String)> {
    let mut keyed: Vec<(u64, String, String)> = Vec::new();
    for rep in 0..2u64 {
        for bench in all() {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in bench.name.bytes().chain([rep as u8]) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let id = format!("{}#{rep}", bench.name);
            let line = format!(
                r#"{{"proto":1,"id":"{id}","type":"verify","litmus":"{}"}}"#,
                bench.name
            );
            keyed.push((h, id, line));
        }
    }
    keyed.sort();
    keyed.into_iter().map(|(_, id, line)| (id, line)).collect()
}

#[test]
fn concurrent_clients_get_the_sequential_responses() {
    let work = workload();

    // Sequential baseline: one client, one fresh daemon, program order.
    let seq_sock = sock_path("serve_seq");
    let daemon = spawn_daemon(&seq_sock, &["--threads", "1"]);
    let sequential = run_client(&seq_sock, &work);
    shutdown_daemon(daemon);
    assert_eq!(sequential.len(), work.len());

    // Concurrent run: the same workload striped across 4 clients, each
    // on its own connection, submitting simultaneously.
    let conc_sock = sock_path("serve_conc");
    let daemon = spawn_daemon(&conc_sock, &["--threads", "1"]);
    let chunks: Vec<Vec<(String, String)>> = (0..4)
        .map(|c| work.iter().skip(c).step_by(4).cloned().collect::<Vec<_>>())
        .collect();
    let concurrent: BTreeMap<String, String> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let sock = conc_sock.clone();
                s.spawn(move || run_client(&sock, chunk))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    shutdown_daemon(daemon);
    assert_eq!(concurrent.len(), work.len());

    // Modulo the volatile section (timing, cache temperature, in-flight
    // depth), every response must be byte-identical across the runs.
    for (id, seq_resp) in &sequential {
        let conc_resp = &concurrent[id];
        assert_eq!(
            canonical_response(conc_resp).expect("concurrent response canonicalizes"),
            canonical_response(seq_resp).expect("sequential response canonicalizes"),
            "{id}: concurrent response diverged from the sequential run"
        );
    }
}
