//! Parallel search must be invisible in the reports: for every litmus
//! benchmark and both state-space engines, running with 1 and 4 worker
//! threads yields byte-identical verdicts, statistics, and witnesses.

use parra_core::verify::{EngineId, Verifier, VerifierOptions};
use parra_litmus::all;

fn options(threads: usize) -> VerifierOptions {
    VerifierOptions {
        threads,
        ..Default::default()
    }
}

#[test]
fn litmus_suite_reports_identical_across_thread_counts() {
    for bench in all() {
        let seq = Verifier::new(&bench.system, options(1))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let par = Verifier::new(&bench.system, options(4)).unwrap();
        for engine in [EngineId::SimplifiedReach, EngineId::BoundedConcrete] {
            let a = seq.run(engine);
            let b = par.run(engine);
            assert_eq!(a.verdict, b.verdict, "{} / {engine}", bench.name);
            assert_eq!(
                a.stats.states, b.stats.states,
                "{} / {engine}: state counts diverge",
                bench.name
            );
            assert_eq!(
                a.stats.worlds, b.stats.worlds,
                "{} / {engine}: world counts diverge",
                bench.name
            );
            assert_eq!(
                a.stats.peak_env_msgs, b.stats.peak_env_msgs,
                "{} / {engine}: peaks diverge",
                bench.name
            );
            assert_eq!(
                a.witness_lines, b.witness_lines,
                "{} / {engine}: witnesses diverge",
                bench.name
            );
            assert_eq!(
                a.env_thread_bound, b.env_thread_bound,
                "{} / {engine}: §4.3 bounds diverge",
                bench.name
            );
        }
    }
}
