//! Heavy fuzzing, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These widen the equivalence and engine-agreement sweeps by an order of
//! magnitude: larger domains, more variables, longer programs, more seeds.

use parra_core::verify::{Engine, Verdict, Verifier, VerifierOptions};
use parra_program::builder::SystemBuilder;
use parra_program::expr::Expr;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra_simplified::state::Budget;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, k: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((self.0 >> 33) as usize) % k.max(1)
    }
}

/// What the first dis thread ends with.
#[derive(Clone, Copy, PartialEq)]
enum Ending {
    /// Store `goal := 1` (for Message Generation targets).
    GoalStore,
    /// `assert false` (for the Verifier, which works on assertions).
    Assert,
}

#[allow(clippy::too_many_arguments)]
fn random_system(
    seed: u64,
    n_vars: u32,
    dom: u32,
    env_len: usize,
    dis_len: usize,
    n_dis: usize,
    allow_cas: bool,
    ending: Ending,
) -> (ParamSystem, VarId) {
    let mut rng = Lcg(seed);
    let mut b = SystemBuilder::new(dom);
    for i in 0..n_vars {
        b.var(&format!("v{i}"));
    }
    let goal = b.var("goal");
    let mut build = |name: &str, len: usize, cas: bool, is_first_dis: bool| {
        let mut p = b.program(name);
        let r0 = p.reg("r0");
        let r1 = p.reg("r1");
        for _ in 0..len {
            let x = VarId(rng.next(n_vars as usize) as u32);
            let reg = if rng.next(2) == 0 { r0 } else { r1 };
            match rng.next(if cas { 6 } else { 5 }) {
                0 => {
                    p.load(reg, x);
                }
                1 => {
                    p.store(x, Expr::val(rng.next(dom as usize) as u32));
                }
                2 => {
                    p.assume(Expr::reg(reg).eq(Expr::val(rng.next(dom as usize) as u32)));
                }
                3 => {
                    p.store(x, Expr::reg(reg));
                }
                4 => {
                    p.assign(reg, Expr::val(rng.next(dom as usize) as u32));
                }
                _ => {
                    let v1 = rng.next(dom as usize) as u32;
                    let v2 = rng.next(dom as usize) as u32;
                    p.cas(x, Expr::val(v1), Expr::val(v2));
                }
            }
        }
        if is_first_dis {
            match ending {
                Ending::GoalStore => {
                    p.store(goal, Expr::val(1));
                }
                Ending::Assert => {
                    p.assert_false();
                }
            }
        }
        p.finish()
    };
    let env = build("env", env_len, false, false);
    let dis: Vec<_> = (0..n_dis)
        .map(|i| build(&format!("d{i}"), dis_len, allow_cas, i == 0))
        .collect();
    (b.build(env, dis), goal)
}

/// Theorem 3.4 equivalence on 400 larger random systems.
#[test]
#[ignore]
fn equivalence_wide_sweep() {
    for seed in 0..400u64 {
        let (sys, goal) = random_system(seed, 3, 3, 4, 3, 1, true, Ending::GoalStore);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys.clone(), budget, ReachLimits::default()).unwrap();
        let simp = engine.run(SimpTarget::MessageGenerated(goal, Val(1)));
        assert_ne!(simp.outcome, ReachOutcome::Truncated, "seed {seed}");

        let mut concrete_hit = false;
        for n_env in 0..=3 {
            let rep = Explorer::new(
                Instance::new(sys.clone(), n_env),
                ExploreLimits {
                    max_depth: 36,
                    max_states: 300_000,
                },
            )
            .run(Target::MessageGenerated(goal, Val(1)));
            if rep.outcome == ExploreOutcome::Unsafe {
                concrete_hit = true;
                break;
            }
        }
        if concrete_hit {
            assert_eq!(
                simp.outcome,
                ReachOutcome::Unsafe,
                "seed {seed}: completeness violation\n{}",
                parra_program::pretty::system_to_string(&sys)
            );
        }
    }
}

/// Engine agreement on 150 random systems with two dis threads.
#[test]
#[ignore]
fn engine_agreement_wide_sweep() {
    for seed in 0..150u64 {
        let (sys, _) = random_system(40_000 + seed, 2, 2, 3, 2, 2, true, Ending::Assert);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r1 = v.run(Engine::SimplifiedReach);
        let r2 = v.run(Engine::CacheDatalog);
        assert_eq!(
            r1.verdict,
            r2.verdict,
            "seed {seed}: engines disagree\n{}",
            parra_program::pretty::system_to_string(&sys)
        );
        assert_ne!(r1.verdict, Verdict::Unknown, "seed {seed}");
    }
}

/// Every abstract bug found on the random family concretizes within the
/// §4.3 bound (soundness, executable).
#[test]
#[ignore]
fn concretization_wide_sweep() {
    let mut checked = 0;
    for seed in 0..200u64 {
        let (sys, _) = random_system(80_000 + seed, 2, 2, 3, 3, 1, false, Ending::Assert);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(Engine::SimplifiedReach);
        if r.verdict == Verdict::Unsafe {
            checked += 1;
            assert!(
                v.concretize(&r, 5).is_some(),
                "seed {seed}: abstract bug did not concretize\n{}",
                parra_program::pretty::system_to_string(&sys)
            );
        }
    }
    assert!(checked > 20, "too few unsafe samples: {checked}");
}
