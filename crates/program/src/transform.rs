//! Source-to-source transformations.
//!
//! * [`unroll`] — bounded loop unrolling, turning `c*` into a `bound`-deep
//!   nest of choices. This is how fixed-size loops in the benchmarks (e.g.
//!   `chase-lev-deque`) are brought into the `acyc` fragment, and how
//!   bounded model checking of looping `dis` threads is realized
//!   (Section 4: "this class captures bounded model checking where the
//!   distinguished threads are explored up to an under-approximate
//!   loop-unrolling bound").
//! * [`assert_to_goal`] — the Section 4.1 reduction from safety
//!   verification to *Message Generation (MG)*: every `assert false` is
//!   replaced by a store `x# := d#` to a fresh variable, and the system is
//!   unsafe iff the goal message `(x#, d#, _)` can be generated.

use crate::expr::Expr;
use crate::ident::VarId;
use crate::stmt::Com;
use crate::system::{ParamSystem, Program};
use crate::value::Val;

/// Replaces every iteration `c*` by at most `bound` unrolled copies of `c`.
///
/// The result is loop-free and under-approximates the original program:
/// every run of the unrolled program is a run of the original. `bound = 0`
/// erases loop bodies entirely (zero iterations are always allowed).
pub fn unroll(com: &Com, bound: usize) -> Com {
    match com {
        Com::Seq(a, b) => Com::Seq(Box::new(unroll(a, bound)), Box::new(unroll(b, bound))),
        Com::Choice(a, b) => Com::Choice(Box::new(unroll(a, bound)), Box::new(unroll(b, bound))),
        Com::Star(c) => {
            let body = unroll(c, bound);
            // skip ⊕ (c; (skip ⊕ (c; …))) — `bound` levels deep.
            let mut acc = Com::Skip;
            for _ in 0..bound {
                acc = Com::choice([Com::Skip, Com::seq([body.clone(), acc])]);
            }
            acc
        }
        leaf => leaf.clone(),
    }
}

/// Unrolls all loops in a program, recompiling its CFA.
pub fn unroll_program(p: &Program, bound: usize) -> Program {
    p.with_com(unroll(p.com(), bound))
}

/// Unrolls all loops in the `dis` programs of a system (the paper's
/// bounded-model-checking usage keeps `env` loops — the simplified
/// semantics handles those exactly).
pub fn unroll_dis(sys: &ParamSystem, bound: usize) -> ParamSystem {
    ParamSystem::new(
        sys.dom,
        sys.vars.clone(),
        sys.env.clone(),
        sys.dis.iter().map(|p| unroll_program(p, bound)).collect(),
    )
}

/// Unrolls all loops everywhere, including `env`.
pub fn unroll_all(sys: &ParamSystem, bound: usize) -> ParamSystem {
    ParamSystem::new(
        sys.dom,
        sys.vars.clone(),
        unroll_program(&sys.env, bound),
        sys.dis.iter().map(|p| unroll_program(p, bound)).collect(),
    )
}

/// The result of [`assert_to_goal`]: the rewritten system and the goal
/// message `(x#, d#)` whose generability is equivalent to unsafety.
#[derive(Debug, Clone)]
pub struct GoalSystem {
    /// The system with `assert false` replaced by `x# := d#`.
    pub system: ParamSystem,
    /// The fresh goal variable `x#`.
    pub goal_var: VarId,
    /// The goal value `d#`.
    pub goal_val: Val,
    /// Whether the original system contained any assertion at all (if not,
    /// it is trivially safe and the goal message is unreachable).
    pub had_assert: bool,
}

/// The name used for the fresh goal variable.
pub const GOAL_VAR_NAME: &str = "$goal";

/// Reduces safety verification to Message Generation (Section 4.1).
///
/// Appends a fresh shared variable `x#` (named [`GOAL_VAR_NAME`]) and
/// replaces every `assert false` by the store `x# := d#` with `d# = 1`.
/// The rewritten system generates the message `(x#, 1, _)` iff the original
/// system can reach an assertion violation.
///
/// # Panics
///
/// Panics if the data domain has fewer than two values (then no `d# ≠
/// d_init` exists) or if the system already declares [`GOAL_VAR_NAME`].
pub fn assert_to_goal(sys: &ParamSystem) -> GoalSystem {
    assert!(
        sys.dom.size() >= 2,
        "goal transformation needs |Dom| >= 2 so that d# differs from d_init"
    );
    assert!(
        sys.vars.lookup(GOAL_VAR_NAME).is_none(),
        "system already declares the reserved variable {GOAL_VAR_NAME}"
    );
    let mut vars = sys.vars.clone();
    let goal_var = VarId(vars.intern(GOAL_VAR_NAME));
    let goal_val = Val(1);

    let had_assert = sys.env.com().has_assert() || sys.dis.iter().any(|p| p.com().has_assert());

    let rewrite_program = |p: &Program| p.with_com(replace_assert(p.com(), goal_var, goal_val));
    let system = ParamSystem::new(
        sys.dom,
        vars,
        rewrite_program(&sys.env),
        sys.dis.iter().map(rewrite_program).collect(),
    );
    GoalSystem {
        system,
        goal_var,
        goal_val,
        had_assert,
    }
}

fn replace_assert(com: &Com, goal_var: VarId, goal_val: Val) -> Com {
    match com {
        Com::AssertFalse => Com::Store(goal_var, Expr::Const(goal_val)),
        Com::Seq(a, b) => Com::Seq(
            Box::new(replace_assert(a, goal_var, goal_val)),
            Box::new(replace_assert(b, goal_var, goal_val)),
        ),
        Com::Choice(a, b) => Com::Choice(
            Box::new(replace_assert(a, goal_var, goal_val)),
            Box::new(replace_assert(b, goal_var, goal_val)),
        ),
        Com::Star(c) => Com::star(replace_assert(c, goal_var, goal_val)),
        leaf => leaf.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::ident::RegId;

    fn loopy_system() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.star(|p| {
            p.store(x, 1);
        });
        env.assert_false();
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        d.star(|p| {
            p.load(r, x);
        });
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn unroll_makes_acyclic() {
        let sys = loopy_system();
        assert!(!sys.env.cfa().is_acyclic());
        let u = unroll_all(&sys, 3);
        assert!(u.env.cfa().is_acyclic());
        assert!(u.dis[0].cfa().is_acyclic());
    }

    #[test]
    fn unroll_zero_erases_bodies() {
        let c = Com::star(Com::AssertFalse);
        assert_eq!(unroll(&c, 0), Com::Skip);
    }

    #[test]
    fn unroll_bound_counts_iterations() {
        // Each unrolled level contributes at most one store; a loop-free CFA
        // with bound k can store at most k times.
        let c = Com::star(Com::Store(VarId(0), Expr::val(1)));
        for k in 1..5 {
            let u = unroll(&c, k);
            let cfa = crate::cfg::Cfa::compile(&u, 0);
            assert!(cfa.is_acyclic());
            assert_eq!(cfa.max_stores_per_run(), Some(k));
        }
    }

    #[test]
    fn unroll_dis_keeps_env_loops() {
        let sys = loopy_system();
        let u = unroll_dis(&sys, 2);
        assert!(!u.env.cfa().is_acyclic());
        assert!(u.dis[0].cfa().is_acyclic());
    }

    #[test]
    fn goal_transformation_replaces_asserts() {
        let sys = loopy_system();
        let g = assert_to_goal(&sys);
        assert!(g.had_assert);
        assert!(!g.system.env.cfa().has_assert());
        assert!(!g.system.dis[0].cfa().has_assert());
        assert_eq!(g.system.n_vars(), sys.n_vars() + 1);
        assert_eq!(g.system.vars.name(g.goal_var.0), GOAL_VAR_NAME);
        // The goal store is present in env.
        assert!(g
            .system
            .env
            .cfa()
            .edges()
            .iter()
            .any(|e| matches!(e.instr, crate::cfg::Instr::Store(v, _) if v == g.goal_var)));
    }

    #[test]
    fn goal_transformation_flags_assert_free_systems() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let g = assert_to_goal(&sys);
        assert!(!g.had_assert);
    }

    #[test]
    #[should_panic(expected = "|Dom| >= 2")]
    fn tiny_domain_rejected() {
        let mut b = SystemBuilder::new(1);
        let _ = b.var("x");
        let env = b.program("env").finish();
        let sys = b.build(env, vec![]);
        assert_to_goal(&sys);
    }

    #[test]
    fn unrolled_program_keeps_registers() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut p = b.program("p");
        let r = p.reg("r");
        p.star(|p| {
            p.load(r, x);
        });
        let p = p.finish();
        let u = unroll_program(&p, 2);
        assert_eq!(u.n_regs(), 1);
        assert_eq!(u.name(), "p");
        let _ = RegId(0);
    }
}
