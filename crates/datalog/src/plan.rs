//! Static join planner: orders rule bodies most-bound-first.
//!
//! For every rule and every choice of *delta position* (the body atom
//! matched against a newly derived tuple in semi-naive evaluation), the
//! planner fixes — once, at program load — the order in which the
//! remaining body atoms are joined and which argument columns are bound
//! when each of them is probed. The evaluator turns each step into either
//! a membership test (all columns bound) or a probe of a column-keyed
//! index (some columns bound), so the plan fully determines which indices
//! an evaluation can ever need: they are enumerated here and addressed by
//! dense *slot* ids, sparing the evaluator a hash lookup per probe.
//!
//! The cost model is greedy most-bound-first with exact statistics for
//! predicates defined by facts (the `makeP` EDB relations: timeline
//! orders, `gapjoin`/`gapstore` tables) and flat defaults for intensional
//! predicates. Statistics are quantized to powers of two — the planner
//! only needs order-of-magnitude selectivity. Fully bound atoms cost
//! nearly nothing and are always hoisted; otherwise the estimated
//! candidate count after index filtering decides.
//!
//! Planning is on the critical path of every guess in the `makeP` fleet
//! (one program per guess), and `makeP` emits rules in large structurally
//! identical families (same term shapes, same statistics, different
//! predicate ids). Two memoization layers keep it off the profile:
//!
//! * **within a program** — each unique *body signature* (canonicalized
//!   term structure plus statistics) is planned once ([`BodyPlan`]) and
//!   every rule sharing it keeps only its own dense index-slot table
//!   ([`RulePlans::slots`]);
//! * **across programs** — [`PlanCache`] shares whole plans between
//!   programs whose rule lists are equal up to fact content and constant
//!   values (one `makeP` guess fleet), and pools [`BodyPlan`]s across
//!   the remaining misses.

use crate::ast::{PredId, Program, Rule, Term};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Cheap word-mixing hasher for the planner's internal maps (signature
/// memos, slot dedup, fact statistics). Planning happens once per
/// program but for every rule, and SipHash on multi-word keys showed up
/// as the planner's single largest cost on the `makeP` fleet.
#[derive(Default)]
struct FxWords(u64);

impl FxWords {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxWords {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxWords>>;
type FxSet<T> = HashSet<T, BuildHasherDefault<FxWords>>;

/// The slot value meaning "this step probes no index" (fully bound, or a
/// column set that cannot be bitmask-keyed).
pub const NO_SLOT: u32 = u32::MAX;

/// One join step: probe body atom `pos` with `cols` bound. The index slot
/// probed, if any, lives in the owning rule's [`RulePlans::slots`] (steps
/// are shared between rules, slots are not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// The body position being solved at this step.
    pub pos: usize,
    /// The argument columns (positions) whose values are known when the
    /// probe happens: constants in the pattern plus already-bound
    /// variables. Sorted ascending.
    pub cols: Vec<u8>,
    /// Whether *every* argument is known — the probe degenerates to a
    /// membership test on the tuple arena.
    pub fully_bound: bool,
}

/// The join order for one (rule, delta-position) pair.
#[derive(Debug, Clone, Default)]
pub struct DeltaPlan {
    /// The remaining body atoms in join order (the delta atom itself is
    /// excluded — it is matched first, against the new tuple).
    pub steps: Vec<JoinStep>,
}

/// The join orders of one *body shape*, shared by every rule whose body
/// has the same canonical term structure and statistics.
#[derive(Debug, Clone, Default)]
pub struct BodyPlan {
    /// `per_delta[bi]` is the plan when body atom `bi` is the delta.
    pub per_delta: Vec<DeltaPlan>,
    /// Flat step offset of each delta position into a rule's
    /// [`RulePlans::slots`] table.
    offsets: Vec<usize>,
    /// Total steps across all delta positions (a rule's slot-table size).
    n_steps: usize,
}

impl BodyPlan {
    /// The slot table range of delta position `bi`.
    #[inline]
    pub fn slot_offset(&self, bi: usize) -> usize {
        self.offsets[bi]
    }
}

/// All plans of one rule: a shared [`BodyPlan`] plus the rule's own
/// index-slot table.
#[derive(Debug, Clone, Default)]
pub struct RulePlans {
    /// Index of the shared body plan in [`Plan::body_plan`].
    pub body_plan: usize,
    /// Dense index-slot per step, flattened over delta positions
    /// (`slots[body.slot_offset(bi) + si]` pairs with
    /// `body.per_delta[bi].steps[si]`); [`NO_SLOT`] for membership tests
    /// and unindexable column sets.
    pub slots: Vec<u32>,
    /// One more than the largest variable id in the rule (substitution
    /// buffer size).
    pub n_vars: usize,
    /// The distinct predicates of the rule's body. If any of them has an
    /// empty relation the rule cannot fire this round — the evaluator
    /// checks this before any join work.
    pub body_preds: Vec<PredId>,
}

/// A join index required by some plan step: a predicate and the bound
/// columns (ascending) the probes key on.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    /// The indexed predicate.
    pub pred: PredId,
    /// The key columns, ascending.
    pub cols: Vec<u8>,
}

/// Default estimated relation size for intensional predicates.
const DEFAULT_SIZE: f64 = 256.0;
/// Default estimated distinct values per column for intensional
/// predicates.
const DEFAULT_DISTINCT: f64 = 8.0;

/// Per-predicate statistics driving the cost model. Sizes and distinct
/// counts are quantized to powers of two: the greedy planner only needs
/// order-of-magnitude selectivity, and coarse stats let structurally
/// identical rules over same-shaped relations share one memoized plan.
#[derive(Debug, Clone)]
struct PredStats {
    /// Estimated number of tuples.
    size: f64,
    /// Reciprocal of the estimated distinct values per column (the cost
    /// model only ever divides by distinct counts).
    inv_distinct: Vec<f64>,
}

/// The static plan for a whole program.
#[derive(Debug, Clone)]
pub struct Plan {
    rules: Vec<RulePlans>,
    body_plans: Vec<Arc<BodyPlan>>,
    indices: Vec<IndexSpec>,
    /// For each predicate, every (rule, body position) where it occurs —
    /// the semi-naive "uses" of a delta atom. Predicates past the end of
    /// the vector (possible for fact-only predicates of a cache-shared
    /// program) have no uses.
    uses: Vec<Vec<(u32, u32)>>,
    max_vars: usize,
}

/// The bitmask of a sorted column set (all columns < 64).
fn colmask(cols: &[u8]) -> u64 {
    cols.iter().fold(0u64, |m, &c| m | (1u64 << c))
}

/// Whether a column set can be served by a bitmask-keyed index.
fn indexable(cols: &[u8]) -> bool {
    !cols.is_empty() && cols.iter().all(|&c| c < 64)
}

/// Cross-program pool of [`BodyPlan`]s keyed by body signature. One
/// `makeP` fleet produces many structurally overlapping programs even
/// when their rule lists differ; the pool plans every body shape once per
/// [`PlanCache`] lifetime.
#[derive(Default)]
struct BodyPool {
    entries: FxMap<u64, Vec<PoolEntry>>,
}

struct PoolEntry {
    sig: Vec<u64>,
    body: Arc<BodyPlan>,
}

impl Plan {
    /// Computes the plan for `program` (once per load; evaluation only
    /// reads it).
    pub fn new(program: &Program) -> Plan {
        Plan::new_in(program, &mut BodyPool::default())
    }

    /// Computes the plan for `program`, drawing memoized body plans from
    /// (and contributing new ones to) `pool`.
    fn new_in(program: &Program, pool: &mut BodyPool) -> Plan {
        let stats = collect_stats(program);
        let mut body_plans: Vec<Arc<BodyPlan>> = Vec::new();
        // This plan's body-plan ids per pooled signature, and a
        // per-flat-step (predicate → slot) memo: rules sharing a body
        // plan mostly probe the same predicates (the glue EDB relations
        // of their family), so the memo turns most slot lookups into one
        // comparison. Both are plan-local — slot ids are.
        let mut local_ids: FxMap<u64, Vec<(usize, usize)>> = FxMap::default();
        let mut step_memos: Vec<Vec<(PredId, u32)>> = Vec::new();
        let mut slot_ids: FxMap<(PredId, u64), u32> = FxMap::default();
        let mut indices: Vec<IndexSpec> = Vec::new();
        let mut uses: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut max_vars = 0usize;
        // Reusable planning scratch: `bound[v]` plus the list of set
        // entries for O(bound) clearing between delta positions.
        let mut bound: Vec<bool> = Vec::new();
        let mut bound_list: Vec<u32> = Vec::new();
        let mut sig: Vec<u64> = Vec::new();
        let mut canon: Vec<u32> = Vec::new();
        let rules = program
            .rules()
            .iter()
            .enumerate()
            .map(|(ri, rule)| {
                let n_vars = rule_n_vars(rule);
                max_vars = max_vars.max(n_vars);
                if bound.len() < n_vars {
                    bound.resize(n_vars, false);
                    canon.resize(n_vars, u32::MAX);
                }
                let mut body_preds: Vec<PredId> = rule.body.iter().map(|a| a.pred).collect();
                body_preds.sort_unstable_by_key(|p| p.0);
                body_preds.dedup();
                for (bi, atom) in rule.body.iter().enumerate() {
                    let p = atom.pred.0 as usize;
                    if uses.len() <= p {
                        uses.resize_with(p + 1, Vec::new);
                    }
                    uses[p].push((ri as u32, bi as u32));
                }

                let digest = body_signature(rule, &stats, &mut sig, &mut canon);
                // Resolve the signature to a plan-local body-plan id:
                // first in this plan's own table, then the cross-program
                // pool, planning from scratch only on a double miss.
                let locals = local_ids.entry(digest).or_default();
                let mut body_plan = usize::MAX;
                for &(pi, id) in locals.iter() {
                    if pool.entries[&digest][pi].sig == sig {
                        body_plan = id;
                        break;
                    }
                }
                if body_plan == usize::MAX {
                    let pooled = pool.entries.entry(digest).or_default();
                    let mut pool_idx = usize::MAX;
                    for (pi, e) in pooled.iter().enumerate() {
                        if e.sig == sig {
                            pool_idx = pi;
                            break;
                        }
                    }
                    if pool_idx == usize::MAX {
                        let mut offsets = Vec::with_capacity(rule.body.len());
                        let mut flat = 0usize;
                        let per_delta: Vec<DeltaPlan> = (0..rule.body.len())
                            .map(|bi| {
                                let dp = plan_delta(rule, bi, &stats, &mut bound, &mut bound_list);
                                for v in bound_list.drain(..) {
                                    bound[v as usize] = false;
                                }
                                offsets.push(flat);
                                flat += dp.steps.len();
                                dp
                            })
                            .collect();
                        pool_idx = pooled.len();
                        pooled.push(PoolEntry {
                            sig: sig.clone(),
                            body: Arc::new(BodyPlan {
                                per_delta,
                                offsets,
                                n_steps: flat,
                            }),
                        });
                    }
                    let body = Arc::clone(&pooled[pool_idx].body);
                    body_plan = body_plans.len();
                    locals.push((pool_idx, body_plan));
                    // An impossible predicate: every memo entry starts as
                    // a guaranteed miss.
                    step_memos.push(vec![(PredId(u32::MAX), NO_SLOT); body.n_steps]);
                    body_plans.push(body);
                }

                // The rule's own slot table: same step shapes, its own
                // body predicates.
                let bp = &body_plans[body_plan];
                let memo = &mut step_memos[body_plan];
                let mut slots = Vec::with_capacity(bp.n_steps);
                let mut fi = 0usize;
                for dp in &bp.per_delta {
                    for step in &dp.steps {
                        let slot = if step.fully_bound || !indexable(&step.cols) {
                            NO_SLOT
                        } else {
                            let pred = rule.body[step.pos].pred;
                            if memo[fi].0 == pred {
                                memo[fi].1
                            } else {
                                let s = *slot_ids
                                    .entry((pred, colmask(&step.cols)))
                                    .or_insert_with(|| {
                                        indices.push(IndexSpec {
                                            pred,
                                            cols: step.cols.clone(),
                                        });
                                        (indices.len() - 1) as u32
                                    });
                                memo[fi] = (pred, s);
                                s
                            }
                        };
                        slots.push(slot);
                        fi += 1;
                    }
                }
                RulePlans {
                    body_plan,
                    slots,
                    n_vars,
                    body_preds,
                }
            })
            .collect();
        Plan {
            rules,
            body_plans,
            indices,
            uses,
            max_vars,
        }
    }

    /// The plans of rule `ri`.
    #[inline]
    pub fn rule(&self, ri: usize) -> &RulePlans {
        &self.rules[ri]
    }

    /// The shared body plan referenced by a [`RulePlans`].
    #[inline]
    pub fn body_plan(&self, id: usize) -> &BodyPlan {
        &self.body_plans[id]
    }

    /// Every join index any plan step can probe, in slot order.
    pub fn indices(&self) -> &[IndexSpec] {
        &self.indices
    }

    /// Every (rule, body position) in which predicate `p` occurs — where
    /// a delta atom of `p` can fire.
    #[inline]
    pub fn uses(&self, p: PredId) -> &[(u32, u32)] {
        self.uses
            .get(p.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct body shapes planned (diagnostics: how well the
    /// signature memoization compresses the program's rule families).
    pub fn n_body_plans(&self) -> usize {
        self.body_plans.len()
    }

    /// The largest `n_vars` over all rules (shared substitution buffer
    /// size).
    pub fn max_vars(&self) -> usize {
        self.max_vars
    }
}

/// Shares plans across programs with compatible rule lists, and body
/// plans across all programs it ever sees.
///
/// The `makeP` fleet evaluates one program per guess; the guess changes
/// the *facts* (which messages exist) and the message constants baked
/// into rule bodies, but plans hold only body positions, bound-column
/// sets, and (predicate, column-set) index slots — none of which can see
/// a constant's value, only that the column is bound. A plan computed for
/// one program is therefore **correct** for any program whose rule list
/// matches predicates, arities, and variable ids position for position
/// (facts, whose plans are empty, match as wildcards); the fact-derived
/// statistics only tune join-order quality. The full shape is compared on
/// every digest hit, so a reused plan is always exact, never
/// probabilistic.
#[derive(Default)]
pub struct PlanCache {
    entries: FxMap<u64, Vec<CacheEntry>>,
    pool: BodyPool,
    shape_buf: Vec<u64>,
}

struct CacheEntry {
    shape: Vec<u64>,
    plan: Arc<Plan>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of distinct rule shapes planned so far.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether no plan has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The plan for `program`, computed on first sight of its rule shape
    /// and shared afterwards.
    pub fn plan(&mut self, program: &Program) -> Arc<Plan> {
        let digest = rules_shape(program, &mut self.shape_buf);
        if let Some(entries) = self.entries.get(&digest) {
            for e in entries {
                if e.shape == self.shape_buf {
                    return Arc::clone(&e.plan);
                }
            }
        }
        let plan = Arc::new(Plan::new_in(program, &mut self.pool));
        self.entries.entry(digest).or_default().push(CacheEntry {
            shape: self.shape_buf.clone(),
            plan: Arc::clone(&plan),
        });
        plan
    }
}

/// Flattens a program's rule list to the words that determine plan
/// validity — per non-fact rule: head and body atoms with predicate ids,
/// arities, and exact variable ids, constants collapsed to a token; facts
/// collapse to a marker (their plans are empty whatever their content).
/// Two programs with equal shapes produce position-for-position valid
/// plans for each other. Returns the shape's digest.
fn rules_shape(program: &Program, shape: &mut Vec<u64>) -> u64 {
    shape.clear();
    let mut h = FxWords::default();
    let mut word = |shape: &mut Vec<u64>, w: u64| {
        shape.push(w);
        h.mix(w);
    };
    for rule in program.rules() {
        if rule.is_fact() {
            word(shape, 0xFAC7);
            continue;
        }
        word(shape, 0x517e);
        for atom in std::iter::once(&rule.head).chain(&rule.body) {
            word(shape, atom.pred.0 as u64);
            word(shape, atom.terms.len() as u64);
            for t in &atom.terms {
                word(
                    shape,
                    match t {
                        Term::Var(v) => (1u64 << 32) | *v as u64,
                        Term::Const(_) => 2u64 << 32,
                    },
                );
            }
        }
    }
    h.finish()
}

/// One more than the largest variable id in `rule`.
fn rule_n_vars(rule: &Rule) -> usize {
    let mut max: Option<u32> = None;
    let mut see = |t: &Term| {
        if let Term::Var(v) = t {
            max = Some(max.map_or(*v, |m: u32| m.max(*v)));
        }
    };
    rule.head.terms.iter().for_each(&mut see);
    for a in &rule.body {
        a.terms.iter().for_each(&mut see);
    }
    max.map(|m| m as usize + 1).unwrap_or(0)
}

/// Everything `plan_delta` reads from a rule body, flattened to words:
/// per atom, its statistics (size and per-column distinct counts, as raw
/// f64 bits) and its term structure. The structure is *canonicalized* —
/// every constant becomes one token (the planner only cares that the
/// column is bound, never which value) and variables are renumbered by
/// first occurrence (only the sharing pattern matters) — so the large
/// rule families `makeP` emits collapse to a handful of signatures.
/// Rules with equal signatures get byte-identical join orders. Returns
/// the signature's digest (the memo key; equality is re-checked against
/// the words on digest hits). `canon` is caller-provided scratch mapping
/// var id → canonical id, `u32::MAX`-filled at entry and restored before
/// returning.
fn body_signature(rule: &Rule, stats: &[PredStats], sig: &mut Vec<u64>, canon: &mut [u32]) -> u64 {
    sig.clear();
    let mut h = FxWords::default();
    let mut word = |sig: &mut Vec<u64>, w: u64| {
        sig.push(w);
        h.mix(w);
    };
    let mut next = 0u32;
    let mut assigned: Vec<u32> = Vec::new();
    for atom in &rule.body {
        let st = &stats[atom.pred.0 as usize];
        word(sig, st.size.to_bits());
        for d in &st.inv_distinct {
            word(sig, d.to_bits());
        }
        word(sig, 0xa707); // atom separator
        for t in &atom.terms {
            word(
                sig,
                match t {
                    Term::Var(v) => {
                        let c = &mut canon[*v as usize];
                        if *c == u32::MAX {
                            *c = next;
                            assigned.push(*v);
                            next += 1;
                        }
                        (1u64 << 32) | *c as u64
                    }
                    Term::Const(_) => 2u64 << 32,
                },
            );
        }
    }
    for v in assigned {
        canon[v as usize] = u32::MAX;
    }
    h.finish()
}

/// Rounds a count up to a power of two (the quantization grid).
fn quantize(n: f64) -> f64 {
    (n.max(1.0) as u64).next_power_of_two() as f64
}

/// Statistics for predicates defined by facts (quantized), defaults
/// otherwise.
fn collect_stats(program: &Program) -> Vec<PredStats> {
    let n_preds = program.predicates().count();
    let mut stats: Vec<PredStats> = (0..n_preds)
        .map(|p| PredStats {
            size: quantize(DEFAULT_SIZE),
            inv_distinct: vec![
                1.0 / quantize(DEFAULT_DISTINCT);
                program.pred_arity(PredId(p as u32))
            ],
        })
        .collect();
    // Count facts and per-column distinct constants; `seen` is allocated
    // only for predicates that actually have facts.
    let mut counts = vec![0usize; n_preds];
    let mut seen: Vec<Vec<FxSet<u32>>> = vec![Vec::new(); n_preds];
    for rule in program.rules() {
        if !rule.is_fact() {
            continue;
        }
        let p = rule.head.pred.0 as usize;
        counts[p] += 1;
        if seen[p].is_empty() {
            seen[p] = vec![FxSet::default(); rule.head.terms.len()];
        }
        for (col, t) in rule.head.terms.iter().enumerate() {
            if let Term::Const(c) = t {
                seen[p][col].insert(c.0);
            }
        }
    }
    for p in 0..n_preds {
        if counts[p] > 0 {
            stats[p].size = quantize(counts[p] as f64);
            for (col, s) in seen[p].iter().enumerate() {
                stats[p].inv_distinct[col] = 1.0 / quantize(s.len() as f64);
            }
        }
    }
    stats
}

/// Greedy most-bound-first order for one (rule, delta-position) pair.
/// `bound` is caller-provided scratch (all false on entry); every variable
/// set true is pushed onto `bound_list` so the caller can clear it.
fn plan_delta(
    rule: &Rule,
    delta_pos: usize,
    stats: &[PredStats],
    bound: &mut [bool],
    bound_list: &mut Vec<u32>,
) -> DeltaPlan {
    let mut bind = |bound: &mut [bool], v: u32| {
        if !bound[v as usize] {
            bound[v as usize] = true;
            bound_list.push(v);
        }
    };
    for t in &rule.body[delta_pos].terms {
        if let Term::Var(v) = t {
            bind(bound, *v);
        }
    }
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&b| b != delta_pos).collect();
    let mut steps = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Pick the cheapest next atom; ties resolve to the lowest body
        // position so plans are deterministic.
        let mut choice = 0usize;
        let mut best = f64::INFINITY;
        for (i, &pos) in remaining.iter().enumerate() {
            let c = cost(rule, pos, bound, stats);
            if c < best {
                best = c;
                choice = i;
            }
        }
        let pos = remaining.remove(choice);
        let atom = &rule.body[pos];
        let mut cols = Vec::with_capacity(atom.terms.len());
        let mut fully = true;
        for (col, t) in atom.terms.iter().enumerate() {
            let known = match t {
                Term::Const(_) => true,
                Term::Var(v) => bound[*v as usize],
            };
            if known {
                cols.push(col as u8);
            } else {
                fully = false;
            }
        }
        steps.push(JoinStep {
            pos,
            cols,
            fully_bound: fully,
        });
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bind(bound, *v);
            }
        }
    }
    DeltaPlan { steps }
}

/// Estimated candidates to scan when probing body atom `pos` given the
/// currently bound variables.
fn cost(rule: &Rule, pos: usize, bound: &[bool], stats: &[PredStats]) -> f64 {
    let atom = &rule.body[pos];
    let st = &stats[atom.pred.0 as usize];
    let mut est = st.size;
    let mut fully = true;
    for (col, t) in atom.terms.iter().enumerate() {
        let known = match t {
            Term::Const(_) => true,
            Term::Var(v) => bound[*v as usize],
        };
        if known {
            est *= st.inv_distinct.get(col).copied().unwrap_or(1.0);
        } else {
            fully = false;
        }
    }
    if fully {
        // A membership test beats any enumeration.
        return 0.5;
    }
    est.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Program, Term};

    /// The (step, slot) pairs of one delta position.
    fn steps_of(plan: &Plan, ri: usize, bi: usize) -> Vec<(&JoinStep, u32)> {
        let rp = plan.rule(ri);
        let bp = plan.body_plan(rp.body_plan);
        let off = bp.slot_offset(bi);
        bp.per_delta[bi]
            .steps
            .iter()
            .enumerate()
            .map(|(si, s)| (s, rp.slots[off + si]))
            .collect()
    }

    #[test]
    fn fully_bound_atoms_are_hoisted() {
        // r(X) :- p(X), q(X), edge(X, Y) with delta = edge: p and q become
        // fully bound checks and must precede nothing unbound — any order
        // of the two is fine but both are fully_bound.
        let mut prog = Program::new();
        let p = prog.predicate("p", 1);
        let q = prog.predicate("q", 1);
        let edge = prog.predicate("edge", 2);
        let r = prog.predicate("r", 1);
        let a = prog.constant("a");
        let b = prog.constant("b");
        prog.fact(edge, vec![a, b]).unwrap();
        prog.rule(
            Atom::new(r, vec![Term::Var(0)]),
            vec![
                Atom::new(p, vec![Term::Var(0)]),
                Atom::new(q, vec![Term::Var(0)]),
                Atom::new(edge, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let plan = Plan::new(&prog);
        let steps = steps_of(&plan, 1, 2); // rule 0 is the fact; delta = edge
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|(s, _)| s.fully_bound));
        assert!(steps.iter().all(|(_, slot)| *slot == NO_SLOT));
        assert_eq!(plan.rule(1).n_vars, 2);
        assert_eq!(plan.rule(1).body_preds, vec![p, q, edge]);
        // Delta uses: edge occurs at (rule 1, position 2).
        assert_eq!(plan.uses(edge), &[(1, 2)]);
        assert!(plan.uses(r).is_empty());
    }

    #[test]
    fn selective_edb_atom_ordered_after_binding_atom() {
        // goal(Y) :- big(X), link(X, Y) with delta = big: link must be
        // probed with column 0 bound.
        let mut prog = Program::new();
        let big = prog.predicate("big", 1);
        let link = prog.predicate("link", 2);
        let goal = prog.predicate("goal", 1);
        let consts: Vec<_> = (0..10).map(|i| prog.constant(&format!("c{i}"))).collect();
        for w in consts.windows(2) {
            prog.fact(link, vec![w[0], w[1]]).unwrap();
        }
        prog.rule(
            Atom::new(goal, vec![Term::Var(1)]),
            vec![
                Atom::new(big, vec![Term::Var(0)]),
                Atom::new(link, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let plan = Plan::new(&prog);
        let ri = prog.rules().len() - 1;
        let steps = steps_of(&plan, ri, 0);
        assert_eq!(steps.len(), 1);
        let (step, slot) = steps[0];
        assert_eq!(step.pos, 1);
        assert_eq!(step.cols, vec![0]);
        assert!(!step.fully_bound);
        // The probe got a dense slot, and the plan exposes its spec.
        assert_ne!(slot, NO_SLOT);
        let spec = &plan.indices()[slot as usize];
        assert_eq!(spec.pred, link);
        assert_eq!(spec.cols, vec![0]);
    }

    #[test]
    fn constants_count_as_bound_columns() {
        let mut prog = Program::new();
        let e = prog.predicate("e", 2);
        let out = prog.predicate("out", 1);
        let a = prog.constant("a");
        let trigger = prog.predicate("t", 0);
        let _ = a;
        prog.rule(
            Atom::new(out, vec![Term::Var(0)]),
            vec![
                Atom::new(trigger, vec![]),
                Atom::new(e, vec![Term::Const(a), Term::Var(0)]),
            ],
        )
        .unwrap();
        let plan = Plan::new(&prog);
        let steps = steps_of(&plan, 0, 0);
        assert_eq!(steps[0].0.pos, 1);
        assert_eq!(steps[0].0.cols, vec![0]);
    }

    #[test]
    fn every_delta_position_gets_a_plan() {
        let mut prog = Program::new();
        let e = prog.predicate("e", 2);
        let tri = prog.predicate("tri", 3);
        prog.rule(
            Atom::new(tri, vec![Term::Var(0), Term::Var(1), Term::Var(2)]),
            vec![
                Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                Atom::new(e, vec![Term::Var(2), Term::Var(0)]),
            ],
        )
        .unwrap();
        let plan = Plan::new(&prog);
        let rp = plan.rule(0);
        let bp = plan.body_plan(rp.body_plan);
        assert_eq!(bp.per_delta.len(), 3);
        assert_eq!(rp.body_preds, vec![e]);
        assert_eq!(plan.uses(e), &[(0, 0), (0, 1), (0, 2)]);
        for (bi, dp) in bp.per_delta.iter().enumerate() {
            assert_eq!(dp.steps.len(), 2);
            // Each remaining atom shares a variable with what is already
            // bound, so every probe has at least one bound column.
            for s in &dp.steps {
                assert_ne!(s.pos, bi);
                assert!(!s.cols.is_empty());
            }
        }
        // Both probe column sets of `e` ({0} and {1}) get distinct slots.
        assert_eq!(plan.indices().len(), 2);
        assert_eq!(plan.max_vars(), 3);
    }

    #[test]
    fn structurally_identical_rules_share_a_body_plan() {
        // Two transitive-closure-style rules over different predicates but
        // identical term shapes and statistics: one BodyPlan, two slot
        // tables (the probed predicates differ).
        let mut prog = Program::new();
        let e1 = prog.predicate("e1", 2);
        let e2 = prog.predicate("e2", 2);
        let a1 = prog.predicate("a1", 1);
        let a2 = prog.predicate("a2", 1);
        for (a, e) in [(a1, e1), (a2, e2)] {
            prog.rule(
                Atom::new(a, vec![Term::Var(1)]),
                vec![
                    Atom::new(a, vec![Term::Var(0)]),
                    Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
                ],
            )
            .unwrap();
        }
        let plan = Plan::new(&prog);
        assert_eq!(plan.rule(0).body_plan, plan.rule(1).body_plan);
        assert_eq!(plan.n_body_plans(), 1);
        // Same shape, but each rule probes its own predicate's index.
        let s0 = steps_of(&plan, 0, 0)[0].1;
        let s1 = steps_of(&plan, 1, 0)[0].1;
        assert_ne!(s0, NO_SLOT);
        assert_ne!(s1, NO_SLOT);
        assert_ne!(s0, s1, "distinct predicates need distinct indices");
        assert_eq!(plan.indices().len(), 2);
    }

    #[test]
    fn shared_slots_deduplicate_identical_probes() {
        // Two rules probing the same predicate on the same column set must
        // share one index slot (even though their body plans differ).
        let mut prog = Program::new();
        let e = prog.predicate("e", 2);
        let a = prog.predicate("a", 1);
        let c = prog.predicate("c", 1);
        let b = prog.predicate("b", 2);
        prog.rule(
            Atom::new(a, vec![Term::Var(1)]),
            vec![
                Atom::new(a, vec![Term::Var(0)]),
                Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        prog.rule(
            Atom::new(b, vec![Term::Var(0), Term::Var(1)]),
            vec![
                Atom::new(c, vec![Term::Var(0)]),
                Atom::new(e, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let plan = Plan::new(&prog);
        let slots0: Vec<u32> = plan.rule(0).slots.clone();
        let slots1: Vec<u32> = plan.rule(1).slots.clone();
        let used0: Vec<u32> = slots0.into_iter().filter(|&s| s != NO_SLOT).collect();
        let used1: Vec<u32> = slots1.into_iter().filter(|&s| s != NO_SLOT).collect();
        assert!(used0.iter().any(|s| used1.contains(s)));
    }

    #[test]
    fn plan_cache_shares_across_fact_and_constant_changes() {
        // Same rules, different fact tuples and body constants: one plan.
        let build = |fact_consts: &[&str], body_const: &str| {
            let mut prog = Program::new();
            let e = prog.predicate("e", 2);
            let out = prog.predicate("out", 1);
            let k = prog.constant(body_const);
            for w in fact_consts.windows(2) {
                let a = prog.constant(w[0]);
                let b = prog.constant(w[1]);
                prog.fact(e, vec![a, b]).unwrap();
            }
            prog.rule(
                Atom::new(out, vec![Term::Var(0)]),
                vec![Atom::new(e, vec![Term::Const(k), Term::Var(0)])],
            )
            .unwrap();
            prog
        };
        let p1 = build(&["a", "b", "c"], "a");
        let p2 = build(&["x", "y", "z"], "y");
        let mut cache = PlanCache::new();
        let plan1 = cache.plan(&p1);
        let plan2 = cache.plan(&p2);
        assert!(Arc::ptr_eq(&plan1, &plan2), "shape-equal programs share");
        assert_eq!(cache.len(), 1);
        // A structurally different program does not share.
        let mut p3 = build(&["a", "b"], "a");
        let e = p3.lookup_pred("e").unwrap();
        let out = p3.lookup_pred("out").unwrap();
        p3.rule(
            Atom::new(out, vec![Term::Var(0)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(0)])],
        )
        .unwrap();
        let plan3 = cache.plan(&p3);
        assert!(!Arc::ptr_eq(&plan1, &plan3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pooled_body_plans_are_shared_between_cached_plans() {
        // Two programs with different rule counts still share the pooled
        // body plan of their common rule shape.
        let chain = |n: usize| {
            let mut prog = Program::new();
            let e = prog.predicate("e", 2);
            let path = prog.predicate("path", 2);
            let extra = prog.predicate("extra", 1);
            prog.rule(
                Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
                vec![
                    Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
                ],
            )
            .unwrap();
            if n > 1 {
                prog.rule(
                    Atom::new(extra, vec![Term::Var(0)]),
                    vec![Atom::new(path, vec![Term::Var(0), Term::Var(0)])],
                )
                .unwrap();
            }
            prog
        };
        let p1 = chain(1);
        let p2 = chain(2);
        let mut cache = PlanCache::new();
        let plan1 = cache.plan(&p1);
        let plan2 = cache.plan(&p2);
        assert!(!Arc::ptr_eq(&plan1, &plan2), "different shapes");
        assert_eq!(cache.len(), 2);
        // The recursive rule's body plan object is pooled: same Arc.
        let b1 = plan1.body_plan(plan1.rule(0).body_plan) as *const BodyPlan;
        let b2 = plan2.body_plan(plan2.rule(0).body_plan) as *const BodyPlan;
        assert_eq!(b1, b2, "pooled body plans are shared by pointer");
    }
}
