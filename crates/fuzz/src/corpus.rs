//! Persistent regression corpus: failing (or otherwise interesting)
//! systems saved as `.ra` files that `cargo test` replays on every run.
//!
//! Entries are plain [`parse_system`] syntax with a `// parra-fuzz:`
//! provenance header (the oracle and seed that produced them), so a
//! corpus file is simultaneously a regression input, a bug report, and a
//! replayable command line.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parra_program::parser::parse_system;
use parra_program::pretty;
use parra_program::system::ParamSystem;

/// One parsed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Where the entry lives.
    pub path: PathBuf,
    /// The parsed system.
    pub sys: ParamSystem,
}

/// Loads every `.ra` file in `dir`, sorted by file name (deterministic
/// replay order). A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// Propagates I/O errors other than "directory does not exist"; a file
/// that fails to parse is reported as [`io::ErrorKind::InvalidData`] with
/// the parse error and path in the message.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "ra"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let sys = parse_system(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push(CorpusEntry { path, sys });
    }
    Ok(out)
}

/// Saves `sys` into `dir` as `<oracle>-<seed as 16 hex digits>.ra` with a
/// provenance header, creating `dir` if needed. Returns the path written.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn save(
    dir: &Path,
    oracle: &str,
    seed: u64,
    detail: &str,
    sys: &ParamSystem,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{oracle}-{seed:016x}.ra"));
    let mut text = String::new();
    text.push_str(&format!(
        "// parra-fuzz: oracle={oracle} seed={seed}\n// replay: parra fuzz --oracle {oracle} --seed {seed} --cases 1\n"
    ));
    for line in detail.lines() {
        text.push_str(&format!("// {line}\n"));
    }
    text.push_str(&pretty::system_to_string(sys));
    fs::write(&path, &text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, SystemGen};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("parra-fuzz-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let gen = SystemGen::new(GenConfig::agreement());
        let a = gen.case(1).sys;
        let b = gen.case(2).sys;
        save(&dir, "engines-agree", 1, "verdicts differ", &a).unwrap();
        save(&dir, "round-trip", 2, "", &b).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        // Sorted by file name: engines-agree-… before round-trip-….
        assert_eq!(loaded[0].sys, a);
        assert_eq!(loaded[1].sys, b);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let loaded = load_dir(Path::new("/nonexistent/parra-fuzz-corpus")).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn unparseable_entry_is_reported_with_its_path() {
        let dir = tmp_dir("bad");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.ra"), "system { this is not ra }").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad.ra"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
