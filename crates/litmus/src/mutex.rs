//! Mutual-exclusion benchmarks.
//!
//! The flag-based protocols (Peterson, Dekker, Lamport) are famously *not*
//! correct under RA without stronger fences: entry-protocol loads may read
//! stale flags, letting both roles into the critical section. The CAS
//! spinlock is the correct-under-RA contrast — timestamp adjacency makes
//! the lock acquisition atomic.
//!
//! Critical-section violations are detected with single-entry flags: role
//! `i` entering its (only) critical section sets `c_i := 1` and asserts
//! that it can read `c_j = 1` for the other role — since neither model
//! ever resets the flags, readability of `c_j = 1` exactly captures "the
//! other role has entered".

use crate::{Benchmark, Expected};
use parra_program::builder::{ProgramBuilder, SystemBuilder};
use parra_program::expr::Expr;
use parra_program::ident::VarId;

/// Appends the critical-section entry for role `me`: mark entry, then
/// (non-deterministically) observe the other role inside and fail.
fn critical_section(p: &mut ProgramBuilder, c_me: VarId, c_other: VarId) {
    let r = p.reg("rc");
    p.store(c_me, 1);
    p.choice(
        |p| {
            p.load(r, c_other);
            p.assume_eq(r, 1);
            p.assert_false();
        },
        |p| {
            p.skip();
        },
    );
}

/// `peterson-ra` (Lahav–Margalit): Peterson's algorithm, wait loops
/// remodelled as `load; assume`. Each `env` thread picks a role. Under RA
/// the flag handshake is broken: both roles can enter — **unsafe**.
pub fn peterson_ra() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let flag0 = b.var("flag0");
    let flag1 = b.var("flag1");
    let turn = b.var("turn");
    let c0 = b.var("c0");
    let c1 = b.var("c1");

    let mut p = b.program("peterson");
    let role = |p: &mut ProgramBuilder,
                my_flag: VarId,
                other_flag: VarId,
                my_turn: u32,
                c_me: VarId,
                c_other: VarId| {
        let r = p.reg("r");
        p.store(my_flag, 1);
        p.store(turn, 1 - my_turn);
        // await (other_flag == 0 || turn == my_turn)
        p.choice(
            move |p| {
                p.load(r, other_flag);
                p.assume_eq(r, 0);
            },
            move |p| {
                p.load(r, turn);
                p.assume(Expr::reg(r).eq(Expr::val(my_turn)));
            },
        );
        critical_section(p, c_me, c_other);
    };
    let r0 = p.block(|p| role(p, flag0, flag1, 0, c0, c1));
    let r1 = p.block(|p| role(p, flag1, flag0, 1, c1, c0));
    p.choice_of(vec![r0, r1]);
    let env = p.finish();
    Benchmark {
        name: "peterson-ra",
        source: "Lahav–Margalit, PLDI 2019 [34]",
        class_note: "env(nocas) — wait loops remodelled: env(nocas, acyc)",
        expected: Expected::Unsafe,
        system: b.build(env, vec![]),
    }
}

/// `peterson-ra-bratosz` (Norris model-checker benchmarks): Peterson
/// variant with a bounded retry of the entry protocol (unrolled once) —
/// still **unsafe** under RA.
pub fn peterson_ra_bratosz() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let flag0 = b.var("flag0");
    let flag1 = b.var("flag1");
    let turn = b.var("turn");
    let c0 = b.var("c0");
    let c1 = b.var("c1");

    let mut p = b.program("peterson_bratosz");
    let role = |p: &mut ProgramBuilder,
                my_flag: VarId,
                other_flag: VarId,
                my_turn: u32,
                c_me: VarId,
                c_other: VarId| {
        let r = p.reg("r");
        p.store(my_flag, 1);
        p.store(turn, 1 - my_turn);
        // One retry round, then the final await (bounded wait loop,
        // unrolled).
        for _ in 0..2 {
            p.choice(
                move |p| {
                    p.load(r, other_flag);
                    p.assume_eq(r, 0);
                },
                move |p| {
                    p.load(r, turn);
                    p.assume(Expr::reg(r).eq(Expr::val(my_turn)));
                },
            );
        }
        critical_section(p, c_me, c_other);
    };
    let r0 = p.block(|p| role(p, flag0, flag1, 0, c0, c1));
    let r1 = p.block(|p| role(p, flag1, flag0, 1, c1, c0));
    p.choice_of(vec![r0, r1]);
    let env = p.finish();
    Benchmark {
        name: "peterson-ra-bratosz",
        source: "Norris model-checker benchmarks [37]",
        class_note: "env(nocas) with wait loops — remodelled: env(nocas, acyc)",
        expected: Expected::Unsafe,
        system: b.build(env, vec![]),
    }
}

/// `dekker` (from `dekker-fences` [37], modelled fence-free — see the
/// crate docs): the first round of Dekker's entry protocol. Without the
/// SC fences of the original, RA lets both roles in — **unsafe**.
pub fn dekker() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let flag0 = b.var("flag0");
    let flag1 = b.var("flag1");
    let c0 = b.var("c0");
    let c1 = b.var("c1");

    let mut p = b.program("dekker");
    let role =
        |p: &mut ProgramBuilder, my_flag: VarId, other_flag: VarId, c_me: VarId, c_other: VarId| {
            let r = p.reg("r");
            p.store(my_flag, 1);
            p.load(r, other_flag);
            p.assume_eq(r, 0); // proceed straight into the CS
            critical_section(p, c_me, c_other);
        };
    let r0 = p.block(|p| role(p, flag0, flag1, c0, c1));
    let r1 = p.block(|p| role(p, flag1, flag0, c1, c0));
    p.choice_of(vec![r0, r1]);
    let env = p.finish();
    Benchmark {
        name: "dekker",
        source: "Norris model-checker benchmarks [37] (fences elided)",
        class_note: "env(nocas, acyc)",
        expected: Expected::Unsafe,
        system: b.build(env, vec![]),
    }
}

/// `lamport-2-ra` (Lahav–Margalit): Lamport's fast mutex, 2 roles. The
/// `x`/`y` handshake is broken under RA — **unsafe**.
pub fn lamport_2_ra() -> Benchmark {
    lamport(2, "lamport-2-ra")
}

/// `lamport-2-3-ra` (Lahav–Margalit): the 3-role variant — **unsafe**.
pub fn lamport_2_3_ra() -> Benchmark {
    lamport(3, "lamport-2-3-ra")
}

fn lamport(roles: u32, name: &'static str) -> Benchmark {
    // Lamport's fast mutex over registers x, y (role ids 1..=roles,
    // domain must hold them): entry: x := id; if y != 0 retry (here:
    // block); y := id; if x != id: check x... fast path modelled:
    //   x := id; y := id; r <- x; assume r == id; CS.
    let dom = roles + 2;
    let mut b = SystemBuilder::new(dom);
    let x = b.var("x");
    let y = b.var("y");
    let cs: Vec<VarId> = (1..=roles).map(|i| b.var(&format!("c{i}"))).collect();

    let mut p = b.program("lamport");
    let mut alts = Vec::new();
    for id in 1..=roles {
        let c_me = cs[(id - 1) as usize];
        let others: Vec<VarId> = (1..=roles)
            .filter(|&j| j != id)
            .map(|j| cs[(j - 1) as usize])
            .collect();
        let alt = p.block(|p| {
            let r = p.reg("r");
            let rc = p.reg("rc");
            p.store(x, id);
            p.load(r, y);
            p.assume_eq(r, 0);
            p.store(y, id);
            p.load(r, x);
            p.assume(Expr::reg(r).eq(Expr::val(id)));
            // critical section
            p.store(c_me, 1);
            let mut detect = Vec::new();
            for other in others {
                detect.push(p.block(|p| {
                    p.load(rc, other);
                    p.assume_eq(rc, 1);
                    p.assert_false();
                }));
            }
            detect.push(parra_program::stmt::Com::Skip);
            p.choice_of(detect);
        });
        alts.push(alt);
    }
    p.choice_of(alts);
    let env = p.finish();
    Benchmark {
        name,
        source: "Lahav–Margalit, PLDI 2019 [34]",
        class_note: "env(nocas)",
        expected: Expected::Unsafe,
        system: b.build(env, vec![]),
    }
}

/// A CAS spinlock: the correct-under-RA contrast. Lock acquisition is a
/// `cas(lock, 0, 1)` by distinguished threads; adjacency makes it atomic,
/// so the critical sections exclude each other — **safe**.
pub fn spinlock_cas() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let lock = b.var("lock");
    let c1 = b.var("c1");
    let c2 = b.var("c2");

    let env = {
        let mut p = b.program("observer");
        let r = p.reg("r");
        // Passive observers only read the lock.
        p.load(r, lock);
        p.finish()
    };
    let locker = |name: &str, c_me: VarId, c_other: VarId| {
        let mut p = b.program(name);
        let r = p.reg("r");
        p.cas(lock, 0, 1);
        p.store(c_me, 1);
        p.choice(
            |p| {
                p.load(r, c_other);
                p.assume_eq(r, 1);
                p.assert_false();
            },
            |p| {
                p.skip();
            },
        );
        p.finish()
    };
    let d1 = locker("locker1", c1, c2);
    let d2 = locker("locker2", c2, c1);
    Benchmark {
        name: "spinlock-cas",
        source: "folklore (contrast benchmark)",
        class_note: "env(nocas, acyc) ‖ dis1(acyc) ‖ dis2(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d1, d2]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    #[test]
    fn mutex_benchmarks_classify() {
        for bench in [
            peterson_ra(),
            peterson_ra_bratosz(),
            dekker(),
            lamport_2_ra(),
            lamport_2_3_ra(),
            spinlock_cas(),
        ] {
            let class = SystemClass::of(&bench.system);
            assert!(class.env.nocas, "{}", bench.name);
            assert!(class.env.acyc, "{}", bench.name);
            assert!(class.is_decidable_fragment(), "{}", bench.name);
        }
    }

    #[test]
    fn spinlock_uses_cas_in_dis_only() {
        let b = spinlock_cas();
        assert!(b.system.env.cfa().is_cas_free());
        assert!(b.system.dis.iter().all(|d| !d.cfa().is_cas_free()));
    }

    #[test]
    fn lamport_role_counts() {
        assert!(lamport_2_3_ra().system.n_vars() > lamport_2_ra().system.n_vars());
    }
}
