//! Messages `(x, d, vw) ∈ Msgs = Var × Dom × View`.
//!
//! Stores generate messages; the shared memory is a pool of them. A
//! message's view records what its generating thread had observed, with the
//! stored variable's own coordinate being the message's timestamp.

use crate::timestamp::Timestamp;
use crate::view::View;
use parra_program::ident::VarId;
use parra_program::value::Val;
use std::fmt;

/// A message `(x, d, vw)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Message {
    /// The variable written.
    pub var: VarId,
    /// The value written.
    pub val: Val,
    /// The attached view; `view.get(var)` is the message's timestamp.
    pub view: View,
}

impl Message {
    /// Creates a message.
    pub fn new(var: VarId, val: Val, view: View) -> Message {
        Message { var, val, view }
    }

    /// The initial message for variable `x`: value `d_init`, zero view.
    pub fn initial(x: VarId, n_vars: usize) -> Message {
        Message::new(x, Val::INIT, View::zero(n_vars))
    }

    /// The message's timestamp: its view's coordinate for its own variable.
    pub fn timestamp(&self) -> Timestamp {
        self.view.get(self.var)
    }

    /// Whether this is an initial message (timestamp zero).
    pub fn is_initial(&self) -> bool {
        self.timestamp().is_zero()
    }

    /// The non-conflict relation `msg₁ # msg₂` (Section 3.2): different
    /// variables, or different timestamps, or both timestamps zero.
    pub fn non_conflicting(&self, other: &Message) -> bool {
        self.var != other.var
            || self.timestamp() != other.timestamp()
            || (self.timestamp().is_zero() && other.timestamp().is_zero())
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.var, self.val, self.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(var: u32, val: u32, ts: &[u64]) -> Message {
        Message::new(
            VarId(var),
            Val(val),
            View::from_times(ts.iter().map(|&t| Timestamp(t)).collect()),
        )
    }

    #[test]
    fn timestamp_is_own_coordinate() {
        let m = msg(1, 3, &[5, 7]);
        assert_eq!(m.timestamp(), Timestamp(7));
        assert!(!m.is_initial());
    }

    #[test]
    fn initial_message() {
        let m = Message::initial(VarId(0), 2);
        assert!(m.is_initial());
        assert_eq!(m.val, Val::INIT);
        assert!(m.view.is_zero());
    }

    #[test]
    fn conflict_same_var_same_ts() {
        let a = msg(0, 1, &[3, 0]);
        let b = msg(0, 2, &[3, 9]);
        assert!(!a.non_conflicting(&b));
    }

    #[test]
    fn non_conflict_different_var_or_ts() {
        let a = msg(0, 1, &[3, 0]);
        assert!(a.non_conflicting(&msg(1, 1, &[3, 3]))); // different var
        assert!(a.non_conflicting(&msg(0, 1, &[4, 0]))); // different ts
    }

    #[test]
    fn both_zero_timestamps_do_not_conflict() {
        let a = msg(0, 0, &[0, 0]);
        let b = msg(0, 0, &[0, 5]);
        assert!(a.non_conflicting(&b));
        assert!(b.non_conflicting(&a));
    }

    #[test]
    fn display() {
        assert_eq!(msg(0, 4, &[7, 10]).to_string(), "[x0, 4, ⟨7,10⟩]");
    }
}
