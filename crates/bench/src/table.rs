//! Minimal fixed-width table rendering for the experiment reports.

/// A simple text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(c);
                for _ in c.chars().count()..widths[i] + 2 {
                    line.push(' ');
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns align.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }
}
