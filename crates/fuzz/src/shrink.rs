//! Delta-debugging shrinker: minimizes a failing [`ParamSystem`] while
//! re-checking the failure after every candidate edit.
//!
//! The shrinker is greedy: it repeatedly tries candidate reductions —
//! drop a `dis` thread, replace a statement subtree with `skip`, commit
//! to one branch of a `choice`, peel a `loop` to its body, shrink the
//! data domain to the literals actually used — and accepts a candidate
//! only if it is strictly smaller *and* the failure predicate still
//! holds on it (guarding against "fixing" the bug away). It runs to a
//! fixpoint: the result fails the oracle and no single candidate edit
//! both shrinks it and preserves the failure.

use parra_program::expr::Expr;
use parra_program::stmt::Com;
use parra_program::system::ParamSystem;
use parra_program::value::Dom;

use crate::oracle::Oracle;

/// The outcome of shrinking one failing system.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized system (still failing the predicate).
    pub sys: ParamSystem,
    /// Accepted shrink steps (0 means the input was already minimal).
    pub steps: usize,
    /// Candidate edits evaluated (accepted or not).
    pub candidates_tried: usize,
}

/// A delta-debugging minimizer over a failure predicate.
///
/// The predicate returns `true` while the system still exhibits the bug;
/// wrap an [`Oracle`] with [`Shrinker::for_oracle`] for the common case.
pub struct Shrinker<'a> {
    fails: Box<dyn Fn(&ParamSystem) -> bool + 'a>,
}

impl<'a> Shrinker<'a> {
    /// A shrinker over an arbitrary failure predicate.
    pub fn new(fails: impl Fn(&ParamSystem) -> bool + 'a) -> Shrinker<'a> {
        Shrinker {
            fails: Box::new(fails),
        }
    }

    /// A shrinker that preserves "`oracle` reports `Fail`".
    pub fn for_oracle(oracle: &'a dyn Oracle) -> Shrinker<'a> {
        Shrinker::new(move |sys| oracle.check(sys).is_fail())
    }

    /// Minimizes `sys`. If `sys` does not fail the predicate, this is a
    /// no-op (`steps == 0` and the system is returned unchanged).
    pub fn shrink(&self, sys: &ParamSystem) -> ShrinkResult {
        let mut current = sys.clone();
        let mut steps = 0;
        let mut candidates_tried = 0;
        if !(self.fails)(&current) {
            return ShrinkResult {
                sys: current,
                steps,
                candidates_tried,
            };
        }
        loop {
            let size = system_size(&current);
            let mut advanced = false;
            for candidate in candidates(&current) {
                if system_size(&candidate) >= size {
                    continue;
                }
                candidates_tried += 1;
                if (self.fails)(&candidate) {
                    current = candidate;
                    steps += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        ShrinkResult {
            sys: current,
            steps,
            candidates_tried,
        }
    }
}

/// The size metric minimized by the shrinker: total statement-tree weight
/// plus the domain size (so domain shrinks count as progress).
///
/// This is *not* [`Com::instruction_count`] — that metric takes the `max`
/// over `choice` branches (its job is timestamp budgeting), under which
/// collapsing a choice to its longer branch is not progress. Here every
/// non-`skip` leaf weighs 1 and `choice`/`loop` structure weighs 1, so
/// each candidate edit strictly decreases the metric.
pub fn system_size(sys: &ParamSystem) -> usize {
    fn weight(c: &Com) -> usize {
        match c {
            Com::Skip => 0,
            Com::Seq(a, b) => weight(a) + weight(b),
            Com::Choice(a, b) => 1 + weight(a) + weight(b),
            Com::Star(b) => 1 + weight(b),
            _ => 1,
        }
    }
    let stmts: usize = std::iter::once(&sys.env)
        .chain(sys.dis.iter())
        .map(|p| weight(p.com()))
        .sum();
    stmts + sys.dom.size() as usize
}

/// All single-edit reduction candidates of `sys`, cheapest-first: thread
/// drops, then domain shrink, then per-program statement reductions.
fn candidates(sys: &ParamSystem) -> Vec<ParamSystem> {
    let mut out = Vec::new();
    // Drop one dis thread.
    for i in 0..sys.dis.len() {
        let mut dis = sys.dis.clone();
        dis.remove(i);
        out.push(ParamSystem::new(
            sys.dom,
            sys.vars.clone(),
            sys.env.clone(),
            dis,
        ));
    }
    // Shrink the domain to the literals actually used (init 0 and the
    // largest constant mentioned anywhere; at least 2 so asserts keep a
    // goal value available).
    let used = max_literal(sys);
    let wanted = (used + 1).max(2);
    if wanted < sys.dom.size() {
        out.push(ParamSystem::new(
            Dom::new(wanted),
            sys.vars.clone(),
            sys.env.clone(),
            sys.dis.clone(),
        ));
    }
    // Statement-level reductions, one program at a time.
    for (idx, p) in std::iter::once(&sys.env).chain(sys.dis.iter()).enumerate() {
        for com in com_variants(p.com()) {
            let reduced = p.with_com(cleanup(com));
            let (env, dis) = if idx == 0 {
                (reduced, sys.dis.clone())
            } else {
                let mut dis = sys.dis.clone();
                dis[idx - 1] = reduced;
                (sys.env.clone(), dis)
            };
            out.push(ParamSystem::new(sys.dom, sys.vars.clone(), env, dis));
        }
    }
    out
}

/// The largest constant mentioned in any program of `sys`.
fn max_literal(sys: &ParamSystem) -> u32 {
    fn in_expr(e: &Expr, max: &mut u32) {
        match e {
            Expr::Const(v) => *max = (*max).max(v.0),
            Expr::Reg(_) => {}
            Expr::Unop(_, a) => in_expr(a, max),
            Expr::Binop(_, a, b) => {
                in_expr(a, max);
                in_expr(b, max);
            }
        }
    }
    fn in_com(c: &Com, max: &mut u32) {
        match c {
            Com::Skip | Com::AssertFalse | Com::Load(_, _) => {}
            Com::Assume(e) | Com::Assign(_, e) | Com::Store(_, e) => in_expr(e, max),
            Com::Cas(_, e1, e2) => {
                in_expr(e1, max);
                in_expr(e2, max);
            }
            Com::Seq(a, b) | Com::Choice(a, b) => {
                in_com(a, max);
                in_com(b, max);
            }
            Com::Star(b) => in_com(b, max),
        }
    }
    let mut max = 0;
    for p in std::iter::once(&sys.env).chain(sys.dis.iter()) {
        in_com(p.com(), &mut max);
    }
    max
}

/// Every statement tree obtained from `c` by one local reduction:
/// any subtree to `skip`, a `choice` to either branch, a `loop` to its
/// body.
fn com_variants(c: &Com) -> Vec<Com> {
    let mut out = Vec::new();
    if !matches!(c, Com::Skip) {
        out.push(Com::Skip);
    }
    match c {
        Com::Seq(a, b) => {
            for v in com_variants(a) {
                out.push(Com::Seq(Box::new(v), b.clone()));
            }
            for v in com_variants(b) {
                out.push(Com::Seq(a.clone(), Box::new(v)));
            }
        }
        Com::Choice(l, r) => {
            out.push((**l).clone());
            out.push((**r).clone());
            for v in com_variants(l) {
                out.push(Com::Choice(Box::new(v), r.clone()));
            }
            for v in com_variants(r) {
                out.push(Com::Choice(l.clone(), Box::new(v)));
            }
        }
        Com::Star(b) => {
            out.push((**b).clone());
            for v in com_variants(b) {
                out.push(Com::Star(Box::new(v)));
            }
        }
        _ => {}
    }
    out
}

/// Removes `skip` detritus left by subtree replacement: `skip; c → c`,
/// `c; skip → c`, `loop { skip } → skip`, `choice` of two `skip`s →
/// `skip`.
fn cleanup(c: Com) -> Com {
    match c {
        Com::Seq(a, b) => match (cleanup(*a), cleanup(*b)) {
            (Com::Skip, x) | (x, Com::Skip) => x,
            (a, b) => Com::Seq(Box::new(a), Box::new(b)),
        },
        Com::Choice(l, r) => match (cleanup(*l), cleanup(*r)) {
            (Com::Skip, Com::Skip) => Com::Skip,
            (l, r) => Com::Choice(Box::new(l), Box::new(r)),
        },
        Com::Star(b) => match cleanup(*b) {
            Com::Skip => Com::Skip,
            b => Com::Star(Box::new(b)),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;
    use parra_program::ident::VarId;

    /// A cluttered system whose "bug" is: some dis thread stores 1 to v0.
    fn cluttered() -> ParamSystem {
        let mut b = SystemBuilder::new(4);
        let v0 = b.var("v0");
        let v1 = b.var("v1");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, v1).store(v1, Expr::val(2)).assume_eq(r, 3);
        let env = env.finish();
        let mut d0 = b.program("d0");
        d0.store(v1, Expr::val(3)).skip();
        let d0 = d0.finish();
        let mut d1 = b.program("d1");
        let s = d1.reg("s");
        d1.load(s, v1);
        d1.if_then_else(
            Expr::reg(s).eq(Expr::val(2)),
            |d| {
                d.store(v0, Expr::val(1));
            },
            |d| {
                d.store(v0, Expr::val(2));
            },
        );
        let d1 = d1.finish();
        b.build(env, vec![d0, d1])
    }

    fn stores_one_to(sys: &ParamSystem, var: VarId) -> bool {
        fn in_com(c: &Com, var: VarId) -> bool {
            match c {
                Com::Store(x, Expr::Const(v)) => *x == var && v.0 == 1,
                Com::Seq(a, b) | Com::Choice(a, b) => in_com(a, var) || in_com(b, var),
                Com::Star(b) => in_com(b, var),
                _ => false,
            }
        }
        sys.dis.iter().any(|p| in_com(p.com(), var))
    }

    #[test]
    fn seeded_failure_shrinks_to_the_known_minimum() {
        let sys = cluttered();
        let v0 = VarId(sys.vars.lookup("v0").unwrap());
        let shrinker = Shrinker::new(|s: &ParamSystem| stores_one_to(s, v0));
        let result = shrinker.shrink(&sys);
        assert!(result.steps > 0, "nothing was shrunk");
        assert!(stores_one_to(&result.sys, v0), "shrinker lost the bug");
        // Known minimum: empty env, one dis thread holding only `v0 := 1`,
        // domain shrunk to {0, 1}.
        assert_eq!(result.sys.env.com().instruction_count(), 0);
        assert_eq!(result.sys.dis.len(), 1);
        assert_eq!(result.sys.dis[0].com(), &Com::Store(v0, Expr::val(1)));
        assert_eq!(result.sys.dom.size(), 2);
    }

    #[test]
    fn passing_system_is_a_no_op() {
        let sys = cluttered();
        let shrinker = Shrinker::new(|_: &ParamSystem| false);
        let result = shrinker.shrink(&sys);
        assert_eq!(result.steps, 0);
        assert_eq!(result.candidates_tried, 0);
        assert_eq!(result.sys, sys);
    }

    #[test]
    fn shrunk_system_is_a_fixpoint() {
        let sys = cluttered();
        let v0 = VarId(sys.vars.lookup("v0").unwrap());
        let fails = |s: &ParamSystem| stores_one_to(s, v0);
        let once = Shrinker::new(fails).shrink(&sys);
        let twice = Shrinker::new(fails).shrink(&once.sys);
        assert_eq!(twice.steps, 0, "shrinking was not idempotent");
        assert_eq!(twice.sys, once.sys);
    }
}
