//! Configurations `CF = Mem × LCFMap` and system instances.
//!
//! The paper's `LCFMap` assigns a local configuration to every thread
//! identifier; all but finitely many are at the initial configuration. An
//! [`Instance`] fixes the number of `env` threads, so a [`Config`] can use a
//! dense vector of local configurations.

use crate::memory::Memory;
use crate::view::View;
use parra_program::cfg::Loc;
use parra_program::expr::RegVal;
use parra_program::system::{ParamSystem, Program, ThreadKind};
use std::fmt;
use std::sync::Arc;

/// A thread identifier within an instance. Threads `0..n_env` are `env`
/// threads; threads `n_env..n_env+n_dis` are the distinguished threads in
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "th{}", self.0)
    }
}

/// A thread-local configuration `lcf = (pc, rv, vw) ∈ LCF`.
///
/// The paper's `Com` component is represented by the program counter into
/// the thread's CFA.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalConfig {
    /// Program counter.
    pub loc: Loc,
    /// Register valuation.
    pub regs: RegVal,
    /// The thread's view.
    pub view: View,
}

impl LocalConfig {
    /// The initial local configuration `lcf_init` for `program`.
    pub fn initial(program: &Program, n_vars: usize) -> LocalConfig {
        LocalConfig {
            loc: program.cfa().entry(),
            regs: RegVal::new(program.n_regs() as usize),
            view: View::zero(n_vars),
        }
    }

    /// Whether the thread has terminated (reached the CFA exit).
    pub fn is_terminated(&self, program: &Program) -> bool {
        self.loc == program.cfa().exit()
    }
}

/// An *instance* of a parameterized system: the system plus a fixed number
/// of `env` threads.
#[derive(Debug, Clone)]
pub struct Instance {
    system: Arc<ParamSystem>,
    n_env: usize,
}

impl Instance {
    /// Creates an instance with `n_env` environment threads.
    pub fn new(system: ParamSystem, n_env: usize) -> Instance {
        Instance {
            system: Arc::new(system),
            n_env,
        }
    }

    /// Creates an instance sharing an existing system handle.
    pub fn from_arc(system: Arc<ParamSystem>, n_env: usize) -> Instance {
        Instance { system, n_env }
    }

    /// The underlying system.
    pub fn system(&self) -> &ParamSystem {
        &self.system
    }

    /// Number of `env` threads in this instance.
    pub fn n_env(&self) -> usize {
        self.n_env
    }

    /// Total number of threads.
    pub fn n_threads(&self) -> usize {
        self.n_env + self.system.dis.len()
    }

    /// Number of shared variables.
    pub fn n_vars(&self) -> usize {
        self.system.n_vars() as usize
    }

    /// The kind of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn kind(&self, tid: ThreadId) -> ThreadKind {
        assert!(tid.0 < self.n_threads(), "thread {tid} out of range");
        if tid.0 < self.n_env {
            ThreadKind::Env
        } else {
            ThreadKind::Dis(tid.0 - self.n_env)
        }
    }

    /// The program executed by thread `tid`.
    pub fn program(&self, tid: ThreadId) -> &Program {
        self.system.program(self.kind(tid))
    }

    /// All thread identifiers.
    pub fn threads(&self) -> impl Iterator<Item = ThreadId> {
        (0..self.n_threads()).map(ThreadId)
    }

    /// The initial configuration `cf_init = (Mem_init, lcfm_init)`.
    pub fn initial_config(&self) -> Config {
        let n_vars = self.n_vars();
        Config {
            memory: Memory::initial(n_vars),
            threads: self
                .threads()
                .map(|tid| LocalConfig::initial(self.program(tid), n_vars))
                .collect(),
        }
    }
}

/// A global configuration `cf = (m, lcfm)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    /// The shared memory (message pool).
    pub memory: Memory,
    /// Local configurations, indexed by [`ThreadId`].
    pub threads: Vec<LocalConfig>,
}

impl Config {
    /// The local configuration of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread(&self, tid: ThreadId) -> &LocalConfig {
        &self.threads[tid.0]
    }

    /// Mutable access to the local configuration of thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread_mut(&mut self, tid: ThreadId) -> &mut LocalConfig {
        &mut self.threads[tid.0]
    }

    /// Configuration addition `cf₁ ⊕ cf₂` (Section 3.2): memories are
    /// united; each thread takes its `cf₁` state unless that is still
    /// initial, in which case it takes the `cf₂` state.
    ///
    /// # Panics
    ///
    /// Panics if the configurations have different thread counts or
    /// variable counts.
    pub fn add(&self, other: &Config, instance: &Instance) -> Config {
        assert_eq!(
            self.threads.len(),
            other.threads.len(),
            "adding configurations of different instances"
        );
        let n_vars = instance.n_vars();
        let threads = self
            .threads
            .iter()
            .zip(&other.threads)
            .enumerate()
            .map(|(i, (a, b))| {
                let init = LocalConfig::initial(instance.program(ThreadId(i)), n_vars);
                if *a != init {
                    a.clone()
                } else {
                    b.clone()
                }
            })
            .collect();
        Config {
            memory: self.memory.union(&other.memory),
            threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;

    fn sys_with_dis() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, x);
        let env = env.finish();
        let mut d = b.program("d");
        d.store(x, 1);
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn instance_thread_layout() {
        let inst = Instance::new(sys_with_dis(), 3);
        assert_eq!(inst.n_threads(), 4);
        assert_eq!(inst.kind(ThreadId(0)), ThreadKind::Env);
        assert_eq!(inst.kind(ThreadId(2)), ThreadKind::Env);
        assert_eq!(inst.kind(ThreadId(3)), ThreadKind::Dis(0));
        assert_eq!(inst.program(ThreadId(3)).name(), "d");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_panics() {
        let inst = Instance::new(sys_with_dis(), 1);
        inst.kind(ThreadId(2));
    }

    #[test]
    fn initial_config_shape() {
        let inst = Instance::new(sys_with_dis(), 2);
        let cf = inst.initial_config();
        assert_eq!(cf.threads.len(), 3);
        assert_eq!(cf.memory.len(), 1); // one var
        for tid in inst.threads() {
            let lcf = cf.thread(tid);
            assert_eq!(lcf.loc, inst.program(tid).cfa().entry());
            assert!(lcf.view.is_zero());
        }
    }

    #[test]
    fn addition_prefers_non_initial_threads() {
        let inst = Instance::new(sys_with_dis(), 1);
        let init = inst.initial_config();
        // cf1: thread 0 moved; cf2: thread 1 moved.
        let mut cf1 = init.clone();
        cf1.thread_mut(ThreadId(0)).loc = Loc(1);
        let mut cf2 = init.clone();
        cf2.thread_mut(ThreadId(1)).loc = Loc(1);
        let sum = cf1.add(&cf2, &inst);
        assert_eq!(sum.thread(ThreadId(0)).loc, Loc(1));
        assert_eq!(sum.thread(ThreadId(1)).loc, Loc(1));
        // initial config is neutral: cf ⊕ cf_init = cf
        assert_eq!(cf1.add(&init, &inst), cf1);
    }
}
