//! The paper's running example, end to end: Figure 1 (a concrete RA
//! execution), Figure 3 (the same system under the simplified semantics),
//! Figure 4/5 (the dependency graph with §4.3 costs).
//!
//! Run with: `cargo run --example producer_consumer`

use parra::litmus::sync::producer_consumer;
use parra::program::value::Val;
use parra::ra::step::monotone_successors;
use parra::ra::{Instance, Trace};
use parra::simplified::cost::cost_of_graph;
use parra::simplified::depgraph::DepGraph;
use parra::simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra::simplified::state::Budget;

fn main() {
    figure1();
    figures_3_4_5(3);
}

/// Figure 1: replay a concrete RA execution of the two-thread snippet and
/// print the memory as it grows (m_init → m₁ → m₂).
fn figure1() {
    println!("=== Figure 1: a concrete RA execution ===\n");
    let (sys, _, _) = producer_consumer(1);
    let instance = Instance::new(sys, 1);
    let mut trace = Trace::new(instance);
    println!("m_init = {}", trace.last().memory);

    // Drive the run: consumer stores y := 1 (m₁); producer loads it,
    // passes the assume, stores x := 1 (m₂); consumer loads x.
    let mut memories = 1;
    while memories < 3 {
        let succs = monotone_successors(trace.instance(), trace.last());
        let Some(step) = succs.into_iter().next() else {
            break;
        };
        let before = trace.last().memory.len();
        trace.push(step).expect("enumerated step applies");
        if trace.last().memory.len() > before {
            println!("m_{memories}     = {}", trace.last().memory);
            memories += 1;
        }
    }
    println!();
}

/// Figures 3–5: the parameterized system under the simplified semantics.
/// The consumer can loop `z` times even though far fewer producer threads
/// exist (`z > l` feasibility, Figure 3); the dependency graph of the
/// witness carries the §4.3 costs, with cost(G) = z (Figure 5).
fn figures_3_4_5(z: usize) {
    println!("=== Figures 3–5: simplified semantics, z = {z} ===\n");
    let (sys, y, target_val) = producer_consumer(z);
    let budget = Budget::exact(&sys).expect("loop-free dis");
    let engine = Reachability::new(sys.clone(), budget.clone(), ReachLimits::default())
        .expect("env is CAS-free");
    let report = engine.run(SimpTarget::MessageGenerated(y, target_val));
    assert_eq!(report.outcome, ReachOutcome::Unsafe);
    println!(
        "goal message (y, {target_val}) generated: {} abstract states, {} worlds, \
         peak {} env messages",
        report.states, report.worlds, report.peak_env_msgs
    );

    let witness = report.witness.expect("unsafe verdicts carry a witness");
    println!("\nabstract memory at the goal:");
    for msg in witness.final_state.env_msgs.iter() {
        println!("  env message {msg}");
    }
    for var_slots in &witness.final_state.dis_msgs {
        for msg in var_slots.values() {
            println!("  dis message {msg}");
        }
    }

    // Figure 4/5: the dependency graph, cost-annotated.
    let graph = DepGraph::build(&sys, &budget, &witness);
    let goal = graph
        .find_message(y, Val(2))
        .expect("goal node in the graph");
    println!("\ndependency graph (dot):\n{}", graph.to_dot(&sys));
    println!("height(G)   = {}", graph.height());
    println!("max fan-in  = {}", graph.max_fan_in());
    println!(
        "cost(G)     = {} (= z = {z}: one env thread per consumer read — Figure 5)",
        cost_of_graph(&graph, goal)
    );
}
