//! The verifier facade: classification, goal transformation, engine
//! orchestration, statistics, and the §4.3 thread-count bound.

use crate::makep::{DatalogTarget, MakeP, MakePError, MakePLimits};
use parra_datalog::cache::schedule_from_database;
use parra_datalog::eval::Evaluator;
use parra_program::classify::{Complexity, SystemClass};
use parra_program::system::ParamSystem;
use parra_program::transform;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_simplified::cost::cost_of_graph;
use parra_simplified::depgraph::DepGraph;
use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
use parra_simplified::state::Budget;
use std::fmt;
use std::time::{Duration, Instant};

/// Which decision procedure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The direct search on the simplified semantics (Section 3) —
    /// the default: exact for the decidable class.
    SimplifiedReach,
    /// The `makeP` Datalog encoding (Section 4): enumerate guesses,
    /// evaluate queries. Exact for the decidable class; also reports the
    /// cache-schedule peak (Lemmas 4.4/4.6).
    CacheDatalog,
    /// Bounded concrete-RA exploration of instances — an
    /// under-approximation: can prove `Unsafe`, never `Safe`.
    BoundedConcrete,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Engine::SimplifiedReach => "simplified-reach",
            Engine::CacheDatalog => "cache-datalog",
            Engine::BoundedConcrete => "bounded-concrete",
        };
        f.write_str(s)
    }
}

/// The verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No instance of any size reaches an assertion violation.
    Safe,
    /// Some instance reaches a violation.
    Unsafe,
    /// The engine could not decide (bounds hit, or an inherently
    /// incomplete engine found nothing).
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Safe => "SAFE",
            Verdict::Unsafe => "UNSAFE",
            Verdict::Unknown => "UNKNOWN",
        };
        f.write_str(s)
    }
}

/// Statistics of a run (fields are engine-dependent; unused ones are 0).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Saturated abstract states (SimplifiedReach) or canonical concrete
    /// states (BoundedConcrete).
    pub states: usize,
    /// Pre-closure worlds explored (SimplifiedReach).
    pub worlds: usize,
    /// Peak env-message set size (SimplifiedReach).
    pub peak_env_msgs: usize,
    /// makeP guesses evaluated (CacheDatalog).
    pub guesses: usize,
    /// Ground atoms derived in the successful (or largest) Datalog run.
    pub datalog_atoms: usize,
    /// Rules in the emitted Datalog program (CacheDatalog).
    pub datalog_rules: usize,
    /// Cache-schedule peak over intensional atoms (CacheDatalog, unsafe
    /// runs) — the empirical Lemma 4.4 number.
    pub cache_peak: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// The result of a verification.
#[derive(Debug, Clone)]
pub struct VerificationResult {
    /// The verdict.
    pub verdict: Verdict,
    /// The engine that produced it.
    pub engine: Engine,
    /// Run statistics.
    pub stats: Stats,
    /// For `Unsafe` via [`Engine::SimplifiedReach`]: the §4.3 bound on the
    /// number of `env` threads sufficient to exhibit the bug.
    pub env_thread_bound: Option<u64>,
    /// For `Unsafe` via [`Engine::SimplifiedReach`]: a human-readable
    /// witness (the dis steps between saturations).
    pub witness_lines: Vec<String>,
    /// Notes (approximations applied, limits hit).
    pub notes: Vec<String>,
}

/// Options controlling verification.
#[derive(Debug, Clone, Copy)]
pub struct VerifierOptions {
    /// Unroll `dis` loops to this depth before verification (the
    /// bounded-model-checking usage of Section 4); `None` requires `dis`
    /// to be loop-free already.
    pub unroll_dis: Option<usize>,
    /// Limits for the simplified-semantics search.
    pub reach_limits: ReachLimits,
    /// Limits for makeP.
    pub makep_limits: MakePLimits,
    /// Max `env` threads and exploration limits for the concrete baseline.
    pub concrete_max_env: usize,
    /// Concrete exploration limits.
    pub concrete_limits: ExploreLimits,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            unroll_dis: None,
            reach_limits: ReachLimits::default(),
            makep_limits: MakePLimits::default(),
            concrete_max_env: 4,
            concrete_limits: ExploreLimits::default(),
        }
    }
}

/// Errors preparing a verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// The system is outside every supported class (env uses CAS).
    Undecidable(Complexity),
    /// `dis` threads have loops and no unroll bound was given.
    NeedsUnrolling,
    /// makeP rejected the system.
    MakeP(MakePError),
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::Undecidable(c) => write!(
                f,
                "system class is {c}: parameterized safety verification is not \
                 supported (Theorem 1.1)"
            ),
            VerifierError::NeedsUnrolling => write!(
                f,
                "dis threads have loops; pass VerifierOptions::unroll_dis for \
                 bounded model checking"
            ),
            VerifierError::MakeP(e) => write!(f, "makeP: {e}"),
        }
    }
}

impl std::error::Error for VerifierError {}

/// The verifier: owns the (goal-transformed) system and dispatches engines.
#[derive(Debug, Clone)]
pub struct Verifier {
    original_class: SystemClass,
    goal: transform::GoalSystem,
    budget: Budget,
    options: VerifierOptions,
    notes: Vec<String>,
}

impl Verifier {
    /// Prepares a verifier: classifies the system, unrolls `dis` loops if
    /// requested, and applies the `assert false ↦ x# := d#` goal
    /// transformation (Section 4.1).
    ///
    /// # Errors
    ///
    /// See [`VerifierError`].
    pub fn new(sys: &ParamSystem, options: VerifierOptions) -> Result<Verifier, VerifierError> {
        let original_class = SystemClass::of(sys);
        if !original_class.env.nocas {
            return Err(VerifierError::Undecidable(original_class.complexity()));
        }
        let mut notes = Vec::new();
        let sys = if original_class.dis.iter().all(|d| d.acyc) {
            sys.clone()
        } else {
            match options.unroll_dis {
                Some(bound) => {
                    notes.push(format!(
                        "dis loops unrolled to depth {bound}: Safe verdicts are \
                         relative to the unrolling (bounded model checking)"
                    ));
                    transform::unroll_dis(sys, bound)
                }
                None => return Err(VerifierError::NeedsUnrolling),
            }
        };
        let goal = transform::assert_to_goal(&sys);
        let budget = Budget::exact(&goal.system)
            .expect("dis is loop-free after unrolling");
        Ok(Verifier {
            original_class,
            goal,
            budget,
            options,
            notes,
        })
    }

    /// The class of the original system.
    pub fn class(&self) -> &SystemClass {
        &self.original_class
    }

    /// The goal-transformed system the engines run on.
    pub fn goal_system(&self) -> &ParamSystem {
        &self.goal.system
    }

    /// The timestamp budget in use.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Runs the selected engine.
    pub fn run(&self, engine: Engine) -> VerificationResult {
        let start = Instant::now();
        let mut result = match engine {
            Engine::SimplifiedReach => self.run_simplified(),
            Engine::CacheDatalog => self.run_datalog(),
            Engine::BoundedConcrete => self.run_concrete(),
        };
        result.stats.duration = start.elapsed();
        result.notes.extend(self.notes.iter().cloned());
        result
    }

    fn trivially_safe(&self, engine: Engine) -> Option<VerificationResult> {
        if self.goal.had_assert {
            return None;
        }
        Some(VerificationResult {
            verdict: Verdict::Safe,
            engine,
            stats: Stats::default(),
            env_thread_bound: None,
            witness_lines: vec![],
            notes: vec!["program contains no assertions".into()],
        })
    }

    fn run_simplified(&self) -> VerificationResult {
        if let Some(r) = self.trivially_safe(Engine::SimplifiedReach) {
            return r;
        }
        let sys = &self.goal.system;
        let engine = Reachability::new(sys.clone(), self.budget.clone(), self.options.reach_limits)
            .expect("env CAS-freedom checked in Verifier::new");
        let target = SimpTarget::MessageGenerated(self.goal.goal_var, self.goal.goal_val);
        let report = engine.run(target);
        let mut notes = Vec::new();
        let verdict = match report.outcome {
            ReachOutcome::Unsafe => Verdict::Unsafe,
            ReachOutcome::Safe => Verdict::Safe,
            ReachOutcome::Truncated => {
                notes.push("search limits hit; Safe could not be concluded".into());
                Verdict::Unknown
            }
        };
        let (env_thread_bound, witness_lines) = match &report.witness {
            Some(w) => {
                let graph = DepGraph::build(sys, &self.budget, w);
                let bound = graph
                    .find_message(self.goal.goal_var, self.goal.goal_val)
                    .map(|n| cost_of_graph(&graph, n));
                let lines = w
                    .dis_path
                    .iter()
                    .map(|s| {
                        let p = &sys.dis[s.thread];
                        let names = parra_program::pretty::Names::for_program(&sys.vars, p);
                        let instr = parra_program::pretty::instr_to_string(
                            &p.cfa().edges()[s.edge].instr,
                            names,
                        );
                        format!("dis{}: {}", s.thread + 1, instr)
                    })
                    .collect();
                (bound, lines)
            }
            None => (None, Vec::new()),
        };
        VerificationResult {
            verdict,
            engine: Engine::SimplifiedReach,
            stats: Stats {
                states: report.states,
                worlds: report.worlds,
                peak_env_msgs: report.peak_env_msgs,
                ..Stats::default()
            },
            env_thread_bound,
            witness_lines,
            notes,
        }
    }

    fn run_datalog(&self) -> VerificationResult {
        if let Some(r) = self.trivially_safe(Engine::CacheDatalog) {
            return r;
        }
        let sys = &self.goal.system;
        let target =
            DatalogTarget::MessageGenerated(self.goal.goal_var, self.goal.goal_val);
        let mk = match MakeP::new(sys, self.budget.clone(), self.options.makep_limits) {
            Ok(mk) => mk,
            Err(e) => {
                return VerificationResult {
                    verdict: Verdict::Unknown,
                    engine: Engine::CacheDatalog,
                    stats: Stats::default(),
                    env_thread_bound: None,
                    witness_lines: vec![],
                    notes: vec![format!("makeP not applicable: {e}")],
                }
            }
        };
        let guesses = match mk.guesses() {
            Ok(g) => g,
            Err(e) => {
                return VerificationResult {
                    verdict: Verdict::Unknown,
                    engine: Engine::CacheDatalog,
                    stats: Stats::default(),
                    env_thread_bound: None,
                    witness_lines: vec![],
                    notes: vec![format!("guess enumeration failed: {e}")],
                }
            }
        };
        let mut stats = Stats {
            guesses: guesses.len(),
            ..Stats::default()
        };

        // Guesses are independent query instances: evaluate them in
        // parallel, stopping the fleet as soon as one derives the goal.
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        struct GuessOutcome {
            rules: usize,
            atoms: usize,
            cache_peak: Option<usize>,
        }
        let found = std::sync::atomic::AtomicBool::new(false);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let outcomes: Vec<GuessOutcome> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    let mk = &mk;
                    let guesses = &guesses;
                    let found = &found;
                    let next = &next;
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            if found.load(std::sync::atomic::Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= guesses.len() {
                                break;
                            }
                            let (prog, goal) = mk.program(&guesses[i], target);
                            let db = Evaluator::new(&prog).run_until(Some(&goal));
                            let mut outcome = GuessOutcome {
                                rules: prog.rules().len(),
                                atoms: db.len(),
                                cache_peak: None,
                            };
                            if db.contains(&goal) {
                                // Lemma 4.6: read a bounded-cache schedule
                                // off the derivation, counting intensional
                                // atoms only.
                                if let Some(schedule) = schedule_from_database(&db, &goal)
                                {
                                    let edb = MakeP::edb_predicates(&prog);
                                    let mut cache = 0usize;
                                    let mut peak = 0usize;
                                    for step in &schedule.steps {
                                        match step {
                                            parra_datalog::cache::ScheduleStep::Add(a) => {
                                                if !edb.contains(&a.pred) {
                                                    cache += 1;
                                                    peak = peak.max(cache);
                                                }
                                            }
                                            parra_datalog::cache::ScheduleStep::Drop(a) => {
                                                if !edb.contains(&a.pred) {
                                                    cache -= 1;
                                                }
                                            }
                                        }
                                    }
                                    outcome.cache_peak = Some(peak);
                                } else {
                                    outcome.cache_peak = Some(0);
                                }
                                found.store(true, std::sync::atomic::Ordering::Relaxed);
                                local.push(outcome);
                                break;
                            }
                            local.push(outcome);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("guess worker panicked"))
                .collect()
        })
        .expect("crossbeam scope");

        let mut verdict = Verdict::Safe;
        for o in &outcomes {
            stats.datalog_rules = stats.datalog_rules.max(o.rules);
            stats.datalog_atoms = stats.datalog_atoms.max(o.atoms);
            if let Some(peak) = o.cache_peak {
                stats.cache_peak = peak;
                verdict = Verdict::Unsafe;
            }
        }
        VerificationResult {
            verdict,
            engine: Engine::CacheDatalog,
            stats,
            env_thread_bound: None,
            witness_lines: vec![],
            notes: vec![],
        }
    }

    fn run_concrete(&self) -> VerificationResult {
        if let Some(r) = self.trivially_safe(Engine::BoundedConcrete) {
            return r;
        }
        let sys = &self.goal.system;
        let mut stats = Stats::default();
        let mut exhausted_all = true;
        for n_env in 0..=self.options.concrete_max_env {
            let explorer = Explorer::new(
                Instance::new(sys.clone(), n_env),
                self.options.concrete_limits,
            );
            let report =
                explorer.run(Target::MessageGenerated(self.goal.goal_var, self.goal.goal_val));
            stats.states += report.states;
            match report.outcome {
                ExploreOutcome::Unsafe => {
                    return VerificationResult {
                        verdict: Verdict::Unsafe,
                        engine: Engine::BoundedConcrete,
                        stats,
                        env_thread_bound: Some(n_env as u64),
                        witness_lines: report
                            .witness
                            .unwrap_or_default()
                            .into_iter()
                            .map(|s| s.description)
                            .collect(),
                        notes: vec![format!("violation found with {n_env} env threads")],
                    }
                }
                ExploreOutcome::SafeExhausted => {}
                ExploreOutcome::SafeWithinBounds => exhausted_all = false,
            }
        }
        VerificationResult {
            verdict: Verdict::Unknown,
            engine: Engine::BoundedConcrete,
            stats,
            env_thread_bound: None,
            witness_lines: vec![],
            notes: vec![format!(
                "no violation up to {} env threads ({}); the engine cannot prove \
                 parameterized safety",
                self.options.concrete_max_env,
                if exhausted_all {
                    "each instance exhausted"
                } else {
                    "bounds hit"
                }
            )],
        }
    }

    /// Concretizes an `Unsafe` verdict: searches concrete-RA instances —
    /// up to the §4.3 thread bound of `result` (capped at `max_env`) —
    /// for an actual interleaving reaching the goal.
    ///
    /// This is the executable half of Theorem 3.4's soundness direction:
    /// an abstract bug replayed as a plain RA execution a user can read.
    /// Returns `None` if the verdict was not `Unsafe`, or if the bounded
    /// search cannot reproduce it within `max_env` threads and the default
    /// exploration limits (a larger instance or deeper search is needed).
    pub fn concretize(
        &self,
        result: &VerificationResult,
        max_env: usize,
    ) -> Option<ConcreteWitness> {
        if result.verdict != Verdict::Unsafe {
            return None;
        }
        let cap = result
            .env_thread_bound
            .map(|b| (b as usize).min(max_env))
            .unwrap_or(max_env);
        let sys = &self.goal.system;
        for n_env in 0..=cap {
            let explorer = Explorer::new(
                Instance::new(sys.clone(), n_env),
                self.options.concrete_limits,
            );
            let report = explorer.run(Target::MessageGenerated(
                self.goal.goal_var,
                self.goal.goal_val,
            ));
            if report.outcome == ExploreOutcome::Unsafe {
                return Some(ConcreteWitness {
                    n_env,
                    steps: report
                        .witness
                        .unwrap_or_default()
                        .into_iter()
                        .map(|s| s.description)
                        .collect(),
                });
            }
        }
        None
    }
}

/// A concrete-RA interleaving reproducing an abstract `Unsafe` verdict.
#[derive(Debug, Clone)]
pub struct ConcreteWitness {
    /// The number of `env` threads in the exhibiting instance.
    pub n_env: usize,
    /// The interleaving, one rendered instruction per step.
    pub steps: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;

    fn handshake(safe: bool) -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        if !safe {
            d.store(y, 1);
        }
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn all_engines_on_unsafe_handshake() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r1 = v.run(Engine::SimplifiedReach);
        assert_eq!(r1.verdict, Verdict::Unsafe);
        assert!(!r1.witness_lines.is_empty());
        assert!(r1.env_thread_bound.unwrap() >= 1);
        let r2 = v.run(Engine::CacheDatalog);
        assert_eq!(r2.verdict, Verdict::Unsafe);
        assert!(r2.stats.guesses >= 1);
        assert!(r2.stats.cache_peak >= 1);
        let r3 = v.run(Engine::BoundedConcrete);
        assert_eq!(r3.verdict, Verdict::Unsafe);
    }

    #[test]
    fn all_engines_on_safe_handshake() {
        let sys = handshake(true);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        assert_eq!(v.run(Engine::SimplifiedReach).verdict, Verdict::Safe);
        assert_eq!(v.run(Engine::CacheDatalog).verdict, Verdict::Safe);
        // The concrete engine can never prove parameterized safety.
        assert_eq!(v.run(Engine::BoundedConcrete).verdict, Verdict::Unknown);
    }

    #[test]
    fn assert_free_system_trivially_safe() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(Engine::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Safe);
        assert!(r.notes.iter().any(|n| n.contains("no assertions")));
    }

    #[test]
    fn env_cas_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1).assert_false();
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let err = Verifier::new(&sys, VerifierOptions::default()).unwrap_err();
        assert!(matches!(err, VerifierError::Undecidable(_)));
    }

    #[test]
    fn looping_dis_needs_unrolling() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        let mut d = b.program("d");
        let r = d.reg("r");
        d.star(|p| {
            p.load(r, x);
        });
        d.assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let err = Verifier::new(&sys, VerifierOptions::default()).unwrap_err();
        assert_eq!(err, VerifierError::NeedsUnrolling);
        // With unrolling it becomes checkable (and trivially unsafe: the
        // assert is reachable by exiting the loop immediately).
        let opts = VerifierOptions {
            unroll_dis: Some(2),
            ..Default::default()
        };
        let v = Verifier::new(&sys, opts).unwrap();
        let r = v.run(Engine::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Unsafe);
        assert!(r.notes.iter().any(|n| n.contains("unrolled")));
    }

    #[test]
    fn concretize_reproduces_abstract_bugs() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let abstract_result = v.run(Engine::SimplifiedReach);
        assert_eq!(abstract_result.verdict, Verdict::Unsafe);
        let concrete = v
            .concretize(&abstract_result, 4)
            .expect("the bug concretizes");
        assert!(concrete.n_env >= 1);
        assert!(concrete
            .steps
            .iter()
            .any(|s| s.contains("$goal := 1")));
        // Safe results do not concretize.
        let safe_sys = handshake(true);
        let vs = Verifier::new(&safe_sys, VerifierOptions::default()).unwrap();
        let safe = vs.run(Engine::SimplifiedReach);
        assert!(vs.concretize(&safe, 4).is_none());
    }

    /// Engine agreement on a CAS-heavy example.
    #[test]
    fn engines_agree_on_cas_example() {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 2);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r1 = v.run(Engine::SimplifiedReach);
        let r2 = v.run(Engine::CacheDatalog);
        assert_eq!(r1.verdict, Verdict::Unsafe);
        assert_eq!(r2.verdict, Verdict::Unsafe);
    }
}
