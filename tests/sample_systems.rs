//! The shipped `.ra` sample files parse, classify, and verify with the
//! documented verdicts — what a user of the CLI would see.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_program::classify::SystemClass;
use parra_program::parser::parse_system;

fn check(source: &str, name: &str, expected: Verdict) {
    let sys = parse_system(source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let class = SystemClass::of(&sys);
    assert!(class.is_decidable_fragment(), "{name}: {class}");
    let verifier =
        Verifier::new(&sys, VerifierOptions::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let result = verifier.run(EngineId::SimplifiedReach);
    assert_eq!(result.verdict, expected, "{name}");
}

#[test]
fn handshake_sample() {
    check(
        include_str!("../examples/systems/handshake.ra"),
        "handshake.ra",
        Verdict::Unsafe,
    );
}

#[test]
fn peterson_sample() {
    check(
        include_str!("../examples/systems/peterson.ra"),
        "peterson.ra",
        Verdict::Unsafe,
    );
}

#[test]
fn rcu_sample() {
    check(
        include_str!("../examples/systems/rcu.ra"),
        "rcu.ra",
        Verdict::Safe,
    );
}

#[test]
fn spinlock_sample() {
    check(
        include_str!("../examples/systems/spinlock.ra"),
        "spinlock.ra",
        Verdict::Safe,
    );
}

#[test]
fn barrier_sample() {
    check(
        include_str!("../examples/systems/barrier.ra"),
        "barrier.ra",
        Verdict::Safe,
    );
}

/// The CLI pretty-printer round-trips every sample.
#[test]
fn samples_roundtrip_through_pretty() {
    for (name, source) in [
        (
            "handshake",
            include_str!("../examples/systems/handshake.ra"),
        ),
        ("peterson", include_str!("../examples/systems/peterson.ra")),
        ("rcu", include_str!("../examples/systems/rcu.ra")),
        ("spinlock", include_str!("../examples/systems/spinlock.ra")),
        ("barrier", include_str!("../examples/systems/barrier.ra")),
    ] {
        let sys = parse_system(source).unwrap();
        let printed = parra_program::pretty::system_to_string(&sys);
        let reparsed = parse_system(&printed).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            parra_program::pretty::system_to_string(&reparsed),
            printed,
            "{name}"
        );
    }
}
