//! Parameterized systems `env(…) ‖ dis₁(…) ‖ … ‖ disₙ(…)`.
//!
//! A [`ParamSystem`] consists of one *environment* program, executed by an
//! unbounded number of indistinguishable `env` threads, and a fixed list of
//! *distinguished* programs, each executed by exactly one `dis` thread
//! (Section 1 of the paper). An *instance* fixes the number of `env`
//! threads.

use crate::cfg::Cfa;
use crate::ident::SymbolTable;
use crate::stmt::Com;
use crate::value::Dom;
use std::fmt;
use std::sync::Arc;

/// Whether a thread is an environment or a distinguished thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// One of the unboundedly many identical environment threads.
    Env,
    /// The `i`-th distinguished thread (0-based).
    Dis(usize),
}

impl fmt::Display for ThreadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadKind::Env => write!(f, "env"),
            ThreadKind::Dis(i) => write!(f, "dis{}", i + 1),
        }
    }
}

/// One program of the system: a named [`Com`] statement together with its
/// register namespace and compiled [`Cfa`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    regs: SymbolTable,
    com: Com,
    cfa: Arc<Cfa>,
}

impl Program {
    /// Creates a program, compiling it to a CFA.
    ///
    /// # Panics
    ///
    /// Panics if `com` mentions a register not in `regs` (see
    /// [`Cfa::compile`]).
    pub fn new(name: impl Into<String>, regs: SymbolTable, com: Com) -> Program {
        let n_regs = regs.len() as u32;
        let cfa = Arc::new(Cfa::compile(&com, n_regs));
        Program {
            name: name.into(),
            regs,
            com,
            cfa,
        }
    }

    /// The program's name (used in traces and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The register name table.
    pub fn regs(&self) -> &SymbolTable {
        &self.regs
    }

    /// Number of registers.
    pub fn n_regs(&self) -> u32 {
        self.regs.len() as u32
    }

    /// The source statement.
    pub fn com(&self) -> &Com {
        &self.com
    }

    /// The compiled control-flow automaton.
    pub fn cfa(&self) -> &Cfa {
        &self.cfa
    }

    /// Shared handle to the compiled CFA (engines keep these).
    pub fn cfa_arc(&self) -> Arc<Cfa> {
        Arc::clone(&self.cfa)
    }

    /// Replaces the body with `com`, recompiling. Used by the
    /// [`transform`](crate::transform) passes.
    pub fn with_com(&self, com: Com) -> Program {
        Program::new(self.name.clone(), self.regs.clone(), com)
    }

    /// Replaces the body and register table, recompiling.
    pub fn with_com_and_regs(&self, regs: SymbolTable, com: Com) -> Program {
        Program::new(self.name.clone(), regs, com)
    }
}

/// A parameterized system: shared variables, a data domain, one `env`
/// program and `n` `dis` programs.
///
/// # Example
///
/// ```
/// use parra_program::builder::SystemBuilder;
///
/// let mut b = SystemBuilder::new(2);
/// let x = b.var("x");
/// let mut env = b.program("env");
/// env.store(x, 1);
/// let env = env.finish();
/// let sys = b.build(env, vec![]);
/// assert_eq!(sys.n_vars(), 1);
/// assert!(sys.dis.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSystem {
    /// The finite data domain.
    pub dom: Dom,
    /// Shared-variable names.
    pub vars: SymbolTable,
    /// The program run by every `env` thread.
    pub env: Program,
    /// The programs run by the distinguished threads.
    pub dis: Vec<Program>,
}

impl ParamSystem {
    /// Creates a system.
    ///
    /// # Panics
    ///
    /// Panics if any program accesses a shared variable outside `vars`.
    pub fn new(dom: Dom, vars: SymbolTable, env: Program, dis: Vec<Program>) -> ParamSystem {
        let n_vars = vars.len() as u32;
        let check = |p: &Program| {
            for v in p.cfa().variables() {
                assert!(
                    v.0 < n_vars,
                    "program `{}` accesses undeclared shared variable {v}",
                    p.name()
                );
            }
        };
        check(&env);
        dis.iter().for_each(check);
        ParamSystem {
            dom,
            vars,
            env,
            dis,
        }
    }

    /// Number of shared variables.
    pub fn n_vars(&self) -> u32 {
        self.vars.len() as u32
    }

    /// The program run by thread kind `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` names a `dis` index out of range.
    pub fn program(&self, kind: ThreadKind) -> &Program {
        match kind {
            ThreadKind::Env => &self.env,
            ThreadKind::Dis(i) => &self.dis[i],
        }
    }

    /// All programs with their thread kinds: `env` first, then `dis₁ … disₙ`.
    pub fn programs(&self) -> impl Iterator<Item = (ThreadKind, &Program)> {
        std::iter::once((ThreadKind::Env, &self.env)).chain(
            self.dis
                .iter()
                .enumerate()
                .map(|(i, p)| (ThreadKind::Dis(i), p)),
        )
    }

    /// The combined size `|dis|` of all distinguished programs (instruction
    /// count), used in the paper's cache bound `Q₀ = |Dom||Var| + |dis|`.
    pub fn dis_size(&self) -> usize {
        self.dis.iter().map(|p| p.com().instruction_count()).sum()
    }

    /// The paper's `Q₀ = |Dom|·|Var| + |dis|` (Section 4.2).
    pub fn q0(&self) -> usize {
        (self.dom.size() as usize) * (self.n_vars() as usize) + self.dis_size()
    }

    /// The timestamp budget `T`: an upper bound on the number of integer
    /// timestamps `dis` threads can consume, i.e. the total number of store
    /// instructions loop-free `dis` threads can execute (Section 4.1).
    ///
    /// Returns `None` if some `dis` thread has a store inside a loop; direct
    /// engines then need an explicit budget.
    pub fn dis_timestamp_budget(&self) -> Option<usize> {
        self.dis
            .iter()
            .map(|p| p.cfa().max_stores_per_run())
            .sum::<Option<usize>>()
    }

    /// The per-variable timestamp budget: for each shared variable, an
    /// upper bound on the number of stores the loop-free `dis` threads
    /// can perform on it. Timestamps order stores per variable, so this
    /// (rather than the global sum) bounds the integer slots each
    /// variable needs.
    ///
    /// Returns `None` if some `dis` thread can store inside a loop.
    pub fn dis_timestamp_budget_per_var(&self) -> Option<Vec<usize>> {
        (0..self.n_vars())
            .map(|i| {
                self.dis
                    .iter()
                    .map(|p| p.cfa().max_stores_per_run_on(crate::ident::VarId(i)))
                    .sum::<Option<usize>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ident::{RegId, VarId};

    fn table(names: &[&str]) -> SymbolTable {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn store_prog(name: &str, var: u32) -> Program {
        Program::new(name, table(&[]), Com::Store(VarId(var), Expr::val(1)))
    }

    #[test]
    fn program_compiles_on_construction() {
        let p = Program::new("p", table(&["r"]), Com::Load(RegId(0), VarId(0)));
        assert_eq!(p.n_regs(), 1);
        assert!(p.cfa().is_acyclic());
        assert_eq!(p.name(), "p");
    }

    #[test]
    fn system_checks_variable_bounds() {
        let sys = ParamSystem::new(
            Dom::boolean(),
            table(&["x"]),
            store_prog("env", 0),
            vec![store_prog("d1", 0)],
        );
        assert_eq!(sys.n_vars(), 1);
        assert_eq!(sys.dis_size(), 1);
        assert_eq!(sys.q0(), 2 + 1);
    }

    #[test]
    #[should_panic(expected = "undeclared shared variable")]
    fn out_of_range_variable_rejected() {
        ParamSystem::new(Dom::boolean(), table(&["x"]), store_prog("env", 1), vec![]);
    }

    #[test]
    fn programs_iterates_env_then_dis() {
        let sys = ParamSystem::new(
            Dom::boolean(),
            table(&["x"]),
            store_prog("env", 0),
            vec![store_prog("d1", 0), store_prog("d2", 0)],
        );
        let kinds: Vec<_> = sys.programs().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![ThreadKind::Env, ThreadKind::Dis(0), ThreadKind::Dis(1)]
        );
        assert_eq!(sys.program(ThreadKind::Dis(1)).name(), "d2");
    }

    #[test]
    fn timestamp_budget_sums_dis_stores() {
        let sys = ParamSystem::new(
            Dom::boolean(),
            table(&["x"]),
            store_prog("env", 0),
            vec![store_prog("d1", 0), store_prog("d2", 0)],
        );
        assert_eq!(sys.dis_timestamp_budget(), Some(2));
    }

    #[test]
    fn looping_dis_budget_is_none() {
        let looping = Program::new(
            "d",
            table(&[]),
            Com::star(Com::Store(VarId(0), Expr::val(1))),
        );
        let sys = ParamSystem::new(
            Dom::boolean(),
            table(&["x"]),
            store_prog("env", 0),
            vec![looping],
        );
        assert_eq!(sys.dis_timestamp_budget(), None);
    }

    #[test]
    fn thread_kind_display() {
        assert_eq!(ThreadKind::Env.to_string(), "env");
        assert_eq!(ThreadKind::Dis(0).to_string(), "dis1");
    }
}
