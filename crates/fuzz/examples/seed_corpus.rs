//! Regenerates the seed entries of the repository's `corpus/` directory:
//! one representative of each oracle's generator family, saved with the
//! standard provenance header so `parra fuzz --minimize` and the corpus
//! replay test can pick the right oracle from the file name.
//!
//! ```text
//! cargo run -p parra-fuzz --example seed_corpus -- corpus/
//! ```
//!
//! Hand-written corpus entries (files whose stem extends an oracle name
//! with a suffix, e.g. `engines-agree-cas-mutex.ra`) are left untouched.

use parra_fuzz::gen::SystemGen;
use parra_fuzz::{corpus, oracle};
use std::path::Path;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "corpus".into());
    let dir = Path::new(&arg);
    // One fixed representative seed per oracle family. 7 is arbitrary but
    // load-bearing once chosen: the files double as regression inputs.
    let seed = 7u64;
    for o in oracle::all_oracles() {
        let case = SystemGen::new(o.gen_config()).case(seed);
        let detail = format!("seed corpus: representative of the `{}` family", o.name());
        let path = corpus::save(dir, o.name(), seed, &detail, &case.sys)
            .unwrap_or_else(|e| panic!("writing {} entry: {e}", o.name()));
        println!("wrote {}", path.display());
    }
}
