//! The `makeP` encoding (Section 4.1): safety verification → Datalog
//! query evaluation.
//!
//! `makeP` is a *non-deterministic* polynomial-time procedure: each of its
//! executions guesses the `dis` threads' part of the computation and emits
//! one Datalog query instance `(Prog, g)`; the verification instance is
//! unsafe iff some execution's instance satisfies `Prog ⊢ g` (Lemma 4.3).
//! This module enumerates the guesses explicitly.
//!
//! **A guess** ([`Guess`]) fixes, per distinguished thread, a run skeleton
//! ([`DisGuess`]): a path through its loop-free CFA, the value loaded at
//! each load/CAS on the path, a per-variable-injective integer slot for
//! each store/CAS, and whether each CAS reads an integer-timestamped
//! message (init/`dis`) or an `env` message. Guessing the skeleton keeps
//! the `dis` part of the Datalog program *deterministic* — crucial because
//! Datalog's monotone semantics would otherwise conflate mutually
//! exclusive `dis` executions (two values stored "at the same slot").
//!
//! **The program** uses the paper's predicates, spread over the abstract
//! timeline `{0, 0⁺, …, T, T⁺}` (Section 3.4):
//!
//! * `etp_s(v̄)` — an `env` thread is at control state `s` (location ×
//!   register valuation, grounded) with view `v̄` (one argument per shared
//!   variable);
//! * `emp_x_d(v̄)` / `dmp_x_d(v̄)` — an `env`/`dis` (or initial) message on
//!   `x` with value `d` and view `v̄`;
//! * `dtpᵢ_k(v̄)` — `dis` thread `i` has executed `k` steps of its guessed
//!   skeleton with view `v̄`;
//! * `goal()` — the query atom.
//!
//! Timestamp arithmetic is factored into small extensional relations
//! (`tle`, `tlt`, `tmax`, `gapjoin`, `gapstore_x`), keeping the rule set
//! polynomial in the system size — the shape behind Theorem 4.1. Rules
//! have at most two *intensional* body atoms (a thread predicate and a
//! message predicate), the property the cache bound of Lemma 4.4 exploits.

use parra_datalog::ast::{Atom, Const, GroundAtom, PredId, Program, Term};
use parra_obs::{Counter, Recorder};
use parra_program::cfg::{Cfa, Instr, Loc};
use parra_program::expr::RegVal;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_simplified::state::Budget;
use parra_simplified::timestamp::ATime;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// How a guessed CAS obtains its loaded message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasRead {
    /// Reads an integer-timestamped message (initial or `dis`) at slot
    /// `store_slot - 1`; the gap in between is closed for `env` stores.
    IntSlot,
    /// Reads (a clone of) an `env` message at the top of gap
    /// `store_slot - 1`.
    EnvMessage,
}

/// One step of a guessed `dis` run skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisStepGuess {
    /// The CFA edge taken.
    pub edge: usize,
    /// For loads and CAS: the value assumed to be loaded.
    pub loaded: Option<Val>,
    /// For stores and CAS: the integer slot of the written message.
    pub slot: Option<u32>,
    /// For CAS: where the loaded message comes from.
    pub cas_read: Option<CasRead>,
}

/// A guessed run skeleton for one `dis` thread: a path through its
/// loop-free CFA with resolved loads and slots. Register valuations along
/// the path are determined by the skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisGuess {
    /// The steps in order (a path from the CFA entry).
    pub steps: Vec<DisStepGuess>,
}

/// A full `makeP` guess: one skeleton per `dis` thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Guess {
    /// Per-thread skeletons.
    pub dis: Vec<DisGuess>,
}

/// Enumeration limits.
#[derive(Debug, Clone, Copy)]
pub struct MakePLimits {
    /// Maximum number of guesses to enumerate.
    pub max_guesses: usize,
    /// Maximum number of grounded `env` control states (`loc × rv`).
    pub max_env_states: usize,
}

impl Default for MakePLimits {
    fn default() -> Self {
        MakePLimits {
            max_guesses: 200_000,
            max_env_states: 50_000,
        }
    }
}

/// Why the encoding is not applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MakePError {
    /// The `env` program uses CAS (undecidable class, Theorem 1.1).
    EnvHasCas,
    /// Some `dis` program has loops; unroll first (`transform::unroll_dis`).
    DisHasLoops {
        /// Index of the looping thread.
        thread: usize,
    },
    /// The grounded `env` state space exceeds the limit.
    TooManyEnvStates {
        /// The number of `loc × rv` combinations.
        states: usize,
    },
    /// Guess enumeration exceeded the limit; verdicts would be incomplete.
    TooManyGuesses,
}

impl fmt::Display for MakePError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MakePError::EnvHasCas => write!(f, "env program uses CAS"),
            MakePError::DisHasLoops { thread } => {
                write!(f, "dis thread {thread} has loops; unroll first")
            }
            MakePError::TooManyEnvStates { states } => {
                write!(f, "grounded env state space too large ({states} states)")
            }
            MakePError::TooManyGuesses => write!(f, "guess enumeration limit exceeded"),
        }
    }
}

impl std::error::Error for MakePError {}

/// What the emitted `goal()` atom captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatalogTarget {
    /// Some thread can execute `assert false`.
    AssertViolation,
    /// The goal message `(x, d, _)` is generated (Message Generation).
    MessageGenerated(VarId, Val),
}

/// The `makeP` encoder.
#[derive(Debug)]
pub struct MakeP<'s> {
    sys: &'s ParamSystem,
    budget: Budget,
    limits: MakePLimits,
    timeline: Vec<ATime>,
    rec: Recorder,
}

impl<'s> MakeP<'s> {
    /// Creates an encoder.
    ///
    /// # Errors
    ///
    /// Rejects systems outside the supported class (env CAS, dis loops) and
    /// blown limits.
    pub fn new(
        sys: &'s ParamSystem,
        budget: Budget,
        limits: MakePLimits,
    ) -> Result<MakeP<'s>, MakePError> {
        if !sys.env.cfa().is_cas_free() {
            return Err(MakePError::EnvHasCas);
        }
        for (i, d) in sys.dis.iter().enumerate() {
            if !d.cfa().is_acyclic() {
                return Err(MakePError::DisHasLoops { thread: i });
            }
        }
        let env_states =
            sys.env.cfa().n_locs() as usize * (sys.dom.size() as usize).pow(sys.env.n_regs());
        if env_states > limits.max_env_states {
            return Err(MakePError::TooManyEnvStates { states: env_states });
        }
        let t = budget.max_slots();
        let mut timeline = Vec::with_capacity(2 * t as usize + 2);
        for i in 0..=t {
            timeline.push(ATime::Int(i));
            timeline.push(ATime::Plus(i));
        }
        Ok(MakeP {
            sys,
            budget,
            limits,
            timeline,
            rec: Recorder::disabled(),
        })
    }

    /// The same encoder reporting metrics/spans through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> MakeP<'s> {
        self.rec = rec;
        self
    }

    /// Enumerates all guesses (dis run skeletons with slots).
    ///
    /// # Errors
    ///
    /// Fails with [`MakePError::TooManyGuesses`] beyond the limit.
    pub fn guesses(&self) -> Result<Vec<Guess>, MakePError> {
        let span = self.rec.span("makep.guesses");
        // Per-thread skeleton candidates (paths with loaded values).
        let mut per_thread: Vec<Vec<DisGuess>> = Vec::new();
        for d in &self.sys.dis {
            per_thread.push(self.thread_skeletons(d.cfa()));
        }
        self.rec
            .counter("skeletons")
            .add(per_thread.iter().map(|v| v.len() as u64).sum());
        // Product over threads, then assign slots (injective per variable).
        let mut out: Vec<Guess> = Vec::new();
        let mut partial = Vec::new();
        self.product(&per_thread, 0, &mut partial, &mut out)?;
        self.rec.counter("guesses_enumerated").add(out.len() as u64);
        span.arg_u64("guesses", out.len() as u64);
        Ok(out)
    }

    fn product(
        &self,
        per_thread: &[Vec<DisGuess>],
        i: usize,
        partial: &mut Vec<DisGuess>,
        out: &mut Vec<Guess>,
    ) -> Result<(), MakePError> {
        if i == per_thread.len() {
            // Assign slots for all store-ish steps, injective per variable.
            return self.assign_slots(partial, out);
        }
        for skel in &per_thread[i] {
            partial.push(skel.clone());
            self.product(per_thread, i + 1, partial, out)?;
            partial.pop();
        }
        Ok(())
    }

    /// All (maximal) path skeletons of one `dis` thread: DFS over the
    /// acyclic CFA, branching on loaded values. Slots are left `None` here.
    fn thread_skeletons(&self, cfa: &Cfa) -> Vec<DisGuess> {
        let dom = self.sys.dom;
        let mut out = Vec::new();
        // DFS state: (loc, rv, steps so far).
        let mut stack: Vec<(Loc, RegVal, Vec<DisStepGuess>)> =
            vec![(cfa.entry(), RegVal::new(cfa.n_regs() as usize), Vec::new())];
        while let Some((loc, rv, steps)) = stack.pop() {
            let mut extended = false;
            for (ei, edge) in cfa.edges().iter().enumerate() {
                if edge.from != loc {
                    continue;
                }
                let mut push = |loaded: Option<Val>, rv2: RegVal| {
                    let mut s2 = steps.clone();
                    s2.push(DisStepGuess {
                        edge: ei,
                        loaded,
                        slot: None,
                        cas_read: None,
                    });
                    stack.push((edge.to, rv2, s2));
                };
                match &edge.instr {
                    Instr::Skip | Instr::AssertFalse => {
                        push(None, rv.clone());
                        extended = true;
                    }
                    Instr::Assume(e) => {
                        if e.eval(&rv, dom).as_bool() {
                            push(None, rv.clone());
                            extended = true;
                        }
                    }
                    Instr::Assign(r, e) => {
                        let mut rv2 = rv.clone();
                        rv2.set(*r, e.eval(&rv, dom));
                        push(None, rv2);
                        extended = true;
                    }
                    Instr::Load(r, _) => {
                        for d in dom.iter() {
                            let mut rv2 = rv.clone();
                            rv2.set(*r, d);
                            push(Some(d), rv2);
                        }
                        extended = true;
                    }
                    Instr::Store(..) => {
                        push(None, rv.clone());
                        extended = true;
                    }
                    Instr::Cas(_, e1, _) => {
                        // The loaded value must equal e1's value.
                        let want = e1.eval(&rv, dom);
                        push(Some(want), rv.clone());
                        extended = true;
                    }
                }
            }
            if !extended {
                out.push(DisGuess { steps });
            }
        }
        // Deduplicate (diamond CFAs can reconverge).
        out.dedup();
        out
    }

    /// Extends skeletons with slot assignments (injective per variable)
    /// and CAS read kinds.
    fn assign_slots(&self, skeletons: &[DisGuess], out: &mut Vec<Guess>) -> Result<(), MakePError> {
        // Collect store-ish steps: (thread, step index, var, is_cas).
        let mut sites: Vec<(usize, usize, VarId, bool)> = Vec::new();
        for (ti, skel) in skeletons.iter().enumerate() {
            let cfa = self.sys.dis[ti].cfa();
            for (si, step) in skel.steps.iter().enumerate() {
                match &cfa.edges()[step.edge].instr {
                    Instr::Store(x, _) => sites.push((ti, si, *x, false)),
                    Instr::Cas(x, ..) => sites.push((ti, si, *x, true)),
                    _ => {}
                }
            }
        }
        let budget = &self.budget;
        let pruned = self.rec.counter("slot_assignments_pruned");
        // Backtracking assignment.
        #[allow(clippy::too_many_arguments)]
        fn rec(
            sites: &[(usize, usize, VarId, bool)],
            i: usize,
            budget: &Budget,
            used: &mut HashMap<VarId, BTreeSet<u32>>,
            choice: &mut Vec<(u32, Option<CasRead>)>,
            skeletons: &[DisGuess],
            out: &mut Vec<Guess>,
            max: usize,
            pruned: &Counter,
        ) -> Result<(), MakePError> {
            if i == sites.len() {
                // Materialize the guess.
                let mut dis: Vec<DisGuess> = skeletons.to_vec();
                for (k, &(ti, si, _x, is_cas)) in sites.iter().enumerate() {
                    let (slot, cas_read) = choice[k];
                    dis[ti].steps[si].slot = Some(slot);
                    if is_cas {
                        dis[ti].steps[si].cas_read = cas_read;
                    }
                }
                out.push(Guess { dis });
                if out.len() > max {
                    return Err(MakePError::TooManyGuesses);
                }
                return Ok(());
            }
            let (_, _, x, is_cas) = sites[i];
            for slot in 1..=budget.slots(x) {
                if used.get(&x).map(|s| s.contains(&slot)).unwrap_or(false) {
                    pruned.incr();
                    continue;
                }
                used.entry(x).or_default().insert(slot);
                if is_cas {
                    for read in [CasRead::IntSlot, CasRead::EnvMessage] {
                        choice.push((slot, Some(read)));
                        rec(
                            sites,
                            i + 1,
                            budget,
                            used,
                            choice,
                            skeletons,
                            out,
                            max,
                            pruned,
                        )?;
                        choice.pop();
                    }
                } else {
                    choice.push((slot, None));
                    rec(
                        sites,
                        i + 1,
                        budget,
                        used,
                        choice,
                        skeletons,
                        out,
                        max,
                        pruned,
                    )?;
                    choice.pop();
                }
                used.get_mut(&x).unwrap().remove(&slot);
            }
            Ok(())
        }
        rec(
            &sites,
            0,
            budget,
            &mut HashMap::new(),
            &mut Vec::new(),
            skeletons,
            out,
            self.limits.max_guesses,
            &pruned,
        )
    }

    /// Emits the Datalog query instance `(Prog, goal)` for one guess.
    pub fn program(&self, guess: &Guess, target: DatalogTarget) -> (Program, GroundAtom) {
        Encoder::new(self, guess, target).build()
    }

    /// The extensional (side-condition) predicates of a generated program —
    /// excluded from cache-size accounting and specializable away.
    pub fn edb_predicates(prog: &Program) -> HashSet<PredId> {
        let mut out = HashSet::new();
        for p in prog.predicates() {
            let name = prog.pred_name(p);
            if name.starts_with("tle")
                || name.starts_with("tlt")
                || name.starts_with("tmax")
                || name.starts_with("gapjoin")
                || name.starts_with("gapstore")
            {
                out.insert(p);
            }
        }
        out
    }
}

/// Builds one Datalog program.
struct Encoder<'a, 's> {
    mk: &'a MakeP<'s>,
    guess: &'a Guess,
    target: DatalogTarget,
    prog: Program,
    n_vars: usize,
    /// Constant per abstract timestamp.
    tc: HashMap<ATime, Const>,
    // Predicates.
    tle: PredId,
    tlt: PredId,
    tmax: PredId,
    gapjoin: PredId,
    gapstore: Vec<PredId>,
    goal: PredId,
    emp: HashMap<(VarId, Val), PredId>,
    dmp: HashMap<(VarId, Val), PredId>,
    /// env control-state predicates: (loc, rv) → pred.
    etp: HashMap<(Loc, RegVal), PredId>,
    /// dis position predicates: (thread, position) → pred.
    dtp: HashMap<(usize, usize), PredId>,
}

impl<'a, 's> Encoder<'a, 's> {
    fn new(mk: &'a MakeP<'s>, guess: &'a Guess, target: DatalogTarget) -> Self {
        let mut prog = Program::new();
        let n_vars = mk.sys.n_vars() as usize;
        let tle = prog.predicate("tle", 2);
        let tlt = prog.predicate("tlt", 2);
        let tmax = prog.predicate("tmax", 3);
        let gapjoin = prog.predicate("gapjoin", 3);
        let gapstore = (0..n_vars)
            .map(|x| prog.predicate(&format!("gapstore_{x}"), 2))
            .collect();
        let goal = prog.predicate("goal", 0);
        let mut tc = HashMap::new();
        for &a in &mk.timeline {
            tc.insert(a, prog.constant(&format!("{a}")));
        }
        Encoder {
            mk,
            guess,
            target,
            prog,
            n_vars,
            tc,
            tle,
            tlt,
            tmax,
            gapjoin,
            gapstore,
            goal,
            emp: HashMap::new(),
            dmp: HashMap::new(),
            etp: HashMap::new(),
            dtp: HashMap::new(),
        }
    }

    fn t(&self, a: ATime) -> Const {
        self.tc[&a]
    }

    fn emp_pred(&mut self, x: VarId, d: Val) -> PredId {
        let n = self.n_vars;
        *self
            .emp
            .entry((x, d))
            .or_insert_with(|| self.prog.predicate(&format!("emp_{}_{}", x.0, d.0), n))
    }

    fn dmp_pred(&mut self, x: VarId, d: Val) -> PredId {
        let n = self.n_vars;
        *self
            .dmp
            .entry((x, d))
            .or_insert_with(|| self.prog.predicate(&format!("dmp_{}_{}", x.0, d.0), n))
    }

    fn etp_pred(&mut self, loc: Loc, rv: &RegVal) -> PredId {
        let n = self.n_vars;
        if let Some(&p) = self.etp.get(&(loc, rv.clone())) {
            return p;
        }
        let name = format!(
            "etp_{}_{}",
            loc.0,
            rv.iter()
                .map(|v| v.0.to_string())
                .collect::<Vec<_>>()
                .join("_")
        );
        let p = self.prog.predicate(&name, n);
        self.etp.insert((loc, rv.clone()), p);
        p
    }

    fn dtp_pred(&mut self, thread: usize, pos: usize) -> PredId {
        let n = self.n_vars;
        *self
            .dtp
            .entry((thread, pos))
            .or_insert_with(|| self.prog.predicate(&format!("dtp{thread}_{pos}"), n))
    }

    /// View variable vector `base..base+n`.
    fn vvec(&self, base: u32) -> Vec<Term> {
        (0..self.n_vars as u32)
            .map(|i| Term::Var(base + i))
            .collect()
    }

    fn build(mut self) -> (Program, GroundAtom) {
        self.emit_edb_facts();
        self.emit_initial_facts();
        self.emit_env_rules();
        self.emit_dis_rules();
        self.emit_goal_rules();
        let goal = GroundAtom::new(self.goal, Vec::new());
        (self.prog, goal)
    }

    /// tle/tlt/tmax/gapjoin over the timeline; gapstore per variable,
    /// excluding gaps closed by the guess's integer-read CAS steps.
    fn emit_edb_facts(&mut self) {
        let timeline = self.mk.timeline.clone();
        for &a in &timeline {
            for &b in &timeline {
                let (ca, cb) = (self.t(a), self.t(b));
                if a <= b {
                    self.prog.fact(self.tle, vec![ca, cb]).unwrap();
                }
                if a < b {
                    self.prog.fact(self.tlt, vec![ca, cb]).unwrap();
                }
                let cmax = self.t(a.max(b));
                self.prog.fact(self.tmax, vec![ca, cb, cmax]).unwrap();
                let gj = ATime::Plus(a.floor().max(b.floor()));
                let cgj = self.t(gj);
                self.prog.fact(self.gapjoin, vec![ca, cb, cgj]).unwrap();
            }
        }
        // Gaps closed by integer-read CAS guesses, per variable.
        let mut closed: HashMap<VarId, BTreeSet<u32>> = HashMap::new();
        for (ti, skel) in self.guess.dis.iter().enumerate() {
            let cfa = self.mk.sys.dis[ti].cfa();
            for step in &skel.steps {
                if let Instr::Cas(x, ..) = &cfa.edges()[step.edge].instr {
                    if step.cas_read == Some(CasRead::IntSlot) {
                        let slot = step.slot.expect("cas step has a slot");
                        closed.entry(*x).or_default().insert(slot - 1);
                    }
                }
            }
        }
        for x in 0..self.n_vars {
            let var = VarId(x as u32);
            let closed_x = closed.get(&var).cloned().unwrap_or_default();
            for &a in &timeline {
                for g in a.floor()..=self.mk.budget.slots(var) {
                    if closed_x.contains(&g) {
                        continue;
                    }
                    let (ca, cg) = (self.t(a), self.t(ATime::Plus(g)));
                    self.prog.fact(self.gapstore[x], vec![ca, cg]).unwrap();
                }
            }
        }
    }

    fn emit_initial_facts(&mut self) {
        let zero: Vec<Const> = (0..self.n_vars).map(|_| self.t(ATime::ZERO)).collect();
        // Initial messages.
        for x in 0..self.n_vars {
            let p = self.dmp_pred(VarId(x as u32), Val::INIT);
            self.prog.fact(p, zero.clone()).unwrap();
        }
        // Initial env thread.
        let entry = self.mk.sys.env.cfa().entry();
        let rv0 = RegVal::new(self.mk.sys.env.n_regs() as usize);
        let p = self.etp_pred(entry, &rv0);
        self.prog.fact(p, zero.clone()).unwrap();
        // Initial dis threads at position 0.
        for ti in 0..self.guess.dis.len() {
            let p = self.dtp_pred(ti, 0);
            self.prog.fact(p, zero.clone()).unwrap();
        }
    }

    /// Env transition rules, grounded over register valuations.
    fn emit_env_rules(&mut self) {
        let sys = self.mk.sys;
        let cfa = sys.env.cfa_arc();
        let dom = sys.dom;
        let n = self.n_vars as u32;
        let rvs = enumerate_rvs(sys.env.n_regs() as usize, dom);
        for rv in &rvs {
            for edge in cfa.edges() {
                let src = self.etp_pred(edge.from, rv);
                match &edge.instr {
                    Instr::Skip | Instr::AssertFalse => {
                        let dst = self.etp_pred(edge.to, rv);
                        let v = self.vvec(0);
                        self.prog
                            .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                            .unwrap();
                    }
                    Instr::Assume(e) => {
                        if e.eval(rv, dom).as_bool() {
                            let dst = self.etp_pred(edge.to, rv);
                            let v = self.vvec(0);
                            self.prog
                                .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                                .unwrap();
                        }
                    }
                    Instr::Assign(r, e) => {
                        let rv2 = rv.with(*r, e.eval(rv, dom));
                        let dst = self.etp_pred(edge.to, &rv2);
                        let v = self.vvec(0);
                        self.prog
                            .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                            .unwrap();
                    }
                    Instr::Load(r, x) => {
                        for d in dom.iter() {
                            let rv2 = rv.with(*r, d);
                            let dst = self.etp_pred(edge.to, &rv2);
                            self.emit_load_rules(Atom::new(src, self.vvec(0)), dst, *x, d);
                        }
                    }
                    Instr::Store(x, e) => {
                        let d = e.eval(rv, dom);
                        let dst = self.etp_pred(edge.to, rv);
                        self.emit_env_store_rules(Atom::new(src, self.vvec(0)), dst, *x, d);
                    }
                    Instr::Cas(..) => unreachable!("env is CAS-free"),
                }
            }
        }
        let _ = n;
    }

    /// Load rules shared by env and dis threads: one rule reading a
    /// `dmp` message (with timestamp check) and one reading an `emp`
    /// message (check-free, gap join).
    ///
    /// Variable layout: `0..n` = V̄ (thread view), `n..2n` = W̄ (message
    /// view), `2n..3n` = V̄' (joined view).
    fn emit_load_rules(&mut self, src_atom: Atom, dst: PredId, x: VarId, d: Val) {
        let n = self.n_vars as u32;
        let v = self.vvec(0);
        let w = self.vvec(n);
        let vp = self.vvec(2 * n);
        let xi = x.index();

        // From a dis/init message: tle(Vx, Wx) and pointwise tmax.
        {
            let dmp = self.dmp_pred(x, d);
            let mut body = vec![src_atom.clone(), Atom::new(dmp, w.clone())];
            body.push(Atom::new(self.tle, vec![v[xi], w[xi]]));
            for i in 0..self.n_vars {
                body.push(Atom::new(self.tmax, vec![v[i], w[i], vp[i]]));
            }
            self.prog.rule(Atom::new(dst, vp.clone()), body).unwrap();
        }
        // From an env message: no check; gapjoin on x, tmax elsewhere.
        {
            let emp = self.emp_pred(x, d);
            let mut body = vec![src_atom, Atom::new(emp, w.clone())];
            body.push(Atom::new(self.gapjoin, vec![v[xi], w[xi], vp[xi]]));
            for i in 0..self.n_vars {
                if i != xi {
                    body.push(Atom::new(self.tmax, vec![v[i], w[i], vp[i]]));
                }
            }
            self.prog.rule(Atom::new(dst, vp), body).unwrap();
        }
    }

    /// Env store: choose a gap via `gapstore_x(Vx, G)`; emit the message
    /// and the moved thread, both with `x ↦ G`.
    fn emit_env_store_rules(&mut self, src_atom: Atom, dst: PredId, x: VarId, d: Val) {
        let n = self.n_vars as u32;
        let v = self.vvec(0);
        let g = Term::Var(n); // the chosen gap
        let xi = x.index();
        let mut head_view = v.clone();
        head_view[xi] = g;
        let body = vec![src_atom, Atom::new(self.gapstore[xi], vec![v[xi], g])];
        let emp = self.emp_pred(x, d);
        self.prog
            .rule(Atom::new(emp, head_view.clone()), body.clone())
            .unwrap();
        self.prog.rule(Atom::new(dst, head_view), body).unwrap();
    }

    /// Dis rules along the guessed skeletons.
    fn emit_dis_rules(&mut self) {
        let sys = self.mk.sys;
        let dom = sys.dom;
        for (ti, skel) in self.guess.dis.iter().enumerate() {
            let cfa = sys.dis[ti].cfa_arc();
            let mut rv = RegVal::new(sys.dis[ti].n_regs() as usize);
            for (pos, step) in skel.steps.iter().enumerate() {
                let src = self.dtp_pred(ti, pos);
                let dst = self.dtp_pred(ti, pos + 1);
                let src_atom = Atom::new(src, self.vvec(0));
                let edge = &cfa.edges()[step.edge];
                match &edge.instr {
                    Instr::Skip | Instr::AssertFalse => {
                        let v = self.vvec(0);
                        self.prog
                            .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                            .unwrap();
                    }
                    Instr::Assume(e) => {
                        debug_assert!(e.eval(&rv, dom).as_bool());
                        let v = self.vvec(0);
                        self.prog
                            .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                            .unwrap();
                    }
                    Instr::Assign(r, e) => {
                        rv.set(*r, e.eval(&rv, dom));
                        let v = self.vvec(0);
                        self.prog
                            .rule(Atom::new(dst, v.clone()), vec![Atom::new(src, v)])
                            .unwrap();
                    }
                    Instr::Load(r, x) => {
                        let d = step.loaded.expect("load step carries a value");
                        self.emit_load_rules(src_atom, dst, *x, d);
                        rv.set(*r, d);
                    }
                    Instr::Store(x, e) => {
                        let d = e.eval(&rv, dom);
                        let slot = step.slot.expect("store step carries a slot");
                        self.emit_dis_store_rules(src_atom, dst, *x, d, slot);
                    }
                    Instr::Cas(x, e1, e2) => {
                        let d1 = e1.eval(&rv, dom);
                        debug_assert_eq!(step.loaded, Some(d1));
                        let d2 = e2.eval(&rv, dom);
                        let slot = step.slot.expect("cas step carries a slot");
                        let read = step.cas_read.expect("cas step carries a read kind");
                        self.emit_dis_cas_rules(src_atom, dst, *x, d1, d2, slot, read);
                    }
                }
            }
        }
    }

    /// Dis store at the guessed slot: requires `Vx < slot`; emits the
    /// message and the moved thread with `x ↦ slot`.
    fn emit_dis_store_rules(&mut self, src_atom: Atom, dst: PredId, x: VarId, d: Val, slot: u32) {
        let v = self.vvec(0);
        let xi = x.index();
        let slot_c = Term::Const(self.t(ATime::Int(slot)));
        let mut head_view = v.clone();
        head_view[xi] = slot_c;
        let body = vec![src_atom, Atom::new(self.tlt, vec![v[xi], slot_c])];
        let dmp = self.dmp_pred(x, d);
        self.prog
            .rule(Atom::new(dmp, head_view.clone()), body.clone())
            .unwrap();
        self.prog.rule(Atom::new(dst, head_view), body).unwrap();
    }

    /// Dis CAS at guessed store slot `s₁`: reads slot `s₁-1` (integer
    /// read) or an env message from a gap `≤ (s₁-1)⁺` (env read); the
    /// stored message and the moved thread carry the joined view with
    /// `x ↦ s₁`.
    #[allow(clippy::too_many_arguments)]
    fn emit_dis_cas_rules(
        &mut self,
        src_atom: Atom,
        dst: PredId,
        x: VarId,
        d1: Val,
        d2: Val,
        slot: u32,
        read: CasRead,
    ) {
        let n = self.n_vars as u32;
        let v = self.vvec(0);
        let w = self.vvec(n);
        let vp = self.vvec(2 * n);
        let xi = x.index();
        let slot_c = Term::Const(self.t(ATime::Int(slot)));
        let load_ts = ATime::Int(slot - 1);
        let gap_ts = ATime::Plus(slot - 1);

        let mut body = vec![src_atom];
        match read {
            CasRead::IntSlot => {
                // The loaded message sits exactly at slot-1.
                let dmp = self.dmp_pred(x, d1);
                let mut w_pinned = w.clone();
                w_pinned[xi] = Term::Const(self.t(load_ts));
                body.push(Atom::new(dmp, w_pinned));
                body.push(Atom::new(
                    self.tle,
                    vec![v[xi], Term::Const(self.t(load_ts))],
                ));
            }
            CasRead::EnvMessage => {
                // A clone of the env message at the top of gap slot-1.
                let emp = self.emp_pred(x, d1);
                body.push(Atom::new(emp, w.clone()));
                body.push(Atom::new(
                    self.tle,
                    vec![w[xi], Term::Const(self.t(gap_ts))],
                ));
                body.push(Atom::new(
                    self.tle,
                    vec![v[xi], Term::Const(self.t(gap_ts))],
                ));
            }
        }
        for i in 0..self.n_vars {
            if i != xi {
                body.push(Atom::new(self.tmax, vec![v[i], w[i], vp[i]]));
            }
        }
        let mut head_view = vp.clone();
        head_view[xi] = slot_c;
        let dmp2 = self.dmp_pred(x, d2);
        self.prog
            .rule(Atom::new(dmp2, head_view.clone()), body.clone())
            .unwrap();
        self.prog.rule(Atom::new(dst, head_view), body).unwrap();
    }

    /// Goal rules per target.
    fn emit_goal_rules(&mut self) {
        match self.target {
            DatalogTarget::MessageGenerated(x, d) => {
                let v = self.vvec(0);
                let emp = self.emp_pred(x, d);
                self.prog
                    .rule(
                        Atom::new(self.goal, vec![]),
                        vec![Atom::new(emp, v.clone())],
                    )
                    .unwrap();
                let dmp = self.dmp_pred(x, d);
                self.prog
                    .rule(Atom::new(self.goal, vec![]), vec![Atom::new(dmp, v)])
                    .unwrap();
                if d == Val::INIT {
                    // Initial messages already carry d_init.
                    self.prog.fact(self.goal, vec![]).unwrap();
                }
            }
            DatalogTarget::AssertViolation => {
                // env asserts: any etp state at a location with an
                // outgoing assert edge.
                let sys = self.mk.sys;
                let assert_locs: BTreeSet<Loc> = sys
                    .env
                    .cfa()
                    .edges()
                    .iter()
                    .filter(|e| matches!(e.instr, Instr::AssertFalse))
                    .map(|e| e.from)
                    .collect();
                let states: Vec<(Loc, RegVal)> = self
                    .etp
                    .keys()
                    .filter(|(l, _)| assert_locs.contains(l))
                    .cloned()
                    .collect();
                for (l, rv) in states {
                    let p = self.etp_pred(l, &rv);
                    let v = self.vvec(0);
                    self.prog
                        .rule(Atom::new(self.goal, vec![]), vec![Atom::new(p, v)])
                        .unwrap();
                }
                // dis asserts: positions whose next edge is an assert.
                for (ti, skel) in self.guess.dis.iter().enumerate() {
                    let cfa = self.mk.sys.dis[ti].cfa_arc();
                    for (pos, step) in skel.steps.iter().enumerate() {
                        if matches!(cfa.edges()[step.edge].instr, Instr::AssertFalse) {
                            let p = self.dtp_pred(ti, pos);
                            let v = self.vvec(0);
                            self.prog
                                .rule(Atom::new(self.goal, vec![]), vec![Atom::new(p, v)])
                                .unwrap();
                        }
                    }
                }
            }
        }
    }
}

/// All register valuations over `n_regs` registers.
fn enumerate_rvs(n_regs: usize, dom: parra_program::value::Dom) -> Vec<RegVal> {
    let mut out = vec![RegVal::new(n_regs)];
    for r in 0..n_regs {
        let mut next = Vec::new();
        for rv in &out {
            for d in dom.iter() {
                next.push(rv.with(parra_program::ident::RegId(r as u32), d));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_datalog::eval::Evaluator;
    use parra_program::builder::SystemBuilder;

    fn handshake() -> (ParamSystem, VarId) {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let goal = b.var("goal");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.store(y, 1).load(s, x).assume_eq(s, 1).store(goal, 1);
        let d = d.finish();
        (b.build(env, vec![d]), goal)
    }

    #[test]
    fn guesses_enumerate_skeletons_and_slots() {
        let (sys, _) = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let mk = MakeP::new(&sys, budget, MakePLimits::default()).unwrap();
        let guesses = mk.guesses().unwrap();
        // dis: store y (slot among 2 free on y) × paths over loaded x value
        // {0, 1}; the loaded-0 path blocks at the assume, so skeletons are
        // prefixes... maximal paths: load 0 (stuck after assume) and
        // load 1 → store goal. Plus slot choices.
        assert!(!guesses.is_empty());
        for g in &guesses {
            assert_eq!(g.dis.len(), 1);
        }
    }

    #[test]
    fn unsafe_system_has_a_proving_guess() {
        let (sys, goal_var) = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let mk = MakeP::new(&sys, budget, MakePLimits::default()).unwrap();
        let target = DatalogTarget::MessageGenerated(goal_var, Val(1));
        let proved = mk.guesses().unwrap().iter().any(|g| {
            let (prog, goal) = mk.program(g, target);
            Evaluator::new(&prog).query(&goal)
        });
        assert!(proved);
    }

    #[test]
    fn safe_system_has_no_proving_guess() {
        // Same shape but the env thread requires y == 1 twice...
        // make it genuinely safe: env needs y == 1 but dis never stores y.
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let goal = b.var("goal");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.load(s, x).assume_eq(s, 1).store(goal, 1);
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let mk = MakeP::new(&sys, budget, MakePLimits::default()).unwrap();
        let target = DatalogTarget::MessageGenerated(goal, Val(1));
        let proved = mk.guesses().unwrap().iter().any(|g| {
            let (prog, goal) = mk.program(g, target);
            Evaluator::new(&prog).query(&goal)
        });
        assert!(!proved);
    }

    #[test]
    fn env_cas_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let err =
            MakeP::new(&sys, Budget::uniform_for(&sys, 1), MakePLimits::default()).unwrap_err();
        assert_eq!(err, MakePError::EnvHasCas);
    }

    #[test]
    fn looping_dis_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        let mut d = b.program("d");
        d.star(|p| {
            p.store(x, 1);
        });
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let err =
            MakeP::new(&sys, Budget::uniform_for(&sys, 1), MakePLimits::default()).unwrap_err();
        assert_eq!(err, MakePError::DisHasLoops { thread: 0 });
    }

    #[test]
    fn env_only_system_single_guess() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let budget = Budget::exact(&sys).unwrap();
        let mk = MakeP::new(&sys, budget, MakePLimits::default()).unwrap();
        let guesses = mk.guesses().unwrap();
        assert_eq!(guesses.len(), 1);
        let (prog, goal) = mk.program(&guesses[0], DatalogTarget::MessageGenerated(x, Val(1)));
        assert!(Evaluator::new(&prog).query(&goal));
    }

    #[test]
    fn edb_predicates_detected() {
        let (sys, goal_var) = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let mk = MakeP::new(&sys, budget, MakePLimits::default()).unwrap();
        let guesses = mk.guesses().unwrap();
        let (prog, _) = mk.program(
            &guesses[0],
            DatalogTarget::MessageGenerated(goal_var, Val(1)),
        );
        let edb = MakeP::edb_predicates(&prog);
        assert!(edb.len() >= 4);
        for p in &edb {
            let name = prog.pred_name(*p);
            assert!(
                name.starts_with('t') || name.starts_with("gap"),
                "unexpected EDB predicate {name}"
            );
        }
    }
}
