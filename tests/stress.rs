//! Heavy fuzzing, ignored by default. Run with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```
//!
//! These widen the equivalence and engine-agreement sweeps by an order of
//! magnitude: larger domains, more variables, longer programs, more
//! seeds. Generation and properties live in `parra-fuzz`; this file only
//! picks families and seed counts.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_fuzz::gen::{Ending, GenConfig, SystemGen};
use parra_fuzz::oracle::{EnginesAgree, Equivalence, Monotonicity, Oracle, OracleOutcome};

fn sweep(oracle: &dyn Oracle, cfg: GenConfig, n: u64, label: &str) {
    let gen = SystemGen::new(cfg);
    let mut skipped = 0u64;
    for seed in 0..n {
        let case = gen.case(seed);
        match oracle.check(&case.sys) {
            OracleOutcome::Pass => {}
            OracleOutcome::Skip(_) => skipped += 1,
            OracleOutcome::Fail(msg) => panic!(
                "{label}-{seed}: {msg}\nsystem:\n{}",
                parra_program::pretty::system_to_string(&case.sys)
            ),
        }
    }
    // The wide families may occasionally leave an oracle's preconditions
    // (e.g. a truncated search on a heavy seed); make sure that stays the
    // exception, not the sweep.
    assert!(
        skipped * 10 <= n,
        "{label}: {skipped}/{n} cases skipped — family out of spec"
    );
}

/// Theorem 3.4 equivalence on 400 larger random systems.
#[test]
#[ignore]
fn equivalence_wide_sweep() {
    sweep(
        &Equivalence,
        GenConfig {
            n_dis: 1,
            ..GenConfig::wide().with_ending(Ending::GoalStore)
        },
        400,
        "equiv-wide",
    );
}

/// Engine agreement on 150 random systems with two dis threads.
#[test]
#[ignore]
fn engine_agreement_wide_sweep() {
    sweep(&EnginesAgree, GenConfig::wide(), 150, "agree-wide");
}

/// Verdict monotonicity (budget ladders and unroll-depth ladders) on 150
/// random systems with dis loops.
#[test]
#[ignore]
fn monotonicity_wide_sweep() {
    sweep(
        &Monotonicity,
        GenConfig {
            dis_len: 3,
            ..GenConfig::looping_dis()
        },
        150,
        "mono-wide",
    );
}

/// Every abstract bug found on the random family concretizes within the
/// §4.3 bound (soundness, executable).
#[test]
#[ignore]
fn concretization_wide_sweep() {
    let gen = SystemGen::new(GenConfig {
        dis_cas: false,
        dis_len: 3,
        ..GenConfig::agreement()
    });
    let mut checked = 0;
    for seed in 0..200u64 {
        let sys = gen.case(seed).sys;
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        if r.verdict == Verdict::Unsafe {
            checked += 1;
            assert!(
                v.concretize(&r, 5).is_some(),
                "seed {seed}: abstract bug did not concretize\n{}",
                parra_program::pretty::system_to_string(&sys)
            );
        }
    }
    assert!(checked > 20, "too few unsafe samples: {checked}");
}
