//! Interned tuple arena: every derived ground tuple is stored exactly once.
//!
//! The evaluation substrate keys all of its bookkeeping on [`AtomId`] — a
//! dense, `Copy`, insertion-ordered handle — instead of cloning
//! [`GroundAtom`](crate::ast::GroundAtom)s into hash maps. Argument
//! constants live in one flat `Vec<Const>`; per-atom metadata (predicate,
//! span, cached hash) lives in parallel columns; membership is decided by
//! an open-addressing table of `u32` slots probing on the cached hashes.
//!
//! On the steady-state insert path ([`TupleStore::intern`] after a
//! [`TupleStore::reserve`]) no heap allocation happens at all — pinned by
//! the allocator-shim regression test in `tests/arena_alloc.rs`.

use crate::ast::{Const, GroundAtom, PredId};

/// A handle to an interned ground tuple.
///
/// Ids are dense and assigned in insertion order: `AtomId(i)` is the
/// `i`-th tuple ever interned, so a store doubles as a derivation-ordered
/// log of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a predicate and an argument slice. Collisions are harmless:
/// every probe re-verifies candidates against the stored tuple.
#[inline]
pub fn hash_tuple(pred: PredId, args: &[Const]) -> u64 {
    let mut h = FNV_OFFSET;
    h ^= pred.0 as u64;
    h = h.wrapping_mul(FNV_PRIME);
    for c in args {
        h ^= c.0 as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over an arbitrary key slice (used by the column indices to hash
/// the bound-column values of a probe).
#[inline]
pub fn hash_key(vals: &[Const]) -> u64 {
    let mut h = FNV_OFFSET;
    for c in vals {
        h ^= c.0 as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The interning arena.
///
/// # Example
///
/// ```
/// use parra_datalog::arena::TupleStore;
/// use parra_datalog::ast::{Const, PredId};
///
/// let mut store = TupleStore::new();
/// let p = PredId(0);
/// let (id, fresh) = store.intern(p, &[Const(1), Const(2)]);
/// assert!(fresh);
/// let (again, fresh2) = store.intern(p, &[Const(1), Const(2)]);
/// assert_eq!(id, again);
/// assert!(!fresh2);
/// assert_eq!(store.args(id), &[Const(1), Const(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct TupleStore {
    /// Per-atom predicate.
    preds: Vec<PredId>,
    /// Per-atom `(start, len)` span into `args`.
    spans: Vec<(u32, u32)>,
    /// Per-atom cached tuple hash (reused when the table grows).
    hashes: Vec<u64>,
    /// Flat argument storage.
    args: Vec<Const>,
    /// Open-addressing table: `0` = empty, otherwise `id + 1`.
    /// Length is always a power of two.
    table: Vec<u32>,
}

impl Default for TupleStore {
    fn default() -> Self {
        TupleStore::new()
    }
}

impl TupleStore {
    /// An empty store.
    pub fn new() -> TupleStore {
        TupleStore {
            preds: Vec::new(),
            spans: Vec::new(),
            hashes: Vec::new(),
            args: Vec::new(),
            table: vec![0; 16],
        }
    }

    /// Number of interned tuples.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Total number of stored argument constants.
    pub fn args_len(&self) -> usize {
        self.args.len()
    }

    /// Approximate heap footprint in bytes (capacities, not lengths).
    pub fn heap_bytes(&self) -> usize {
        self.preds.capacity() * std::mem::size_of::<PredId>()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.args.capacity() * std::mem::size_of::<Const>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    /// Pre-sizes the store for `atoms` tuples holding `args` constants in
    /// total, so subsequent [`intern`](TupleStore::intern) calls allocate
    /// nothing until the reservation is exceeded.
    pub fn reserve(&mut self, atoms: usize, args: usize) {
        self.preds.reserve(atoms);
        self.spans.reserve(atoms);
        self.hashes.reserve(atoms);
        self.args.reserve(args);
        let want = table_size_for(self.len() + atoms);
        if want > self.table.len() {
            self.grow_table(want);
        }
    }

    /// The predicate of a tuple.
    #[inline]
    pub fn pred(&self, id: AtomId) -> PredId {
        self.preds[id.index()]
    }

    /// The argument constants of a tuple.
    #[inline]
    pub fn args(&self, id: AtomId) -> &[Const] {
        let (start, len) = self.spans[id.index()];
        &self.args[start as usize..(start + len) as usize]
    }

    /// Materializes a tuple as a [`GroundAtom`] (cold paths only: witness
    /// extraction, display, tests).
    pub fn ground(&self, id: AtomId) -> GroundAtom {
        GroundAtom {
            pred: self.pred(id),
            args: self.args(id).to_vec(),
        }
    }

    /// Looks up a tuple without inserting.
    pub fn lookup(&self, pred: PredId, args: &[Const]) -> Option<AtomId> {
        let h = hash_tuple(pred, args);
        let mask = self.table.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == 0 {
                return None;
            }
            let id = AtomId(slot - 1);
            if self.hashes[id.index()] == h && self.pred(id) == pred && self.args(id) == args {
                return Some(id);
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns a tuple, returning its id and whether it was fresh.
    pub fn intern(&mut self, pred: PredId, args: &[Const]) -> (AtomId, bool) {
        let h = hash_tuple(pred, args);
        let mask = self.table.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let slot = self.table[i];
            if slot == 0 {
                break;
            }
            let id = AtomId(slot - 1);
            if self.hashes[id.index()] == h && self.pred(id) == pred && self.args(id) == args {
                return (id, false);
            }
            i = (i + 1) & mask;
        }
        // Insert. Grow first if the load factor would exceed ~7/8 — the
        // slot found above may move, so re-probe after a grow.
        if (self.len() + 1) * 8 > self.table.len() * 7 {
            self.grow_table(self.table.len() * 2);
            let mask = self.table.len() - 1;
            i = (h as usize) & mask;
            while self.table[i] != 0 {
                i = (i + 1) & mask;
            }
        }
        let id = AtomId(self.preds.len() as u32);
        let start = self.args.len() as u32;
        self.args.extend_from_slice(args);
        self.preds.push(pred);
        self.spans.push((start, args.len() as u32));
        self.hashes.push(h);
        self.table[i] = id.0 + 1;
        (id, true)
    }

    fn grow_table(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mut table = vec![0u32; new_len];
        let mask = new_len - 1;
        for (idx, &h) in self.hashes.iter().enumerate() {
            let mut i = (h as usize) & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = idx as u32 + 1;
        }
        self.table = table;
    }
}

/// The table length needed to hold `n` tuples below the 7/8 load factor.
fn table_size_for(n: usize) -> usize {
    let min = n * 8 / 7 + 1;
    min.next_power_of_two().max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_preserves_order() {
        let mut s = TupleStore::new();
        let p = PredId(3);
        let q = PredId(4);
        let (a, fresh_a) = s.intern(p, &[Const(1)]);
        let (b, fresh_b) = s.intern(q, &[Const(1)]);
        let (a2, fresh_a2) = s.intern(p, &[Const(1)]);
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, AtomId(0));
        assert_eq!(b, AtomId(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pred(b), q);
    }

    #[test]
    fn lookup_matches_intern() {
        let mut s = TupleStore::new();
        let p = PredId(0);
        assert_eq!(s.lookup(p, &[Const(7)]), None);
        let (id, _) = s.intern(p, &[Const(7)]);
        assert_eq!(s.lookup(p, &[Const(7)]), Some(id));
        assert_eq!(s.lookup(p, &[Const(8)]), None);
        // Same args, different predicate: distinct tuple.
        assert_eq!(s.lookup(PredId(1), &[Const(7)]), None);
    }

    #[test]
    fn survives_growth() {
        let mut s = TupleStore::new();
        let p = PredId(0);
        let ids: Vec<AtomId> = (0..1000)
            .map(|i| s.intern(p, &[Const(i), Const(i * 2)]).0)
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let i = i as u32;
            assert_eq!(s.args(*id), &[Const(i), Const(i * 2)]);
            assert_eq!(s.lookup(p, &[Const(i), Const(i * 2)]), Some(*id));
        }
        assert_eq!(s.len(), 1000);
        assert_eq!(s.args_len(), 2000);
    }

    #[test]
    fn nullary_tuples() {
        let mut s = TupleStore::new();
        let (id, fresh) = s.intern(PredId(5), &[]);
        assert!(fresh);
        assert_eq!(s.args(id), &[] as &[Const]);
        assert!(!s.intern(PredId(5), &[]).1);
        assert!(s.intern(PredId(6), &[]).1);
    }

    #[test]
    fn ground_roundtrip() {
        let mut s = TupleStore::new();
        let (id, _) = s.intern(PredId(2), &[Const(9), Const(4)]);
        let g = s.ground(id);
        assert_eq!(g.pred, PredId(2));
        assert_eq!(g.args, vec![Const(9), Const(4)]);
    }

    #[test]
    fn reserve_prevents_rehash() {
        let mut s = TupleStore::new();
        s.reserve(100, 200);
        let table_len = s.table.len();
        for i in 0..100 {
            s.intern(PredId(0), &[Const(i), Const(i)]);
        }
        assert_eq!(s.table.len(), table_len, "reserve must pre-size the table");
    }
}
