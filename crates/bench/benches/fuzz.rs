//! A5: differential-fuzzing throughput — cases per second for each
//! oracle, over its own generator family. The per-case cost is what the
//! `cases_per_second` constants in `parra_fuzz::oracle` budget for, so
//! this bench doubles as the calibration source for those constants.

use parra_bench::micro::Harness;
use parra_fuzz::gen::SystemGen;
use parra_fuzz::oracle::all_oracles;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("fuzz");
    group.sample_size(10);
    for oracle in all_oracles() {
        let gen = SystemGen::new(oracle.gen_config());
        // A fixed window of seeds per iteration smooths over per-seed
        // variance (some cases are skipped, some explore more states).
        group.bench_function(&format!("{}/10_cases", oracle.name()), |b| {
            let mut next = 0u64;
            b.iter(|| {
                let base = next;
                next = next.wrapping_add(10);
                let mut fails = 0u32;
                for seed in base..base + 10 {
                    let case = gen.case(seed);
                    if oracle.check(&case.sys).is_fail() {
                        fails += 1;
                    }
                }
                assert_eq!(fails, 0, "{}: oracle failed in bench", oracle.name());
                std::hint::black_box(fails)
            })
        });
    }
    group.finish();
}
