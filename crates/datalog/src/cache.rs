//! Cache Datalog: inference with a bounded working set (Section 4).
//!
//! The Cache is a set of ground atoms controlling inference:
//!
//! * **Add** — an instantiated rule may fire only when all its body atoms
//!   are in the Cache; the head is added to the Cache;
//! * **Drop** — atoms may be dropped non-deterministically.
//!
//! `Prog ⊢ₖ g` means `g` is inferable with `|Cache| ≤ k` throughout.
//! Standard Datalog is the special case "never drop, unbounded cache". The
//! paper bounds the cache for its `makeP` programs by `O(Q₀²)`
//! (Lemma 4.4), via an inference strategy read off the dependency graph
//! (Lemma 4.6).
//!
//! Two tools live here:
//!
//! * [`prove_with_cache`] — exact (exponential) search deciding
//!   `Prog ⊢ₖ g`, for small instances and tests;
//! * [`cache_schedule`] — the constructive Lemma 4.6: from a semi-naive
//!   derivation, compute an Add/Drop schedule and its peak cache size
//!   (atoms are dropped at their last use).

use crate::ast::{GroundAtom, Program, Rule, Term};
use crate::eval::{derivation_cone, Database, Evaluator};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// One step of a cache schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleStep {
    /// Infer and cache the atom (via the recorded rule).
    Add(GroundAtom),
    /// Drop the atom from the cache.
    Drop(GroundAtom),
}

/// An Add/Drop schedule proving a goal with a bounded cache.
#[derive(Debug, Clone)]
pub struct CacheSchedule {
    /// The steps in order.
    pub steps: Vec<ScheduleStep>,
    /// The maximal cache size reached.
    pub peak: usize,
    /// Running cache size after each step — `occupancy[i]` is the number
    /// of cached atoms after `steps[i]`. A time series for tracing the
    /// register-allocation profile of the schedule.
    pub occupancy: Vec<usize>,
}

/// Computes a cache schedule for `goal` from the program's least model:
/// derives exactly the atoms in the goal's derivation cone in derivation
/// order and drops each atom after its last use (keeping the goal).
///
/// Returns `None` if the goal is not derivable.
pub fn cache_schedule(program: &Program, goal: &GroundAtom) -> Option<CacheSchedule> {
    let db = Evaluator::new(program)
        .with_provenance(true)
        .run_until(Some(goal));
    schedule_from_database(&db, goal)
}

/// As [`cache_schedule`], from a pre-computed database.
///
/// The schedule derives the goal's derivation cone depth-first (each atom's
/// dependencies just before the atom itself) and drops every atom at its
/// last use — the register-allocation view of the paper's dependency-graph
/// strategy.
///
/// Returns `None` if the goal was not derived or the database was computed
/// without provenance (see
/// [`Evaluator::with_provenance`](crate::eval::Evaluator::with_provenance)).
pub fn schedule_from_database(db: &Database, goal: &GroundAtom) -> Option<CacheSchedule> {
    let cone = derivation_cone(db, goal)?;
    let goal_idx = db.index_of(goal)?;

    // Remaining-use counts over the cone.
    let mut uses: HashMap<usize, usize> = HashMap::new();
    for &i in &cone {
        let (_, body) = db.derivation(i);
        for &b in body {
            *uses.entry(b).or_insert(0) += 1;
        }
    }

    let mut steps = Vec::new();
    let mut occupancy = Vec::new();
    let mut in_cache: HashSet<usize> = HashSet::new();
    let mut emitted: HashSet<usize> = HashSet::new();
    let mut peak = 0usize;

    // Iterative DFS post-order from the goal.
    enum Frame {
        Visit(usize),
        Emit(usize),
    }
    let mut stack = vec![Frame::Visit(goal_idx)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Visit(i) => {
                if emitted.contains(&i) {
                    continue;
                }
                stack.push(Frame::Emit(i));
                // Push in reverse so body atoms are *emitted* in body
                // order: recursive dependencies are resolved first, and
                // short-lived side atoms arrive just before their use.
                let (_, body) = db.derivation(i);
                for &b in body.iter().rev() {
                    stack.push(Frame::Visit(b));
                }
            }
            Frame::Emit(i) => {
                if !emitted.insert(i) {
                    continue;
                }
                steps.push(ScheduleStep::Add(db.ground(i)));
                in_cache.insert(i);
                occupancy.push(in_cache.len());
                peak = peak.max(in_cache.len());
                // Consume this derivation's body uses; drop exhausted atoms.
                let (_, body) = db.derivation(i);
                for &b in body.to_vec().iter() {
                    let u = uses.get_mut(&b).expect("counted above");
                    *u -= 1;
                    if *u == 0 && b != goal_idx && in_cache.remove(&b) {
                        steps.push(ScheduleStep::Drop(db.ground(b)));
                        occupancy.push(in_cache.len());
                    }
                }
            }
        }
    }
    Some(CacheSchedule {
        steps,
        peak,
        occupancy,
    })
}

/// Replays a schedule under the Cache semantics, checking that every Add
/// is justified by a rule whose body is in the cache, and that the cache
/// never exceeds `k`. Returns whether the goal ends up derived.
pub fn verify_schedule(
    program: &Program,
    goal: &GroundAtom,
    schedule: &CacheSchedule,
    k: usize,
) -> bool {
    let mut cache: BTreeSet<GroundAtom> = BTreeSet::new();
    let mut derived_goal = false;
    for step in &schedule.steps {
        match step {
            ScheduleStep::Add(g) => {
                if !addable(program, &cache, g) {
                    return false;
                }
                cache.insert(g.clone());
                if cache.len() > k {
                    return false;
                }
                if g == goal {
                    derived_goal = true;
                }
            }
            ScheduleStep::Drop(g) => {
                if !cache.remove(g) {
                    return false;
                }
            }
        }
    }
    derived_goal
}

/// Whether `g` can be inferred in one Add step from `cache`.
fn addable(program: &Program, cache: &BTreeSet<GroundAtom>, g: &GroundAtom) -> bool {
    program
        .rules()
        .iter()
        .any(|rule| rule_yields(rule, cache, g))
}

/// Whether some instantiation of `rule` with body in `cache` has head `g`.
fn rule_yields(rule: &Rule, cache: &BTreeSet<GroundAtom>, g: &GroundAtom) -> bool {
    // Match the head against g first.
    let mut subst: HashMap<u32, crate::ast::Const> = HashMap::new();
    if rule.head.pred != g.pred || rule.head.terms.len() != g.args.len() {
        return false;
    }
    for (t, c) in rule.head.terms.iter().zip(&g.args) {
        match t {
            Term::Const(k) => {
                if k != c {
                    return false;
                }
            }
            Term::Var(v) => match subst.get(v) {
                Some(bound) if bound != c => return false,
                Some(_) => {}
                None => {
                    subst.insert(*v, *c);
                }
            },
        }
    }
    // Then satisfy the body from the cache (backtracking).
    satisfy(rule, 0, &mut subst, cache)
}

fn satisfy(
    rule: &Rule,
    i: usize,
    subst: &mut HashMap<u32, crate::ast::Const>,
    cache: &BTreeSet<GroundAtom>,
) -> bool {
    if i == rule.body.len() {
        return true;
    }
    let pattern = &rule.body[i];
    for atom in cache {
        if atom.pred != pattern.pred || atom.args.len() != pattern.terms.len() {
            continue;
        }
        let saved: Vec<(u32, Option<crate::ast::Const>)> = pattern
            .variables()
            .into_iter()
            .map(|v| (v, subst.get(&v).copied()))
            .collect();
        let mut ok = true;
        for (t, c) in pattern.terms.iter().zip(&atom.args) {
            match t {
                Term::Const(k) => {
                    if k != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(bound) if bound != c => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        subst.insert(*v, *c);
                    }
                },
            }
        }
        if ok && satisfy(rule, i + 1, subst, cache) {
            return true;
        }
        for (v, old) in saved {
            match old {
                Some(c) => {
                    subst.insert(v, c);
                }
                None => {
                    subst.remove(&v);
                }
            }
        }
    }
    false
}

/// Exact decision of `Prog ⊢ₖ g`: breadth-first search over cache
/// configurations. Exponential in general — intended for small programs
/// and for validating [`cache_schedule`] and the Lemma 4.2 translation.
pub fn prove_with_cache(program: &Program, goal: &GroundAtom, k: usize) -> bool {
    let mut seen: HashSet<BTreeSet<GroundAtom>> = HashSet::new();
    let mut queue: VecDeque<BTreeSet<GroundAtom>> = VecDeque::new();
    let empty = BTreeSet::new();
    seen.insert(empty.clone());
    queue.push_back(empty);

    while let Some(cache) = queue.pop_front() {
        if cache.contains(goal) {
            return true;
        }
        // Adds: every derivable atom not already present.
        for add in derivable_from(program, &cache) {
            if cache.contains(&add) || cache.len() + 1 > k {
                continue;
            }
            let mut next = cache.clone();
            next.insert(add);
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
        // Drops.
        for atom in &cache {
            let mut next = cache.clone();
            next.remove(atom);
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    false
}

/// All atoms addable in one step from `cache`.
fn derivable_from(program: &Program, cache: &BTreeSet<GroundAtom>) -> Vec<GroundAtom> {
    let mut out = Vec::new();
    for rule in program.rules() {
        enumerate_instances(rule, 0, &mut HashMap::new(), cache, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn enumerate_instances(
    rule: &Rule,
    i: usize,
    subst: &mut HashMap<u32, crate::ast::Const>,
    cache: &BTreeSet<GroundAtom>,
    out: &mut Vec<GroundAtom>,
) {
    if i == rule.body.len() {
        out.push(GroundAtom {
            pred: rule.head.pred,
            args: rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => *subst.get(v).expect("safe rule"),
                })
                .collect(),
        });
        return;
    }
    let pattern = &rule.body[i];
    for atom in cache {
        if atom.pred != pattern.pred {
            continue;
        }
        let saved: Vec<(u32, Option<crate::ast::Const>)> = pattern
            .variables()
            .into_iter()
            .map(|v| (v, subst.get(&v).copied()))
            .collect();
        let mut ok = true;
        for (t, c) in pattern.terms.iter().zip(&atom.args) {
            match t {
                Term::Const(k) => {
                    if k != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match subst.get(v) {
                    Some(bound) if bound != c => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        subst.insert(*v, *c);
                    }
                },
            }
        }
        if ok {
            enumerate_instances(rule, i + 1, subst, cache, out);
        }
        for (v, old) in saved {
            match old {
                Some(c) => {
                    subst.insert(v, c);
                }
                None => {
                    subst.remove(&v);
                }
            }
        }
    }
}

/// The smallest `k` with `Prog ⊢ₖ g`, searching `1..=max_k`; `None` if not
/// provable within `max_k`.
pub fn smallest_cache(program: &Program, goal: &GroundAtom, max_k: usize) -> Option<usize> {
    (1..=max_k).find(|&k| prove_with_cache(program, goal, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Const, PredId, Program};

    /// Chain: base(v0); step(vᵢ) :- step(vᵢ₋₁)-ish via next facts.
    fn chain(n: u32) -> (Program, GroundAtom) {
        let mut p = Program::new();
        let next = p.predicate("next", 2);
        let reach = p.predicate("reach", 1);
        let consts: Vec<Const> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
        for w in consts.windows(2) {
            p.fact(next, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![consts[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(reach, vec![*consts.last().unwrap()]);
        (p, goal)
    }

    #[test]
    fn schedule_proves_goal_with_small_cache() {
        let (p, goal) = chain(6);
        let sched = cache_schedule(&p, &goal).expect("derivable");
        // Along a chain, two reach atoms + one next fact suffice at a time;
        // the schedule should stay well below the full model size.
        assert!(sched.peak <= 4, "peak = {}", sched.peak);
        assert!(verify_schedule(&p, &goal, &sched, sched.peak));
        assert!(!verify_schedule(&p, &goal, &sched, sched.peak - 1));
    }

    #[test]
    fn occupancy_tracks_schedule() {
        let (p, goal) = chain(6);
        let sched = cache_schedule(&p, &goal).expect("derivable");
        assert_eq!(sched.steps.len(), sched.occupancy.len());
        assert_eq!(
            sched.occupancy.iter().copied().max().unwrap_or(0),
            sched.peak
        );
        // Replay: Add bumps the running size, Drop decrements it.
        let mut n = 0usize;
        for (step, &occ) in sched.steps.iter().zip(&sched.occupancy) {
            match step {
                ScheduleStep::Add(_) => n += 1,
                ScheduleStep::Drop(_) => n -= 1,
            }
            assert_eq!(n, occ);
        }
    }

    #[test]
    fn schedule_none_for_underivable() {
        let (p, _) = chain(3);
        let bogus = GroundAtom::new(PredId(1), vec![Const(999)]);
        assert!(cache_schedule(&p, &bogus).is_none());
    }

    #[test]
    fn exact_cache_search_small() {
        let (p, goal) = chain(3);
        // Needs at least: reach(v0), next fact, derived reach — the exact
        // threshold is found by search and the schedule peak bounds it.
        let sched = cache_schedule(&p, &goal).unwrap();
        let k_min = smallest_cache(&p, &goal, sched.peak + 1).expect("provable");
        assert!(k_min <= sched.peak);
        assert!(!prove_with_cache(&p, &goal, k_min - 1));
        assert!(prove_with_cache(&p, &goal, k_min));
    }

    #[test]
    fn cache_one_proves_single_fact() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        let a = p.constant("a");
        p.fact(q, vec![a]).unwrap();
        let goal = GroundAtom::new(q, vec![a]);
        assert!(prove_with_cache(&p, &goal, 1));
    }

    #[test]
    fn drops_are_needed_when_cache_tight() {
        // Two independent facts feed the goal rule: g :- f1, f2 requires
        // all three atoms at once at the final step, but the chain of
        // intermediate a → b does not persist: with k = 3 the search must
        // drop intermediates.
        let mut p = Program::new();
        let f1 = p.predicate("f1", 0);
        let f2 = p.predicate("f2", 0);
        let mid = p.predicate("mid", 0);
        let g = p.predicate("g", 0);
        p.fact(f1, vec![]).unwrap();
        p.rule(Atom::new(mid, vec![]), vec![Atom::new(f1, vec![])])
            .unwrap();
        p.rule(Atom::new(f2, vec![]), vec![Atom::new(mid, vec![])])
            .unwrap();
        p.rule(
            Atom::new(g, vec![]),
            vec![Atom::new(f1, vec![]), Atom::new(f2, vec![])],
        )
        .unwrap();
        let goal = GroundAtom::new(g, vec![]);
        // Full model holds 4 atoms, but k = 3 suffices by dropping mid.
        assert!(prove_with_cache(&p, &goal, 3));
        assert!(!prove_with_cache(&p, &goal, 2));
    }

    use crate::ast::Term;
}
