//! Theorem 5.1 end-to-end: the Figure 6 reduction is correct — the PureRA
//! program is unsafe iff the TQBF instance is true. The verifier verdict is
//! compared against the recursive TQBF oracle.

use parra_core::verify::{EngineId, Verdict, Verifier, VerifierOptions};
use parra_qbf::eval::evaluate;
use parra_qbf::formula::{BoolExpr, Qbf};
use parra_qbf::gen;
use parra_qbf::reduce::reduce_to_purera;
use parra_qbf::rng::Rng;

fn check(qbf: &Qbf, label: &str) {
    let truth = evaluate(qbf);
    let reduction = reduce_to_purera(qbf);
    let verifier =
        Verifier::new(&reduction.system, VerifierOptions::default()).expect("PureRA class");
    let result = verifier.run(EngineId::SimplifiedReach);
    let expected = if truth {
        Verdict::Unsafe
    } else {
        Verdict::Safe
    };
    assert_eq!(
        result.verdict, expected,
        "{label}: Ψ = {qbf} is {truth} but the reduced program is {:?}",
        result.verdict
    );
}

#[test]
fn constants_roundtrip() {
    check(&Qbf::new(0, BoolExpr::Const(true)), "const-true");
    check(&Qbf::new(0, BoolExpr::Const(false)), "const-false");
}

#[test]
fn n0_formulas() {
    // ∀u0. u0 — false.
    check(&Qbf::new(0, BoolExpr::var(0)), "forall-u0");
    // ∀u0. ¬u0 — false.
    check(&Qbf::new(0, BoolExpr::var(0).not()), "forall-not-u0");
    // ∀u0. u0 ∨ ¬u0 — true.
    check(
        &Qbf::new(0, BoolExpr::var(0).or(BoolExpr::var(0).not())),
        "excluded-middle",
    );
    // ∀u0. u0 ∧ ¬u0 — false.
    check(
        &Qbf::new(0, BoolExpr::var(0).and(BoolExpr::var(0).not())),
        "contradiction",
    );
}

#[test]
fn n1_copycat_and_clairvoyant() {
    // ∀u0 ∃e1 ∀u1. e1 ↔ u0 — true.
    check(&gen::copycat(1), "copycat-1");
    // ∀u0 ∃e1 ∀u1. e1 ↔ u1 — false.
    check(&gen::clairvoyant(1), "clairvoyant-1");
}

#[test]
fn n1_mixed_formulas() {
    // ∀u0 ∃e1 ∀u1. (u0 ∨ e1) — true: pick e1 = 1.
    check(
        &Qbf::new(1, BoolExpr::var(0).or(BoolExpr::var(1))),
        "or-true",
    );
    // ∀u0 ∃e1 ∀u1. (u0 ∧ e1) — false: u0 may be 0.
    check(
        &Qbf::new(1, BoolExpr::var(0).and(BoolExpr::var(1))),
        "and-false",
    );
    // ∀u0 ∃e1 ∀u1. (e1 ∧ (u1 ∨ ¬u1)) — true.
    check(
        &Qbf::new(
            1,
            BoolExpr::var(1).and(BoolExpr::var(2).or(BoolExpr::var(2).not())),
        ),
        "e-and-taut",
    );
}

#[test]
fn n2_copycat() {
    check(&gen::copycat(2), "copycat-2");
}

#[test]
fn n2_clairvoyant() {
    check(&gen::clairvoyant(2), "clairvoyant-2");
}

#[test]
fn random_small_instances() {
    let mut rng = Rng::seed_from_u64(7);
    for i in 0..8 {
        let q = gen::random(&mut rng, 1, 2);
        check(&q, &format!("random-n1-{i}"));
    }
}

#[test]
fn random_depth_two_instances() {
    let mut rng = Rng::seed_from_u64(99);
    for i in 0..4 {
        let q = gen::random(&mut rng, 2, 2);
        check(&q, &format!("random-n2-{i}"));
    }
}
