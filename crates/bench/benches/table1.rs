//! T1: verification time for representative systems of Table 1's
//! decidable cells (the undecidable cells are classifier rejections and
//! take no measurable work).

use parra_bench::experiments::{cas_example_system, handshake_system};
use parra_bench::micro::Harness;
use parra_core::verify::{EngineId, Verifier, VerifierOptions};

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("table1");
    let systems = [
        ("pspace_handshake_unsafe", handshake_system(false)),
        ("pspace_handshake_safe", handshake_system(true)),
        ("pspace_cas_example", cas_example_system()),
    ];
    for (name, sys) in systems {
        let verifier = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = verifier.run(EngineId::SimplifiedReach);
                std::hint::black_box(r.verdict)
            })
        });
    }
    group.finish();
}
