//! Classic memory-model litmus tests, phrased as parameterized systems.
//!
//! These pin down the RA semantics itself: each test asks whether a
//! characteristic relaxed outcome is *observable* (the assertion fires
//! exactly when it is). Under RA the expected answers are standard:
//!
//! | test | relaxed outcome | RA |
//! |---|---|---|
//! | MP (message passing) | see flag, miss data | forbidden |
//! | SB (store buffering) | both read 0 | **allowed** |
//! | LB (load buffering) | both read 1 | forbidden (po ∪ rf acyclic) |
//! | IRIW | readers disagree on order | **allowed** (no multi-copy atomicity) |
//! | WRC (write-read causality) | break the causal chain | forbidden |
//! | CoRR (read-read coherence) | read new then old | forbidden |
//! | 2+2W | both vars end at the "early" write | **allowed** |
//!
//! Observability means "the assertion is reachable", so tests whose
//! outcome is allowed carry [`Expected::Unsafe`].

use crate::{Benchmark, Expected};
use parra_program::builder::SystemBuilder;

/// MP: the flag carries the data — a reader that sees `flag = 1` cannot
/// read `data = 0`. Forbidden under RA.
pub fn message_passing() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let data = b.var("data");
    let flag = b.var("flag");
    let mut env = b.program("writer");
    env.store(data, 1).store(flag, 1);
    let env = env.finish();
    let mut d = b.program("reader");
    let rf = d.reg("rf");
    let rd = d.reg("rd");
    d.load(rf, flag)
        .assume_eq(rf, 1)
        .load(rd, data)
        .assume_eq(rd, 0)
        .assert_false();
    let d = d.finish();
    Benchmark {
        name: "mp",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// SB: two threads store then read the other variable; both reading the
/// initial 0 is allowed under RA (no store-load fences).
pub fn store_buffering() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let r0 = b.var("res0");
    let r1 = b.var("res1");
    let env = {
        let mut p = b.program("noop");
        p.skip();
        p.finish()
    };
    let side = |b: &SystemBuilder, name: &str, mine, other, result| {
        let mut p = b.program(name);
        let r = p.reg("r");
        p.store(mine, 1)
            .load(r, other)
            .assume_eq(r, 0)
            .store(result, 1);
        p.finish()
    };
    let d1 = side(&b, "t1", x, y, r0);
    let d2 = side(&b, "t2", y, x, r1);
    let mut obs = b.program("observer");
    let a = obs.reg("a");
    let c = obs.reg("c");
    obs.load(a, r0)
        .assume_eq(a, 1)
        .load(c, r1)
        .assume_eq(c, 1)
        .assert_false();
    let obs = obs.finish();
    Benchmark {
        name: "sb",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)³",
        expected: Expected::Unsafe,
        system: b.build(env, vec![d1, d2, obs]),
    }
}

/// LB: both threads read the other's (not yet performed) store. Under
/// RA loads read *existing* messages, so `po ∪ rf` stays acyclic and the
/// outcome is forbidden.
pub fn load_buffering() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let r0 = b.var("res0");
    let r1 = b.var("res1");
    let env = {
        let mut p = b.program("noop");
        p.skip();
        p.finish()
    };
    let side = |b: &SystemBuilder, name: &str, read, write, result| {
        let mut p = b.program(name);
        let r = p.reg("r");
        p.load(r, read)
            .assume_eq(r, 1)
            .store(write, 1)
            .store(result, 1);
        p.finish()
    };
    let d1 = side(&b, "t1", x, y, r0);
    let d2 = side(&b, "t2", y, x, r1);
    let mut obs = b.program("observer");
    let a = obs.reg("a");
    let c = obs.reg("c");
    obs.load(a, r0)
        .assume_eq(a, 1)
        .load(c, r1)
        .assume_eq(c, 1)
        .assert_false();
    let obs = obs.finish();
    Benchmark {
        name: "lb",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)³",
        expected: Expected::Safe,
        system: b.build(env, vec![d1, d2, obs]),
    }
}

/// IRIW: two independent writers; two readers observe the writes in
/// opposite orders. Allowed under RA (writes to different variables are
/// not globally ordered).
pub fn iriw() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let r0 = b.var("res0");
    let r1 = b.var("res1");
    // Writers are env threads (one writes x, one writes y).
    let mut env = b.program("writer");
    env.choice(
        |p| {
            p.store(x, 1);
        },
        |p| {
            p.store(y, 1);
        },
    );
    let env = env.finish();
    let reader = |b: &SystemBuilder, name: &str, first, second, result| {
        let mut p = b.program(name);
        let r = p.reg("r");
        let s = p.reg("s");
        p.load(r, first)
            .assume_eq(r, 1)
            .load(s, second)
            .assume_eq(s, 0)
            .store(result, 1);
        p.finish()
    };
    let d1 = reader(&b, "r1", x, y, r0);
    let d2 = reader(&b, "r2", y, x, r1);
    let mut obs = b.program("observer");
    let a = obs.reg("a");
    let c = obs.reg("c");
    obs.load(a, r0)
        .assume_eq(a, 1)
        .load(c, r1)
        .assume_eq(c, 1)
        .assert_false();
    let obs = obs.finish();
    Benchmark {
        name: "iriw",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)³",
        expected: Expected::Unsafe,
        system: b.build(env, vec![d1, d2, obs]),
    }
}

/// WRC: t2 reads t1's store and then publishes; t3 synchronizes on the
/// publication and must also see t1's store (causality is transitive
/// under RA). Forbidden.
pub fn write_read_causality() -> Benchmark {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("t1_and_t2");
    let r = env.reg("r");
    env.choice(
        |p| {
            p.store(x, 1);
        },
        |p| {
            p.load(r, x);
            p.assume_eq(r, 1);
            p.store(y, 1);
        },
    );
    let env = env.finish();
    let mut d = b.program("t3");
    let ry = d.reg("ry");
    let rx = d.reg("rx");
    d.load(ry, y)
        .assume_eq(ry, 1)
        .load(rx, x)
        .assume_eq(rx, 0)
        .assert_false();
    let d = d.finish();
    Benchmark {
        name: "wrc",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Safe,
        system: b.build(env, vec![d]),
    }
}

/// CoRR: reads of the same variable by one thread respect modification
/// order — after reading the *single* writer's second store, its first is
/// unreadable. Forbidden under RA (per-variable coherence).
///
/// The writer must be a `dis` thread: with unboundedly many identical
/// writers, another writer's `1` can legitimately sit *above* the
/// observed `2` in modification order, making the pattern observable —
/// see [`coherence_rr_parameterized`].
pub fn coherence_rr() -> Benchmark {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let env = {
        let mut p = b.program("noop");
        p.skip();
        p.finish()
    };
    let mut w = b.program("writer");
    w.store(x, 1).store(x, 2);
    let w = w.finish();
    let mut d = b.program("reader");
    let r = d.reg("r");
    let s = d.reg("s");
    d.load(r, x)
        .assume_eq(r, 2)
        .load(s, x)
        .assume_eq(s, 1)
        .assert_false();
    let d = d.finish();
    Benchmark {
        name: "corr",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)²",
        expected: Expected::Safe,
        system: b.build(env, vec![w, d]),
    }
}

/// The parameterized twist on CoRR: when the writer is the *replicated*
/// `env` program, a second writer's `1` can be placed above the first
/// writer's `2`, so "read 2 then 1" becomes observable. A nice
/// demonstration that parameterization genuinely adds behaviours.
pub fn coherence_rr_parameterized() -> Benchmark {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let mut env = b.program("writer");
    env.store(x, 1).store(x, 2);
    let env = env.finish();
    let mut d = b.program("reader");
    let r = d.reg("r");
    let s = d.reg("s");
    d.load(r, x)
        .assume_eq(r, 2)
        .load(s, x)
        .assume_eq(s, 1)
        .assert_false();
    let d = d.finish();
    Benchmark {
        name: "corr-parameterized",
        source: "classic litmus (parameterized variant)",
        class_note: "env(nocas, acyc) ‖ dis(acyc)",
        expected: Expected::Unsafe,
        system: b.build(env, vec![d]),
    }
}

/// 2+2W: `t1: x := 1; y := 2` and `t2: y := 1; x := 2`, with the
/// characteristic outcome that each thread's *first* store ends up last
/// in its variable's modification order (an SC cycle through po ∪ mo).
/// Allowed under RA — but only observable with *separate* per-variable
/// observers: a single observer that reads `x = 2` inherits `t2`'s view
/// of its own later `y = 1`, which hides `y = 2` (message views carry
/// causality!). The per-variable observers publish flags that a final
/// checker joins.
pub fn two_plus_two_w() -> Benchmark {
    let mut b = SystemBuilder::new(3);
    let x = b.var("x");
    let y = b.var("y");
    let r0 = b.var("res0");
    let r1 = b.var("res1");
    let env = {
        let mut p = b.program("noop");
        p.skip();
        p.finish()
    };
    let side = |b: &SystemBuilder, name: &str, first, second| {
        let mut p = b.program(name);
        p.store(first, 1).store(second, 2);
        p.finish()
    };
    let d1 = side(&b, "t1", x, y);
    let d2 = side(&b, "t2", y, x);
    // Per-variable observers: each sees "2 then 1" on its variable.
    let watch = |b: &SystemBuilder, name: &str, var, result| {
        let mut p = b.program(name);
        let r = p.reg("r");
        p.load(r, var)
            .assume_eq(r, 2)
            .load(r, var)
            .assume_eq(r, 1)
            .store(result, 1);
        p.finish()
    };
    let o1 = watch(&b, "obs_x", x, r0);
    let o2 = watch(&b, "obs_y", y, r1);
    let mut fin = b.program("final");
    let a = fin.reg("a");
    let c = fin.reg("c");
    fin.load(a, r0)
        .assume_eq(a, 1)
        .load(c, r1)
        .assume_eq(c, 1)
        .assert_false();
    let fin = fin.finish();
    Benchmark {
        name: "2+2w",
        source: "classic litmus",
        class_note: "env(nocas, acyc) ‖ dis(acyc)⁵",
        expected: Expected::Unsafe,
        system: b.build(env, vec![d1, d2, o1, o2, fin]),
    }
}

/// The classic suite.
pub fn all_classic() -> Vec<Benchmark> {
    vec![
        message_passing(),
        store_buffering(),
        load_buffering(),
        iriw(),
        write_read_causality(),
        coherence_rr(),
        coherence_rr_parameterized(),
        two_plus_two_w(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::classify::SystemClass;

    #[test]
    fn classic_suite_classifies() {
        for bench in all_classic() {
            assert!(
                SystemClass::of(&bench.system).is_decidable_fragment(),
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn expected_outcomes_match_ra_folklore() {
        let allowed: Vec<&str> = all_classic()
            .iter()
            .filter(|b| b.expected == Expected::Unsafe)
            .map(|b| b.name)
            .collect();
        assert_eq!(allowed, vec!["sb", "iriw", "corr-parameterized", "2+2w"]);
    }
}
