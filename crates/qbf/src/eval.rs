//! The TQBF ground-truth oracle: direct recursive evaluation.
//!
//! Exponential in the prefix length — exactly what the PSPACE-hardness
//! reduction is validated against on small instances.

use crate::formula::Qbf;

/// Decides whether `Ψ` is true.
pub fn evaluate(qbf: &Qbf) -> bool {
    let mut assignment = vec![false; qbf.n_vars()];
    eval_from(qbf, 0, &mut assignment)
}

fn eval_from(qbf: &Qbf, pos: usize, assignment: &mut Vec<bool>) -> bool {
    if pos == qbf.n_vars() {
        return qbf.matrix.eval(assignment);
    }
    let universal = pos.is_multiple_of(2);
    let mut results = [false, false];
    for (i, b) in [false, true].into_iter().enumerate() {
        assignment[pos] = b;
        results[i] = eval_from(qbf, pos + 1, assignment);
        // Short-circuit.
        if universal && !results[i] {
            return false;
        }
        if !universal && results[i] {
            return true;
        }
    }
    if universal {
        results[0] && results[1]
    } else {
        results[0] || results[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::BoolExpr;

    #[test]
    fn trivial_formulas() {
        assert!(evaluate(&Qbf::new(0, BoolExpr::Const(true))));
        assert!(!evaluate(&Qbf::new(0, BoolExpr::Const(false))));
    }

    #[test]
    fn single_universal() {
        // ∀u0. u0 — false; ∀u0. u0 ∨ ¬u0 — true.
        assert!(!evaluate(&Qbf::new(0, BoolExpr::var(0))));
        assert!(evaluate(&Qbf::new(
            0,
            BoolExpr::var(0).or(BoolExpr::var(0).not())
        )));
    }

    #[test]
    fn exists_matches_forall() {
        // ∀u0 ∃e1 ∀u1. (e1 ↔ u0): e1 is chosen after u0 but before u1 —
        // true (pick e1 = u0); u1 is unused.
        let iff = BoolExpr::var(1)
            .and(BoolExpr::var(0))
            .or(BoolExpr::var(1).not().and(BoolExpr::var(0).not()));
        assert!(evaluate(&Qbf::new(1, iff)));
        // ∀u0 ∃e1 ∀u1. (e1 ↔ u1): e1 is chosen before u1 — false.
        let iff2 = BoolExpr::var(1)
            .and(BoolExpr::var(2))
            .or(BoolExpr::var(1).not().and(BoolExpr::var(2).not()));
        assert!(!evaluate(&Qbf::new(1, iff2)));
    }

    #[test]
    fn deeper_alternation() {
        // ∀u0 ∃e1 ∀u1 ∃e2 ∀u2. (e1 ↔ u0) ∧ (e2 ↔ u1)
        let mk_iff = |a: usize, b: usize| {
            BoolExpr::var(a)
                .and(BoolExpr::var(b))
                .or(BoolExpr::var(a).not().and(BoolExpr::var(b).not()))
        };
        let m = mk_iff(1, 0).and(mk_iff(3, 2));
        assert!(evaluate(&Qbf::new(2, m)));
        // Flipping the second: (e2 ↔ u2) — u2 quantified later: false.
        let m2 = mk_iff(1, 0).and(mk_iff(3, 4));
        assert!(!evaluate(&Qbf::new(2, m2)));
    }
}
