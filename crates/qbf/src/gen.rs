//! QBF instance generators for tests and benchmarks.

use crate::formula::{BoolExpr, Qbf};
use crate::rng::Rng;

/// `∀u₀∃e₁…∀uₙ. ⋀ᵢ (eᵢ ↔ u_{i-1})` — true: every existential can copy the
/// preceding universal. Scales the reduction linearly in `n`.
pub fn copycat(n: usize) -> Qbf {
    let matrix = BoolExpr::conj((1..=n).map(|i| {
        let e = 2 * i - 1; // position of e_i
        let u = 2 * (i - 1); // position of u_{i-1}
        iff(e, u)
    }));
    Qbf::new(n, matrix)
}

/// `∀u₀∃e₁…∀uₙ. ⋀ᵢ (eᵢ ↔ uᵢ)` — false for `n ≥ 1`: each existential would
/// have to predict the *following* universal.
pub fn clairvoyant(n: usize) -> Qbf {
    if n == 0 {
        return Qbf::new(0, BoolExpr::Const(true));
    }
    let matrix = BoolExpr::conj((1..=n).map(|i| {
        let e = 2 * i - 1; // position of e_i
        let u = 2 * i; // position of u_i
        iff(e, u)
    }));
    Qbf::new(n, matrix)
}

/// A tautological matrix: `∀…∃…. u₀ ∨ ¬u₀` — always true.
pub fn tautology(n: usize) -> Qbf {
    Qbf::new(n, BoolExpr::var(0).or(BoolExpr::var(0).not()))
}

/// An unsatisfiable matrix — always false.
pub fn contradiction(n: usize) -> Qbf {
    Qbf::new(n, BoolExpr::var(0).and(BoolExpr::var(0).not()))
}

/// A random matrix of the given depth over the prefix of `Qbf::new(n, _)`.
pub fn random(rng: &mut Rng, n: usize, depth: usize) -> Qbf {
    let n_vars = 2 * n + 1;
    Qbf::new(n, random_expr(rng, n_vars, depth))
}

fn random_expr(rng: &mut Rng, n_vars: usize, depth: usize) -> BoolExpr {
    if depth == 0 {
        let v = BoolExpr::var(rng.gen_range(n_vars));
        return if rng.gen_bool(0.5) { v } else { v.not() };
    }
    match rng.gen_range(3) {
        0 => random_expr(rng, n_vars, depth - 1).and(random_expr(rng, n_vars, depth - 1)),
        1 => random_expr(rng, n_vars, depth - 1).or(random_expr(rng, n_vars, depth - 1)),
        _ => random_expr(rng, n_vars, depth - 1).not(),
    }
}

fn iff(a: usize, b: usize) -> BoolExpr {
    BoolExpr::var(a)
        .and(BoolExpr::var(b))
        .or(BoolExpr::var(a).not().and(BoolExpr::var(b).not()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;

    #[test]
    fn copycat_true_clairvoyant_false() {
        for n in 0..4 {
            assert!(evaluate(&copycat(n)), "copycat({n})");
        }
        for n in 1..4 {
            assert!(!evaluate(&clairvoyant(n)), "clairvoyant({n})");
        }
    }

    #[test]
    fn constants() {
        for n in 0..3 {
            assert!(evaluate(&tautology(n)));
            assert!(!evaluate(&contradiction(n)));
        }
    }

    #[test]
    fn random_generates_valid_formulas() {
        let mut rng = Rng::seed_from_u64(42);
        for n in 0..3 {
            for _ in 0..5 {
                let q = random(&mut rng, n, 3);
                let _ = evaluate(&q); // must not panic
                assert_eq!(q.n, n);
            }
        }
    }
}
