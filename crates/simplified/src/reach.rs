//! Reachability in the simplified semantics — the direct decision
//! procedure for `env(nocas) ‖ dis₁(acyc) ‖ … ‖ disₙ(acyc)`.
//!
//! The engine interleaves the two halves of the abstraction:
//!
//! * **saturation** of the monotone `env` part between `dis` steps
//!   ([`SimpState::saturate`]) — the fixpoint the paper's Datalog rules
//!   compute;
//! * **search** over the finite `dis` state space (memoized on saturated
//!   states);
//! * **worlds**: the lazily-discovered pre-closure guesses for CAS gaps
//!   (see [`DisSuccessors`](crate::state::DisSuccessors)) — the engine's
//!   rendering of `makeP`'s nondeterministic guess of the `dis` run.
//!
//! For systems in the decidable class with the exact budget, an
//! exhaustive, un-truncated search is a *decision*: `Unsafe` comes with a
//! witness, `Safe` means no instance of any size reaches the target
//! (Theorem 3.4 + Theorem 4.1).
//!
//! # Parallelism
//!
//! The engine is parallel on two axes, both built on
//! [`parra_search::ordered_map`] and both *deterministic*: reports are
//! identical to the sequential engine's for any thread count.
//!
//! * **Worlds**: each round of the outer loop pops a *wave* of up to one
//!   queued pre-closure world per thread and searches them concurrently.
//!   Results are committed strictly in pop order — totals, spawned-world
//!   enqueueing, and the `Unsafe` short-circuit all replay the sequential
//!   schedule. A world whose result a witness from an *earlier* world
//!   would discard cancels itself ([`WaveCancel`]).
//! * **Frontier**: within a world, the BFS runs in batched rounds. Workers
//!   expand frontier states (successor generation + saturation — the hot
//!   part) against a frozen [`SearchGraph`]; a sequential merge then walks
//!   the results in frontier order, doing dedup, target checks, capacity
//!   accounting, and id assignment.
//!
//! With one thread (`--threads 1`) no worker thread is ever spawned and
//! the engine streams state-by-state exactly like the legacy loop.

use crate::state::{Budget, DisStep, SimpState};
use parra_limits::{InterruptReason, ResourceBudget};
use parra_obs::{Counter, Gauge, Phase, PhaseTimer, Recorder};
use parra_program::classify::SystemClass;
use parra_program::ident::VarId;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_search::{ordered_map, SearchGraph, Threads};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Search limits (safety nets; the abstract domain is finite).
#[derive(Debug, Clone, Copy)]
pub struct ReachLimits {
    /// Cap on saturated `dis`-states per world.
    pub max_states: usize,
    /// Cap on `env_threads.len() + env_msgs.len()` during saturation.
    pub max_env_size: usize,
    /// Cap on the number of pre-closure worlds explored.
    pub max_worlds: usize,
}

impl Default for ReachLimits {
    fn default() -> Self {
        ReachLimits {
            max_states: 100_000,
            max_env_size: 200_000,
            max_worlds: 256,
        }
    }
}

/// What to search for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimpTarget {
    /// An enabled `assert false`.
    AssertViolation,
    /// A generated message `(x, d, _)` — Message Generation (Section 4.1).
    MessageGenerated(VarId, Val),
}

/// The verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachOutcome {
    /// The target is reachable (witness attached).
    Unsafe,
    /// Exhaustive search found no violation. For the decidable class with
    /// the exact budget this is a proof of safety for *all* instances.
    Safe,
    /// A limit was hit; "no violation found" is not a proof.
    Truncated,
    /// The resource governor stopped the search; partial statistics only.
    /// Like [`Truncated`](ReachOutcome::Truncated), never a proof of
    /// safety.
    Interrupted(InterruptReason),
}

/// A witness for an `Unsafe` verdict.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The gaps guessed closed up-front in the successful world.
    pub preclosed: Vec<(VarId, u32)>,
    /// The `dis` steps, in order, between saturations.
    pub dis_path: Vec<DisStep>,
    /// The saturated state in which the target holds.
    pub final_state: SimpState,
}

/// The report of a reachability run.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// The verdict.
    pub outcome: ReachOutcome,
    /// Saturated states visited (across all worlds).
    pub states: usize,
    /// Worlds (pre-closure guesses) explored.
    pub worlds: usize,
    /// Largest `env` configuration set observed.
    pub peak_env_configs: usize,
    /// Largest `env` message set observed.
    pub peak_env_msgs: usize,
    /// Witness for `Unsafe`.
    pub witness: Option<Witness>,
}

/// Why a system is outside the engine's supported class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedSystem {
    /// The `env` program contains CAS — parameterized verification is then
    /// undecidable (Theorem 1.1) and the simplified semantics does not
    /// apply.
    EnvHasCas,
}

impl fmt::Display for UnsupportedSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedSystem::EnvHasCas => {
                write!(
                    f,
                    "env program uses CAS: outside the simplified semantics \
                     (undecidable, Theorem 1.1)"
                )
            }
        }
    }
}

impl std::error::Error for UnsupportedSystem {}

/// The reachability engine.
///
/// # Example
///
/// ```
/// use parra_program::builder::SystemBuilder;
/// use parra_program::value::Val;
/// use parra_simplified::reach::{ReachLimits, ReachOutcome, Reachability, SimpTarget};
/// use parra_simplified::state::Budget;
///
/// // env: x := 1 — some env thread can always generate (x, 1).
/// let mut b = SystemBuilder::new(2);
/// let x = b.var("x");
/// let mut env = b.program("env");
/// env.store(x, 1);
/// let env = env.finish();
/// let sys = b.build(env, vec![]);
///
/// let budget = Budget::exact(&sys).expect("dis threads are loop-free");
/// let engine = Reachability::new(sys, budget, ReachLimits::default())?;
/// let report = engine.run(SimpTarget::MessageGenerated(x, Val(1)));
/// assert_eq!(report.outcome, ReachOutcome::Unsafe);
/// # Ok::<(), parra_simplified::reach::UnsupportedSystem>(())
/// ```
#[derive(Debug, Clone)]
pub struct Reachability {
    sys: ParamSystem,
    budget: Budget,
    limits: ReachLimits,
    rec: Recorder,
    threads: Threads,
    gov: ResourceBudget,
}

impl Reachability {
    /// Creates an engine (sequential by default; see
    /// [`with_threads`](Self::with_threads)).
    ///
    /// # Errors
    ///
    /// Rejects systems whose `env` program uses CAS.
    pub fn new(
        sys: ParamSystem,
        budget: Budget,
        limits: ReachLimits,
    ) -> Result<Reachability, UnsupportedSystem> {
        if !SystemClass::of(&sys).env.nocas {
            return Err(UnsupportedSystem::EnvHasCas);
        }
        Ok(Reachability {
            sys,
            budget,
            limits,
            rec: Recorder::disabled(),
            threads: Threads::exact(1),
            gov: ResourceBudget::unlimited(),
        })
    }

    /// The same engine reporting metrics/spans through `rec`.
    pub fn with_recorder(mut self, rec: Recorder) -> Reachability {
        self.rec = rec;
        self
    }

    /// The same engine searching with `n` worker threads (clamped to at
    /// least 1). The report is identical for every `n`; only wall-clock
    /// time changes.
    pub fn with_threads(mut self, n: usize) -> Reachability {
        self.threads = Threads::exact(n);
        self
    }

    /// The same engine governed by `gov`, checked once per search round.
    /// A run that completes under the budget is identical to an
    /// ungoverned run; an exhausted budget yields
    /// [`ReachOutcome::Interrupted`] with partial statistics.
    pub fn with_governor(mut self, gov: ResourceBudget) -> Reachability {
        self.gov = gov;
        self
    }

    /// The system under verification.
    pub fn system(&self) -> &ParamSystem {
        &self.sys
    }

    /// The budget in use.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Runs the search.
    pub fn run(&self, target: SimpTarget) -> ReachReport {
        let span = self.rec.span("reach.run");
        let phases = PhaseTimer::new(&self.rec);
        let _search = phases.start_debug(Phase::Search);
        let report = self.run_inner(target);
        span.arg_u64("states", report.states as u64);
        span.arg_u64("worlds", report.worlds as u64);
        span.arg_str("outcome", &format!("{:?}", report.outcome));
        report
    }

    fn run_inner(&self, target: SimpTarget) -> ReachReport {
        let limits = self.limits;
        let n_workers = self.threads.get();

        let metrics = ReachMetrics {
            c_states: self.rec.counter("states"),
            c_sat_rounds: self.rec.counter("saturation_rounds"),
            c_sat_cfg: self.rec.counter("saturation_new_configs"),
            c_sat_msg: self.rec.counter("saturation_new_msgs"),
            c_rounds: self.rec.counter("rounds"),
            g_msgs: self.rec.gauge("env_msgs"),
            g_cfgs: self.rec.gauge("env_configs"),
            g_frontier: self.rec.gauge("frontier_size"),
            worker_expanded: (0..n_workers)
                .map(|w| self.rec.counter(&format!("worker{w}_expanded")))
                .collect(),
        };
        let c_worlds = self.rec.counter("worlds_explored");

        let mut worlds_seen: BTreeSet<BTreeSet<(VarId, u32)>> = BTreeSet::new();
        let mut worlds_queue: VecDeque<BTreeSet<(VarId, u32)>> = VecDeque::new();
        worlds_seen.insert(BTreeSet::new());
        worlds_queue.push_back(BTreeSet::new());

        let mut total_states = 0usize;
        let mut worlds = 0usize;
        let mut peak_cfg = 0usize;
        let mut peak_msg = 0usize;
        let mut truncated = false;
        let mut interrupted: Option<InterruptReason> = None;

        'waves: while !worlds_queue.is_empty() {
            if let Err(reason) = self.gov.check() {
                interrupted = Some(reason);
                break 'waves;
            }
            let remaining = limits.max_worlds.saturating_sub(worlds);
            if remaining == 0 {
                truncated = true;
                break;
            }
            // A wave: up to one queued world per thread, never past the
            // world cap. Threads are split between the two axes — a
            // single-world wave gets every worker for its frontier, a
            // full wave runs one near-sequential search per worker.
            let wave_len = worlds_queue.len().min(remaining).min(n_workers);
            let wave: Vec<BTreeSet<(VarId, u32)>> = worlds_queue.drain(..wave_len).collect();
            let inner_workers = (n_workers / wave_len).max(1);
            let cancel = WaveCancel::new();
            let results: Vec<WorldResult> = ordered_map(wave_len, &wave, |_, pos, world| {
                self.search_world(world, target, inner_workers, &metrics, &cancel, pos)
            });

            // Commit strictly in pop order: totals, spawned-world
            // enqueueing, and the unsafe short-circuit replay the
            // sequential schedule, so the report is thread-count
            // independent.
            for (world, res) in wave.iter().zip(results) {
                worlds += 1;
                c_worlds.incr();
                total_states += res.states;
                peak_cfg = peak_cfg.max(res.peak_cfg);
                peak_msg = peak_msg.max(res.peak_msg);
                truncated |= res.truncated;
                interrupted = interrupted.or(res.interrupted);
                // Flight-recorder event, from the sequential commit point
                // (never from workers): fields replay the pop-order
                // schedule, so they are thread-count independent; wave
                // batching and shard layout are not, and stay volatile.
                if self.rec.is_enabled() {
                    let mut vol = self.gov.headroom().volatile_fields();
                    vol.push(("shard_imbalance_permille", res.shard_imbalance));
                    self.rec.event_with(
                        "world",
                        &[
                            ("world", (worlds as u64 - 1).into()),
                            ("states", res.states.into()),
                            ("total_states", total_states.into()),
                            ("peak_env_msgs", res.peak_msg.into()),
                            ("peak_env_cfgs", res.peak_cfg.into()),
                            ("spawned", res.spawned.len().into()),
                            ("witness", u64::from(res.witness.is_some()).into()),
                        ],
                        &vol,
                    );
                }
                self.rec.heartbeat(|| {
                    format!(
                        "reach: world {worlds}, {total_states} states, \
                         peak env msgs {peak_msg}"
                    )
                });
                if res.witness.is_some() {
                    return ReachReport {
                        outcome: ReachOutcome::Unsafe,
                        states: total_states,
                        worlds,
                        peak_env_configs: peak_cfg,
                        peak_env_msgs: peak_msg,
                        witness: res.witness,
                    };
                }
                for gap in res.spawned {
                    let mut w2 = world.clone();
                    w2.insert(gap);
                    if worlds_seen.insert(w2.clone()) {
                        worlds_queue.push_back(w2);
                    }
                }
            }
            if interrupted.is_some() {
                break 'waves;
            }
        }

        ReachReport {
            // An interrupted search trumps mere truncation: the caller
            // must learn the run was cut short by the governor (and
            // neither is ever reported as Safe).
            outcome: if let Some(reason) = interrupted {
                ReachOutcome::Interrupted(reason)
            } else if truncated {
                ReachOutcome::Truncated
            } else {
                ReachOutcome::Safe
            },
            states: total_states,
            worlds,
            peak_env_configs: peak_cfg,
            peak_env_msgs: peak_msg,
            witness: None,
        }
    }

    /// Searches one pre-closure world. Pure with respect to the run's
    /// shared accumulators: everything it learns comes back in the
    /// [`WorldResult`], which the caller commits in world pop order.
    fn search_world(
        &self,
        world: &BTreeSet<(VarId, u32)>,
        target: SimpTarget,
        workers: usize,
        m: &ReachMetrics,
        cancel: &WaveCancel,
        pos: usize,
    ) -> WorldResult {
        let sys = &self.sys;
        let budget = &self.budget;
        let limits = self.limits;
        let span = self.rec.span_debug("reach.world");
        span.arg_u64("preclosed", world.len() as u64);

        let target_holds = |st: &SimpState| match target {
            SimpTarget::AssertViolation => st.assert_enabled(sys),
            SimpTarget::MessageGenerated(x, d) => st.has_message(x, d),
        };

        let mut result = WorldResult {
            states: 0,
            truncated: false,
            interrupted: None,
            peak_cfg: 0,
            peak_msg: 0,
            shard_imbalance: 0,
            spawned: Vec::new(),
            witness: None,
        };

        let mut init = SimpState::initial(sys);
        for &(x, g) in world {
            init.preclose(x, g);
        }
        let (dc, dm) = init.saturate(sys, budget, limits.max_env_size);
        m.c_sat_rounds.incr();
        m.c_sat_cfg.add(dc as u64);
        m.c_sat_msg.add(dm as u64);
        if init.env_threads.len() + init.env_msgs.len() > limits.max_env_size {
            result.truncated = true;
        }
        result.peak_cfg = init.env_threads.len();
        result.peak_msg = init.env_msgs.len();
        m.g_cfgs.record_peak(init.env_threads.len() as u64);
        m.g_msgs.record_peak(init.env_msgs.len() as u64);

        let hit_init = target_holds(&init);
        let mut graph: SearchGraph<SimpState, DisStep> = SearchGraph::new(workers);
        graph.insert(init, None);
        result.states = 1;
        m.c_states.incr();
        if hit_init {
            result.witness = Some(Witness {
                preclosed: world.iter().copied().collect(),
                dis_path: Vec::new(),
                final_state: graph.state(0).clone(),
            });
            result.shard_imbalance = graph.shard_imbalance_permille();
            cancel.found(pos);
            return result;
        }

        // One expansion = everything derivable from a frontier state
        // without touching the shared graph: `dis` successors plus the
        // (hot) env saturation of each one. This is what workers fan out.
        let expand = |w: usize, si: u32, states: &[SimpState]| -> Expansion {
            m.worker_expanded[w].incr();
            let succs = states[si as usize].dis_successors(sys, budget);
            let blocked: Vec<(VarId, u32)> = succs
                .blocked_gaps
                .into_iter()
                .filter(|g| !world.contains(g))
                .collect();
            let mut steps = Vec::with_capacity(succs.steps.len());
            for (step, mut next) in succs.steps {
                let (dc, dm) = next.saturate(sys, budget, limits.max_env_size);
                m.c_sat_rounds.incr();
                m.c_sat_cfg.add(dc as u64);
                m.c_sat_msg.add(dm as u64);
                let env_ok = next.env_threads.len() + next.env_msgs.len() <= limits.max_env_size;
                steps.push((step, next, env_ok));
            }
            Expansion { blocked, steps }
        };

        let mut spawned_here: BTreeSet<(VarId, u32)> = BTreeSet::new();
        let mut frontier: Vec<u32> = vec![0];
        while !frontier.is_empty() {
            if cancel.superseded(pos) {
                // A world earlier in pop order found a witness; this
                // world's result will be discarded, so stop searching.
                return result;
            }
            if let Err(reason) = self.gov.check() {
                result.interrupted = Some(reason);
                result.shard_imbalance = graph.shard_imbalance_permille();
                return result;
            }
            m.c_rounds.incr();
            m.g_frontier.set(frontier.len() as u64);
            let round_span = self.rec.span_debug("reach.round");
            round_span.arg_u64("frontier", frontier.len() as u64);

            let current = std::mem::take(&mut frontier);
            // Parallel mode buffers expansions one bounded chunk at a
            // time (memory stays O(chunk × branching), not O(frontier));
            // sequential mode streams one state at a time through the
            // same merge code.
            for chunk in current.chunks(parra_search::round_chunk(workers)) {
                let mut expansions: Vec<Expansion> = if workers > 1 && chunk.len() > 1 {
                    ordered_map(workers, chunk, |w, _, &si| expand(w, si, graph.states()))
                } else {
                    Vec::new()
                };

                for (i, &si) in chunk.iter().enumerate() {
                    let exp = if expansions.is_empty() {
                        expand(0, si, graph.states())
                    } else {
                        std::mem::take(&mut expansions[i])
                    };
                    // Blocked CAS gaps propose new pre-closure worlds; the
                    // outer loop dedups against globally-seen worlds when it
                    // commits this result.
                    for gap in exp.blocked {
                        if spawned_here.insert(gap) {
                            result.spawned.push(gap);
                        }
                    }
                    for (step, next, env_ok) in exp.steps {
                        if !env_ok {
                            result.truncated = true;
                            continue;
                        }
                        result.peak_cfg = result.peak_cfg.max(next.env_threads.len());
                        result.peak_msg = result.peak_msg.max(next.env_msgs.len());
                        m.g_cfgs.record_peak(next.env_threads.len() as u64);
                        m.g_msgs.record_peak(next.env_msgs.len() as u64);
                        if graph.contains(&next) {
                            continue;
                        }
                        // Evaluate the target *before* the capacity check: a
                        // truncated search must never drop the successor that
                        // witnesses unsafety (it may be stored one past
                        // `max_states`).
                        let hit = target_holds(&next);
                        if !hit && graph.len() >= limits.max_states {
                            result.truncated = true;
                            continue;
                        }
                        let ni = graph.insert(next, Some((si, step)));
                        result.states += 1;
                        m.c_states.incr();
                        self.rec.heartbeat(|| {
                            format!(
                                "reach: world {}, {} states in world, peak env msgs {}",
                                pos + 1,
                                result.states,
                                result.peak_msg
                            )
                        });
                        if hit {
                            result.witness = Some(Witness {
                                preclosed: world.iter().copied().collect(),
                                dis_path: graph.unwind(ni),
                                final_state: graph.state(ni).clone(),
                            });
                            result.shard_imbalance = graph.shard_imbalance_permille();
                            cancel.found(pos);
                            return result;
                        }
                        frontier.push(ni);
                    }
                }
            }
        }
        result.shard_imbalance = graph.shard_imbalance_permille();
        result
    }
}

/// Metric handles shared by the per-world searches (counters and gauges
/// are atomic; see `parra-obs`).
struct ReachMetrics {
    c_states: Counter,
    c_sat_rounds: Counter,
    c_sat_cfg: Counter,
    c_sat_msg: Counter,
    c_rounds: Counter,
    g_msgs: Gauge,
    g_cfgs: Gauge,
    g_frontier: Gauge,
    worker_expanded: Vec<Counter>,
}

/// Everything one world's search produces. Committed to the run totals
/// strictly in world pop order.
struct WorldResult {
    states: usize,
    truncated: bool,
    /// Set when the governor stopped this world's search mid-way.
    interrupted: Option<InterruptReason>,
    peak_cfg: usize,
    peak_msg: usize,
    /// Dedup-index shard imbalance at the end of this world's search
    /// (volatile: the shard count follows the worker split).
    shard_imbalance: u64,
    /// Blocked CAS gaps, in first-discovery order, each proposing the
    /// world extended by that gap.
    spawned: Vec<(VarId, u32)>,
    witness: Option<Witness>,
}

/// The buffered output of expanding one frontier state.
#[derive(Default)]
struct Expansion {
    blocked: Vec<(VarId, u32)>,
    steps: Vec<(DisStep, SimpState, bool)>,
}

/// Cross-world cancellation for a wave searched in parallel. A world may
/// abandon its search once a world *earlier in pop order* has found a
/// witness — the in-order commit would discard its result anyway. A world
/// never aborts because of a *later* witness, so the committed report is
/// unaffected by cancellation timing.
struct WaveCancel {
    earliest_witness: AtomicUsize,
}

impl WaveCancel {
    fn new() -> WaveCancel {
        WaveCancel {
            earliest_witness: AtomicUsize::new(usize::MAX),
        }
    }

    /// Records that the world at wave position `pos` found a witness.
    fn found(&self, pos: usize) {
        self.earliest_witness.fetch_min(pos, Ordering::Relaxed);
    }

    /// Whether a world strictly before `pos` has found a witness.
    fn superseded(&self, pos: usize) -> bool {
        self.earliest_witness.load(Ordering::Relaxed) < pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;

    fn limits() -> ReachLimits {
        ReachLimits::default()
    }

    /// env: r <- y; assume r == 1; x := 1
    /// dis: y := 1; s <- x; assume s == 1; assert false
    fn handshake() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.store(y, 1).load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn handshake_is_unsafe() {
        let sys = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        let w = report.witness.unwrap();
        assert!(!w.dis_path.is_empty());
        assert!(w.preclosed.is_empty());
    }

    /// Safe variant: env never stores, so the dis assume s == 1 blocks.
    #[test]
    fn silent_env_is_safe() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.skip();
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Safe);
        assert!(report.witness.is_none());
    }

    /// The RA coherence guarantee: after seeing x = 1 (stored after
    /// y = 1 by the same thread), y = 0 is unreadable.
    #[test]
    fn no_overwritten_reads_across_env_and_dis() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("writer");
        env.store(y, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("reader");
        let rx = d.reg("rx");
        let ry = d.reg("ry");
        d.load(rx, x)
            .assume_eq(rx, 1)
            .load(ry, y)
            .assume_eq(ry, 0)
            .assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Safe);
    }

    /// A system whose violation needs a pre-closed CAS gap, i.e. more
    /// than one world: env writes x := 2, dis CAS-es x 0→1 and must still
    /// read the env message.
    fn cas_world_system() -> (ParamSystem, VarId) {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let f = b.var("f");
        let mut env = b.program("env");
        // env writes x := 2 — anywhere, including the CAS gap.
        env.store(x, 2);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        // dis CAS x from 0 to 1, then must still see an env message x = 2.
        d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).store(f, 1);
        let d = d.finish();
        let mut d2 = b.program("d2");
        let s = d2.reg("s");
        d2.load(s, f).assume_eq(s, 1).assert_false();
        let d2 = d2.finish();
        (b.build(env, vec![d, d2]), x)
    }

    /// CAS blocked by env messages in the base world succeeds in the
    /// pre-closed world: dis needs the CAS *and* an env message.
    #[test]
    fn world_restart_enables_cas() {
        let (sys, x) = cas_world_system();
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        // The witness world should have pre-closed gap 0 of x... unless the
        // base world already worked (env can choose gap 1 or 2 and leave
        // gap 0 free — but saturation puts messages in *all* gaps, so the
        // pre-closure is required).
        let w = report.witness.unwrap();
        assert!(w.preclosed.contains(&(x, 0)));
        assert!(report.worlds > 1);
    }

    #[test]
    fn env_cas_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let err =
            Reachability::new(sys.clone(), Budget::uniform_for(&sys, 1), limits()).unwrap_err();
        assert_eq!(err, UnsupportedSystem::EnvHasCas);
    }

    /// Unbounded env loops are handled exactly (no depth bound needed):
    /// env: loop { r <- x; x := r + 1 } over a small modular domain.
    #[test]
    fn env_loops_saturate() {
        let mut b = SystemBuilder::new(4);
        let x = b.var("x");
        let goal = b.var("goal");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.star(|p| {
            p.load(r, x);
            p.store(
                x,
                parra_program::expr::Expr::reg(r).add(parra_program::expr::Expr::val(1)),
            );
        });
        env.load(r, x).assume_eq(r, 3).store(goal, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let budget = Budget::exact(&sys).unwrap(); // no dis stores: T = 0
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(goal, Val(1)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
    }

    /// A state-churning system (no reachable violation) for truncation
    /// tests: dis writes and reads x while env also writes it.
    fn churn_system() -> (ParamSystem, VarId) {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        d.store(x, 2).load(r, x).store(x, 1);
        let d = d.finish();
        (b.build(env, vec![d]), x)
    }

    /// Exhausting the state cap yields Truncated, never a silent Safe.
    #[test]
    fn tight_limits_truncate() {
        let (sys, x) = churn_system();
        let budget = Budget::exact(&sys).unwrap();
        let tight = ReachLimits {
            max_states: 2,
            max_env_size: 200_000,
            max_worlds: 256,
        };
        let engine = Reachability::new(sys, budget, tight).unwrap();
        // The never-generated value forces exploring everything; the cap
        // cuts it off.
        let report = engine.run(SimpTarget::MessageGenerated(x, Val(7)));
        assert_eq!(report.outcome, ReachOutcome::Truncated);
    }

    /// The initial value d_init = 0 is trivially generated.
    #[test]
    fn init_value_always_generated() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        let sys = b.build(env, vec![]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, ReachLimits::default()).unwrap();
        let report = engine.run(SimpTarget::MessageGenerated(x, Val(0)));
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
        assert!(report.witness.unwrap().dis_path.is_empty());
    }

    /// Figure 3's point: the consumer can loop more times than there are
    /// producers — z > l is feasible because env messages are re-readable
    /// (clones). Here dis reads x = 1 twice though each env thread writes
    /// it once.
    #[test]
    fn dis_rereads_env_messages() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("producer");
        env.store(x, 1);
        let env = env.finish();
        let mut d = b.program("consumer");
        let r = d.reg("r");
        d.load(r, x)
            .assume_eq(r, 1)
            .load(r, x)
            .assume_eq(r, 1)
            .assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits()).unwrap();
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(report.outcome, ReachOutcome::Unsafe);
    }

    /// Regression: the capacity check must not mask an `Unsafe` verdict.
    ///
    /// The goal state is the last insertion of an unbounded run, so with
    /// `max_states = states - 1` it arrives exactly at the capacity
    /// boundary. The old engine dropped it there (`continue` before the
    /// target check) and kept searching, reporting `Truncated`; the fixed
    /// engine evaluates the target first and returns `Unsafe`.
    #[test]
    fn target_at_state_capacity_boundary_is_unsafe() {
        let sys = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let full = Reachability::new(sys.clone(), budget.clone(), limits())
            .unwrap()
            .run(SimpTarget::AssertViolation);
        assert_eq!(full.outcome, ReachOutcome::Unsafe);
        assert!(full.states >= 2, "need a non-initial goal state");
        let tight = ReachLimits {
            max_states: full.states - 1,
            ..limits()
        };
        for threads in [1, 4] {
            let report = Reachability::new(sys.clone(), budget.clone(), tight)
                .unwrap()
                .with_threads(threads)
                .run(SimpTarget::AssertViolation);
            assert_eq!(
                report.outcome,
                ReachOutcome::Unsafe,
                "goal at the capacity boundary must stay Unsafe (threads {threads})"
            );
            assert_eq!(report.states, full.states);
            assert!(report.witness.is_some());
        }
    }

    /// Same regression in a multi-world search: the violating world of
    /// [`cas_world_system`] is not the first, so the boundary hits after
    /// earlier worlds already contributed states.
    #[test]
    fn world_search_capacity_boundary_is_unsafe() {
        let (sys, _) = cas_world_system();
        let budget = Budget::exact(&sys).unwrap();
        let full = Reachability::new(sys.clone(), budget.clone(), limits())
            .unwrap()
            .run(SimpTarget::AssertViolation);
        assert_eq!(full.outcome, ReachOutcome::Unsafe);
        assert!(full.worlds > 1);
        // States contributed by the worlds explored *before* the
        // violating one: cap the world count just below it — the FIFO
        // prefix is identical, so the difference is the violating world's
        // own state count, whose last insertion is the goal.
        let prefix = Reachability::new(
            sys.clone(),
            budget.clone(),
            ReachLimits {
                max_worlds: full.worlds - 1,
                ..limits()
            },
        )
        .unwrap()
        .run(SimpTarget::AssertViolation);
        assert_eq!(prefix.outcome, ReachOutcome::Truncated);
        let goal_world_states = full.states - prefix.states;
        assert!(
            goal_world_states >= 2,
            "goal world needs a non-initial goal"
        );
        let tight = ReachLimits {
            max_states: goal_world_states - 1,
            ..limits()
        };
        for threads in [1, 4] {
            let report = Reachability::new(sys.clone(), budget.clone(), tight)
                .unwrap()
                .with_threads(threads)
                .run(SimpTarget::AssertViolation);
            assert_eq!(
                report.outcome,
                ReachOutcome::Unsafe,
                "goal at the per-world capacity boundary must stay Unsafe \
                 (threads {threads})"
            );
        }
    }

    /// A budget that is already exhausted interrupts before any world is
    /// searched; partial statistics are preserved (here: none yet).
    #[test]
    fn exhausted_deadline_interrupts_with_partial_stats() {
        let sys = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let engine = Reachability::new(sys, budget, limits())
            .unwrap()
            .with_governor(ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO));
        let report = engine.run(SimpTarget::AssertViolation);
        assert_eq!(
            report.outcome,
            ReachOutcome::Interrupted(InterruptReason::Deadline)
        );
        assert!(report.witness.is_none());
    }

    /// A pre-cancelled token interrupts with `Cancelled`, for every
    /// thread count.
    #[test]
    fn cancelled_token_interrupts() {
        let sys = handshake();
        let budget = Budget::exact(&sys).unwrap();
        let token = parra_limits::CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let engine = Reachability::new(sys.clone(), budget.clone(), limits())
                .unwrap()
                .with_threads(threads)
                .with_governor(ResourceBudget::unlimited().with_cancel(token.clone()));
            let report = engine.run(SimpTarget::AssertViolation);
            assert_eq!(
                report.outcome,
                ReachOutcome::Interrupted(InterruptReason::Cancelled),
                "threads {threads}"
            );
        }
    }

    /// A completed run under a generous budget is identical to an
    /// ungoverned run — governance checks have no side effects.
    #[test]
    fn generous_budget_matches_unlimited_run() {
        let (sys, x) = churn_system();
        let budget = Budget::exact(&sys).unwrap();
        let base = Reachability::new(sys.clone(), budget.clone(), limits())
            .unwrap()
            .run(SimpTarget::MessageGenerated(x, Val(7)));
        for threads in [1, 4] {
            let governed = Reachability::new(sys.clone(), budget.clone(), limits())
                .unwrap()
                .with_threads(threads)
                .with_governor(
                    ResourceBudget::unlimited()
                        .with_deadline(std::time::Duration::from_secs(3600))
                        .with_memory_limit(usize::MAX),
                )
                .run(SimpTarget::MessageGenerated(x, Val(7)));
            assert_eq!(governed.outcome, base.outcome, "threads {threads}");
            assert_eq!(governed.states, base.states, "threads {threads}");
            assert_eq!(governed.worlds, base.worlds, "threads {threads}");
            assert_eq!(governed.peak_env_configs, base.peak_env_configs);
            assert_eq!(governed.peak_env_msgs, base.peak_env_msgs);
        }
    }

    /// Worker count must not change any observable part of the report:
    /// verdict, state/world counts, peaks, or the witness.
    #[test]
    fn worker_count_does_not_change_reports() {
        let cases: Vec<(ParamSystem, SimpTarget, ReachLimits)> = vec![
            (handshake(), SimpTarget::AssertViolation, limits()),
            (cas_world_system().0, SimpTarget::AssertViolation, limits()),
            (
                churn_system().0,
                SimpTarget::MessageGenerated(churn_system().1, Val(7)),
                limits(),
            ),
            // Truncated runs must be deterministic too.
            (
                churn_system().0,
                SimpTarget::MessageGenerated(churn_system().1, Val(7)),
                ReachLimits {
                    max_states: 2,
                    ..limits()
                },
            ),
        ];
        for (case, (sys, target, lim)) in cases.into_iter().enumerate() {
            let budget = Budget::exact(&sys).unwrap();
            let base = Reachability::new(sys.clone(), budget.clone(), lim)
                .unwrap()
                .run(target);
            for threads in [2, 3, 8] {
                let r = Reachability::new(sys.clone(), budget.clone(), lim)
                    .unwrap()
                    .with_threads(threads)
                    .run(target);
                assert_eq!(r.outcome, base.outcome, "case {case}, threads {threads}");
                assert_eq!(r.states, base.states, "case {case}, threads {threads}");
                assert_eq!(r.worlds, base.worlds, "case {case}, threads {threads}");
                assert_eq!(r.peak_env_configs, base.peak_env_configs, "case {case}");
                assert_eq!(r.peak_env_msgs, base.peak_env_msgs, "case {case}");
                assert_eq!(
                    format!("{:?}", r.witness),
                    format!("{:?}", base.witness),
                    "case {case}, threads {threads}"
                );
            }
        }
    }
}
