//! The stable content key identifying one unit of campaign work.
//!
//! A campaign must recognize work it has already done across processes,
//! machines, and re-orderings of the input list, so the key cannot be a
//! path, an index, or anything session-scoped. It is a 128-bit hash over
//! three framed components:
//!
//! 1. the **canonical system text** — the pretty-printer's rendering of
//!    the *parsed* system, so formatting, comments-free whitespace, and
//!    file renames do not change the key;
//! 2. the **engine id** — the portfolio selection label
//!    (`simplified-reach`, `all-engines`, `race`, ...);
//! 3. the **options fingerprint** — the verdict-relevant half of
//!    `VerifierOptions` (see `VerifierOptions::fingerprint`): unroll
//!    depth and engine search limits, but *not* thread counts (verdicts
//!    are thread-count-deterministic) and *not* deadlines or memory
//!    budgets (an exhausted budget degrades to `Interrupted`, which a
//!    resume re-runs anyway — keying on the budget would throw away
//!    every decisive verdict whenever a sweep's time slice changes).
//!
//! The hash is FNV-1a/64 run twice with independent offset bases over
//! the same framed stream, concatenated to 32 hex digits. FNV is not
//! cryptographic, but campaign keys only need collision resistance
//! against accidental coincidence across at most ~10⁵–10⁶ inputs, where
//! a 128-bit digest has collision probability below 10⁻²⁴; the std-only
//! constraint rules out pulling in a real SHA implementation.

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(offset: u64, parts: &[&str]) -> u64 {
    let mut h = offset;
    for part in parts {
        // Length framing: ("ab","c") and ("a","bc") must not collide.
        for b in part.len().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for &b in part.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The campaign key of one `(system, engine, options)` work unit, as 32
/// lower-case hex digits. `canonical_text` must already be canonical
/// (parse + pretty-print); this function hashes exactly what it is
/// given.
pub fn content_key(canonical_text: &str, engine_id: &str, options_fp: &str) -> String {
    let parts = [canonical_text, engine_id, options_fp];
    format!(
        "{:016x}{:016x}",
        fnv1a(FNV_OFFSET_A, &parts),
        fnv1a(FNV_OFFSET_B, &parts)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_and_component_sensitive() {
        let k = content_key("sys", "all-engines", "unroll=None");
        assert_eq!(k, content_key("sys", "all-engines", "unroll=None"));
        assert_eq!(k.len(), 32);
        assert!(k.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_ne!(k, content_key("sys2", "all-engines", "unroll=None"));
        assert_ne!(k, content_key("sys", "race", "unroll=None"));
        assert_ne!(k, content_key("sys", "all-engines", "unroll=Some(2)"));
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        assert_ne!(content_key("ab", "c", ""), content_key("a", "bc", ""));
        assert_ne!(content_key("", "x", ""), content_key("x", "", ""));
    }
}
