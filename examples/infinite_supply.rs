//! The Section 3 machinery, executed: timestamp lifting (Lemma 3.1),
//! superposition (Lemma 3.2), and the Infinite Supply Lemma (Lemma 3.3) on
//! a concrete RA computation.
//!
//! Run with: `cargo run --example infinite_supply`

use parra::prelude::*;
use parra::ra::lifting::Lifting;
use parra::ra::supply::{duplicate_env_message, env_store_indices, Placement};
use parra::ra::{Instance, Trace};

fn main() {
    // env: r <- y; assume r == 1; x := 1   ‖   dis: y := 1; s <- x
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let y = b.var("y");
    let mut env = b.program("producer");
    let r = env.reg("r");
    env.load(r, y).assume_eq(r, 1).store(x, 1);
    let env = env.finish();
    let mut d = b.program("consumer");
    let s = d.reg("s");
    d.store(y, 1).load(s, x);
    let d = d.finish();
    let sys = b.build(env, vec![d]);
    let _ = (x, y);

    // A random monotone computation with at least one env store.
    let mut seed = 2024u64;
    let mut chooser = move |k: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (seed >> 33) as usize % k.max(1)
    };
    let trace = loop {
        let t = Trace::random(Instance::new(sys.clone(), 2), 20, &mut chooser);
        if !env_store_indices(&t).is_empty() {
            break t;
        }
    };
    println!("computation ρ: {} transitions", trace.len());
    println!("last(ρ).memory = {}", trace.last().memory);

    // Lemma 3.1: lift by μ(t) = 3t and replay.
    let lift = Lifting::spacing(&trace, 3);
    let lifted = lift.apply(&trace).expect("Lemma 3.1: RA-valid lifting");
    println!(
        "\nM(ρ) with μ(t) = 3t replays: {} transitions",
        lifted.len()
    );
    println!("last(M(ρ)).memory = {}", lifted.last().memory);

    // Lemma 3.3: duplicate the first env message — once adjacent, once
    // arbitrarily high.
    let idx = env_store_indices(&trace)[0];
    for placement in [Placement::Adjacent, Placement::High] {
        let dup = duplicate_env_message(&trace, idx, placement)
            .expect("Lemma 3.3: env messages are duplicable");
        println!(
            "\nInfinite Supply ({placement:?}): original {} / clone {}",
            dup.original, dup.clone
        );
        println!(
            "combined run: {} transitions over {} env threads; both messages \
             in memory: {}",
            dup.trace.len(),
            dup.trace.instance().n_env(),
            dup.trace.last().memory.contains(&dup.original)
                && dup.trace.last().memory.contains(&dup.clone)
        );
    }
}
