//! A minimal JSON value model, writer, and parser.
//!
//! The build environment is offline, so the workspace cannot use `serde`;
//! this module provides the small JSON surface the observability layer
//! needs: escaping writers for the trace/report emitters and a strict
//! recursive-descent parser used by the integration tests to validate
//! machine-readable output.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; integral values round-trip exactly
    /// up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Insertion order is not preserved; lookups are by key.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object's member map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Writes `s` as a JSON string literal (with quotes) into `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental writer for one JSON object: `key(..), .. , finish()`.
///
/// # Example
///
/// ```
/// use parra_obs::json::{parse, ObjWriter};
/// let mut w = ObjWriter::new();
/// w.str_field("name", "x\"y");
/// w.num_field("states", 42);
/// let text = w.finish();
/// assert_eq!(parse(&text).unwrap().get("states").unwrap().as_u64(), Some(42));
/// ```
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    any: bool,
}

impl ObjWriter {
    /// Starts an object.
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds a string member.
    pub fn str_field(&mut self, key: &str, val: &str) {
        self.key(key);
        write_escaped(&mut self.buf, val);
    }

    /// Adds a numeric member.
    pub fn num_field(&mut self, key: &str, val: u64) {
        self.key(key);
        self.buf.push_str(&val.to_string());
    }

    /// Adds a raw pre-rendered JSON member (caller guarantees validity).
    pub fn raw_field(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Adds an array-of-strings member.
    pub fn str_arr_field(&mut self, key: &str, vals: &[String]) {
        self.key(key);
        self.buf.push('[');
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            write_escaped(&mut self.buf, v);
        }
        self.buf.push(']');
    }

    /// Adds an array-of-numbers member.
    pub fn num_arr_field(&mut self, key: &str, vals: &[u64]) {
        self.key(key);
        self.buf.push('[');
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (one value, surrounding whitespace
/// allowed).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, val: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output (we only escape control characters);
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut w = ObjWriter::new();
        w.str_field("name", "a \"quoted\"\nline");
        w.num_field("n", 18446744073709551615);
        w.str_arr_field("notes", &["x".into(), "y".into()]);
        w.num_arr_field("series", &[1, 2, 3]);
        w.raw_field("nested", "{\"k\":true}");
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\"\nline"));
        assert_eq!(v.get("notes").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("series").unwrap().as_arr().unwrap()[2].as_u64(),
            Some(3)
        );
        assert_eq!(v.get("nested").unwrap().get("k"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_standard_documents() {
        let v = parse(r#" {"a": [1, -2.5, 1e3, null, false], "b": {}} "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(v.get("b"), Some(&Value::Obj(Default::default())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        write_escaped(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\u{1}b"));
    }
}
