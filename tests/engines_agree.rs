//! Cross-engine agreement: the direct simplified-semantics search and the
//! `makeP` Datalog encoding are two implementations of the same decision
//! procedure (Theorem 3.4 + Theorem 4.1/Lemma 4.3) and must produce the
//! same verdict on every system in the decidable class.
//!
//! Thin driver over `parra-fuzz`: generation lives in
//! [`parra_fuzz::gen::SystemGen`], the property in
//! [`parra_fuzz::oracle::EnginesAgree`] (verdict equality plus the
//! bounded-concrete engine only ever strengthening to `Unsafe`). A
//! failing seed is replayable with
//! `parra fuzz --oracle engines-agree --seed <seed> --cases 1`.

use parra_fuzz::gen::{GenConfig, SystemGen};
use parra_fuzz::oracle::{EnginesAgree, Oracle, OracleOutcome};

/// Checks `n` seeds of the family `cfg`. These families stay inside the
/// decidable fragment with search limits never hit, so `Skip` fails
/// loudly rather than silently shrinking coverage.
fn sweep(cfg: GenConfig, n: u64, label: &str) {
    let gen = SystemGen::new(cfg);
    let oracle = EnginesAgree;
    for seed in 0..n {
        let case = gen.case(seed);
        match oracle.check(&case.sys) {
            OracleOutcome::Pass => {}
            OracleOutcome::Skip(why) => {
                panic!("{label}-{seed}: oracle skipped ({why}) — family out of spec")
            }
            OracleOutcome::Fail(msg) => panic!(
                "{label}-{seed}: {msg}\nsystem:\n{}",
                parra_program::pretty::system_to_string(&case.sys)
            ),
        }
    }
}

#[test]
fn random_cas_free_systems() {
    sweep(
        GenConfig {
            dis_cas: false,
            ..GenConfig::agreement()
        },
        40,
        "nocas",
    );
}

#[test]
fn random_cas_systems() {
    sweep(GenConfig::agreement(), 40, "cas");
}

#[test]
fn random_two_dis_systems() {
    // Straight-line env (no choice blocks): with two CAS-capable dis
    // threads the product state space is already the expensive axis.
    sweep(
        GenConfig {
            n_dis: 2,
            env_choice: false,
            ..GenConfig::agreement()
        },
        25,
        "2dis",
    );
}
