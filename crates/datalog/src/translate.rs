//! Lemma 4.2: compiling Cache Datalog with cache bound `k` into linear
//! Datalog.
//!
//! The whole cache — a set of at most `k` ground atoms — is represented by
//! a *single* ground atom of a fresh predicate `cacheₖ` with `k` slots of
//! width `w = 1 + max-arity` each (a predicate tag followed by padded
//! arguments; unused slots hold the `empty` tag). Every Cache Datalog
//! step becomes one linear rule:
//!
//! * **Add** via rule `h :- b₁, …, bₜ`: for each placement of the body
//!   atoms into slots and of the head into an empty slot, a rule
//!   `cacheₖ(σ[e ↦ h]) :- cacheₖ(σ)` where `σ` constrains the body slots
//!   and keeps the rest variable;
//! * **Drop**: `cacheₖ(σ[i ↦ empty]) :- cacheₖ(σ)`;
//! * **Goal**: `goal_ok :- cacheₖ(σ)` with the goal atom pinned in some
//!   slot.
//!
//! Then `Prog ⊢ₖ g` iff `Prog' ⊢ goal_ok` ([`cache_to_linear`]), and
//! `Prog'` is linear by construction. Rule bodies of size ≤ 2 are
//! supported — all programs produced by the paper's `makeP` encoding are of
//! this shape; the construction generates `O(k^{t+1})` rules per source
//! rule (the paper's quadratic bound corresponds to the dominating
//! single-body case).

use crate::ast::{Atom, Const, GroundAtom, PredId, Program, Rule, Term};
use std::collections::HashMap;
use std::fmt;

/// Why a program cannot be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A rule has more than two body atoms.
    BodyTooLarge {
        /// Index of the offending rule.
        rule: usize,
        /// Its body size.
        size: usize,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::BodyTooLarge { rule, size } => write!(
                f,
                "rule {rule} has {size} body atoms; the Lemma 4.2 translation \
                 supports at most 2 (as produced by makeP)"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The result of the translation.
#[derive(Debug)]
pub struct LinearTranslation {
    /// The linear program `Prog'`.
    pub program: Program,
    /// The goal atom `goal_ok` with `Prog ⊢ₖ g ⟺ Prog' ⊢ goal_ok`.
    pub goal: GroundAtom,
    /// The slot width used.
    pub slot_width: usize,
}

/// Compiles `(prog ⊢ₖ goal)` into a linear Datalog query (Lemma 4.2).
///
/// # Errors
///
/// Fails if some rule has more than two body atoms.
pub fn cache_to_linear(
    prog: &Program,
    goal: &GroundAtom,
    k: usize,
) -> Result<LinearTranslation, TranslateError> {
    for (ri, rule) in prog.rules().iter().enumerate() {
        if rule.body.len() > 2 {
            return Err(TranslateError::BodyTooLarge {
                rule: ri,
                size: rule.body.len(),
            });
        }
    }
    assert!(k >= 1, "cache bound must be positive");

    // Constant layout: original constants keep their ids; then the `empty`
    // tag; then one tag per predicate.
    let max_const = max_const_id(prog, goal);
    let empty = Const(max_const + 1);
    let tag = |p: PredId| Const(max_const + 2 + p.0);

    let max_arity = prog
        .predicates()
        .map(|p| prog.pred_arity(p))
        .max()
        .unwrap_or(0);
    let w = 1 + max_arity;

    let mut out = Program::new();
    let cache_pred = out.predicate("cache", k * w);
    let goal_pred = out.predicate("goal_ok", 0);

    // Initial fact: all slots empty.
    let empty_slots: Vec<Const> = std::iter::repeat_n(empty, k * w).collect();
    out.fact(cache_pred, empty_slots).expect("arity matches");

    // A builder for one linear rule: body and head slot contents.
    struct SlotRule {
        body: Vec<Term>,
        head: Vec<Term>,
    }
    impl SlotRule {
        fn free(k: usize, w: usize, next_var: &mut u32) -> SlotRule {
            let mut body = Vec::with_capacity(k * w);
            for _ in 0..k * w {
                body.push(Term::Var(*next_var));
                *next_var += 1;
            }
            SlotRule {
                head: body.clone(),
                body,
            }
        }
        fn pin(&mut self, slot: usize, w: usize, content: &[Term], both: bool) {
            for (i, t) in content.iter().enumerate() {
                self.body[slot * w + i] = *t;
                if both {
                    self.head[slot * w + i] = *t;
                }
            }
        }
        fn set_head(&mut self, slot: usize, w: usize, content: &[Term]) {
            for (i, t) in content.iter().enumerate() {
                self.head[slot * w + i] = *t;
            }
        }
    }

    // Renders an atom into slot content: tag, remapped terms, padding.
    let slot_content = |atom: &Atom, var_map: &mut HashMap<u32, u32>, next_var: &mut u32| {
        let mut content = vec![Term::Const(tag(atom.pred))];
        for t in &atom.terms {
            content.push(match t {
                Term::Const(c) => Term::Const(*c),
                Term::Var(v) => {
                    let nv = *var_map.entry(*v).or_insert_with(|| {
                        let nv = *next_var;
                        *next_var += 1;
                        nv
                    });
                    Term::Var(nv)
                }
            });
        }
        while content.len() < w {
            content.push(Term::Const(empty));
        }
        content
    };
    let empty_content: Vec<Term> = std::iter::repeat_n(Term::Const(empty), w).collect();

    // Add-rules for every source rule (facts, single-, double-body), with
    // the same-slot variant for unifiable double bodies.
    let mut expanded: Vec<Rule> = Vec::new();
    for rule in prog.rules() {
        expanded.push(rule.clone());
        if rule.body.len() == 2 {
            if let Some(unified) = unify_rule(rule) {
                expanded.push(unified);
            }
        }
    }
    for rule in &expanded {
        match rule.body.len() {
            0 => {
                for e in 0..k {
                    let mut next_var = 0u32;
                    let mut var_map = HashMap::new();
                    let mut sr = SlotRule::free(k, w, &mut next_var);
                    sr.pin(e, w, &empty_content, false);
                    let head_content = slot_content(&rule.head, &mut var_map, &mut next_var);
                    sr.set_head(e, w, &head_content);
                    out.rule(
                        Atom::new(cache_pred, sr.head),
                        vec![Atom::new(cache_pred, sr.body)],
                    )
                    .expect("generated rule is safe");
                }
            }
            1 => {
                for i in 0..k {
                    for e in 0..k {
                        if e == i {
                            continue;
                        }
                        let mut next_var = 0u32;
                        let mut var_map = HashMap::new();
                        let mut sr = SlotRule::free(k, w, &mut next_var);
                        let b = slot_content(&rule.body[0], &mut var_map, &mut next_var);
                        sr.pin(i, w, &b, true);
                        sr.pin(e, w, &empty_content, false);
                        let h = slot_content(&rule.head, &mut var_map, &mut next_var);
                        sr.set_head(e, w, &h);
                        out.rule(
                            Atom::new(cache_pred, sr.head),
                            vec![Atom::new(cache_pred, sr.body)],
                        )
                        .expect("generated rule is safe");
                    }
                }
            }
            2 => {
                for i in 0..k {
                    for j in 0..k {
                        if i == j {
                            continue;
                        }
                        for e in 0..k {
                            if e == i || e == j {
                                continue;
                            }
                            let mut next_var = 0u32;
                            let mut var_map = HashMap::new();
                            let mut sr = SlotRule::free(k, w, &mut next_var);
                            let b1 = slot_content(&rule.body[0], &mut var_map, &mut next_var);
                            let b2 = slot_content(&rule.body[1], &mut var_map, &mut next_var);
                            sr.pin(i, w, &b1, true);
                            sr.pin(j, w, &b2, true);
                            sr.pin(e, w, &empty_content, false);
                            let h = slot_content(&rule.head, &mut var_map, &mut next_var);
                            sr.set_head(e, w, &h);
                            out.rule(
                                Atom::new(cache_pred, sr.head),
                                vec![Atom::new(cache_pred, sr.body)],
                            )
                            .expect("generated rule is safe");
                        }
                    }
                }
            }
            _ => unreachable!("checked above"),
        }
    }

    // Drop rules.
    for i in 0..k {
        let mut next_var = 0u32;
        let mut sr = SlotRule::free(k, w, &mut next_var);
        sr.set_head(i, w, &empty_content);
        out.rule(
            Atom::new(cache_pred, sr.head),
            vec![Atom::new(cache_pred, sr.body)],
        )
        .expect("generated rule is safe");
    }

    // Goal rules.
    let goal_content: Vec<Term> = {
        let mut c = vec![Term::Const(tag(goal.pred))];
        c.extend(goal.args.iter().map(|&a| Term::Const(a)));
        while c.len() < w {
            c.push(Term::Const(empty));
        }
        c
    };
    for i in 0..k {
        let mut next_var = 0u32;
        let mut sr = SlotRule::free(k, w, &mut next_var);
        sr.pin(i, w, &goal_content, true);
        out.rule(
            Atom::new(goal_pred, Vec::new()),
            vec![Atom::new(cache_pred, sr.body)],
        )
        .expect("generated rule is safe");
    }

    Ok(LinearTranslation {
        program: out,
        goal: GroundAtom::new(goal_pred, Vec::new()),
        slot_width: w,
    })
}

fn max_const_id(prog: &Program, goal: &GroundAtom) -> u32 {
    let mut m = prog.n_constants() as u32;
    for rule in prog.rules() {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            for t in &atom.terms {
                if let Term::Const(c) = t {
                    m = m.max(c.0 + 1);
                }
            }
        }
    }
    for c in &goal.args {
        m = m.max(c.0 + 1);
    }
    m
}

/// If the two body atoms of `rule` unify, the rule with both collapsed to
/// one atom (the cache is a set: one cached atom can justify both body
/// occurrences).
fn unify_rule(rule: &Rule) -> Option<Rule> {
    let a = &rule.body[0];
    let b = &rule.body[1];
    if a.pred != b.pred || a.terms.len() != b.terms.len() {
        return None;
    }
    // Syntactic unification over variable/constant terms (no function
    // symbols, so this is plain union-find-free substitution chasing).
    let mut subst: HashMap<u32, Term> = HashMap::new();
    fn resolve(t: Term, subst: &HashMap<u32, Term>) -> Term {
        let mut cur = t;
        while let Term::Var(v) = cur {
            match subst.get(&v) {
                Some(&next) => cur = next,
                None => break,
            }
        }
        cur
    }
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        let ra = resolve(*ta, &subst);
        let rb = resolve(*tb, &subst);
        match (ra, rb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Var(v), other) | (other, Term::Var(v)) => {
                if other != Term::Var(v) {
                    subst.insert(v, other);
                }
            }
        }
    }
    let apply = |atom: &Atom| Atom {
        pred: atom.pred,
        terms: atom.terms.iter().map(|&t| resolve(t, &subst)).collect(),
    };
    Some(Rule {
        head: apply(&rule.head),
        body: vec![apply(a)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::prove_with_cache;
    use crate::linear::{is_linear, LinearEvaluator};

    /// reach-chain: needs a 3-cache (reach, next, new reach).
    fn chain(n: u32) -> (Program, GroundAtom) {
        let mut p = Program::new();
        let next = p.predicate("next", 2);
        let reach = p.predicate("reach", 1);
        let consts: Vec<Const> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
        for w in consts.windows(2) {
            p.fact(next, vec![w[0], w[1]]).unwrap();
        }
        p.fact(reach, vec![consts[0]]).unwrap();
        p.rule(
            Atom::new(reach, vec![Term::Var(1)]),
            vec![
                Atom::new(reach, vec![Term::Var(0)]),
                Atom::new(next, vec![Term::Var(0), Term::Var(1)]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(reach, vec![*consts.last().unwrap()]);
        (p, goal)
    }

    #[test]
    fn translation_is_linear() {
        let (p, goal) = chain(3);
        let t = cache_to_linear(&p, &goal, 3).unwrap();
        assert!(is_linear(&t.program));
        assert_eq!(t.slot_width, 3); // next has arity 2
    }

    #[test]
    fn lemma_4_2_equivalence_on_chain() {
        let (p, goal) = chain(3);
        for k in 1..=4 {
            let cache_verdict = prove_with_cache(&p, &goal, k);
            let t = cache_to_linear(&p, &goal, k).unwrap();
            let linear_verdict = LinearEvaluator::new(&t.program).query(&t.goal);
            assert_eq!(cache_verdict, linear_verdict, "k = {k}");
        }
    }

    #[test]
    fn fact_only_program() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        let a = p.constant("a");
        p.fact(q, vec![a]).unwrap();
        let goal = GroundAtom::new(q, vec![a]);
        let t = cache_to_linear(&p, &goal, 1).unwrap();
        assert!(LinearEvaluator::new(&t.program).query(&t.goal));
        // Unprovable goal.
        let b = Const(500);
        let bogus = GroundAtom::new(q, vec![b]);
        let t2 = cache_to_linear(&p, &bogus, 1).unwrap();
        assert!(!LinearEvaluator::new(&t2.program).query(&t2.goal));
    }

    #[test]
    fn unifiable_double_body_uses_single_slot() {
        // g() :- q(X), q(X): one cached q-atom justifies both. With k = 2
        // (q and g only) the goal is provable — requires the unified
        // variant, since distinct slots would need k = 3.
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        let g = p.predicate("g", 0);
        let a = p.constant("a");
        p.fact(q, vec![a]).unwrap();
        p.rule(
            Atom::new(g, vec![]),
            vec![
                Atom::new(q, vec![Term::Var(0)]),
                Atom::new(q, vec![Term::Var(0)]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(g, vec![]);
        assert!(prove_with_cache(&p, &goal, 2));
        let t = cache_to_linear(&p, &goal, 2).unwrap();
        assert!(LinearEvaluator::new(&t.program).query(&t.goal));
    }

    #[test]
    fn big_bodies_rejected() {
        let mut p = Program::new();
        let q = p.predicate("q", 0);
        p.fact(q, vec![]).unwrap();
        p.rule(
            Atom::new(q, vec![]),
            vec![
                Atom::new(q, vec![]),
                Atom::new(q, vec![]),
                Atom::new(q, vec![]),
            ],
        )
        .unwrap();
        let goal = GroundAtom::new(q, vec![]);
        let err = cache_to_linear(&p, &goal, 2).unwrap_err();
        assert!(matches!(err, TranslateError::BodyTooLarge { .. }));
    }

    #[test]
    fn translation_size_grows_polynomially() {
        let (p, goal) = chain(3);
        let t2 = cache_to_linear(&p, &goal, 2).unwrap();
        let t4 = cache_to_linear(&p, &goal, 4).unwrap();
        // O(k³) rules for the double-body rule dominates.
        assert!(t4.program.rules().len() > t2.program.rules().len());
        assert!(t4.program.rules().len() < 64 * t2.program.rules().len());
    }
}
