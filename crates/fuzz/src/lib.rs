#![warn(missing_docs)]
//! # parra-fuzz — differential fuzzing for the verification stack
//!
//! The paper's theorems are executable correctness criteria: Theorem 3.4
//! says the simplified semantics and concrete RA agree on safety, and
//! Theorem 4.1 / Lemma 4.3 say the direct search and the `makeP` Datalog
//! encoding implement the same decision procedure. This crate turns those
//! statements into a fuzzing subsystem:
//!
//! * [`gen`] — one seed-deterministic random-system generator
//!   ([`gen::SystemGen`]) with a [`gen::GenConfig`] of knobs (variables,
//!   domain, program length, dis count, CAS, loops) replacing the
//!   copy-pasted `random_system` helpers the integration tests grew;
//! * [`oracle`] — the pluggable [`oracle::Oracle`] trait and five concrete
//!   oracles (cross-engine agreement, Theorem 3.4 equivalence,
//!   thread-count determinism, pretty/parse round-trip, verdict
//!   monotonicity);
//! * [`shrink`] — a delta-debugging [`shrink::Shrinker`] minimizing any
//!   failing system while re-checking the oracle;
//! * [`corpus`] — persistent `.ra` regression files with provenance
//!   headers, replayed by `cargo test`;
//! * [`runner`] — the deterministic fuzz loop behind the `parra fuzz` CLI
//!   subcommand, with `parra-obs` counters and a JSON summary.
//!
//! Everything is std-only, like the rest of the workspace.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod runner;
pub mod shrink;

pub use parra_qbf::rng;
