//! Linear Datalog: the fragment whose query evaluation is in PSPACE
//! (Gottlob–Papadimitriou), used as the target of the paper's encoding.
//!
//! A program is linear when every rule has at most one body atom. Query
//! evaluation then amounts to reachability over ground atoms: facts are
//! sources, and each linear rule maps one derived atom to another. The
//! [`LinearEvaluator`] exploits this: no joins, a plain worklist — the
//! combinatorics that make linear Datalog PSPACE rather than EXPTIME.

use crate::ast::{GroundAtom, Program, Term};
use std::collections::{HashMap, HashSet, VecDeque};

/// Whether every rule is linear (body of at most one atom).
pub fn is_linear(program: &Program) -> bool {
    program.rules().iter().all(|r| r.is_linear())
}

/// Worklist evaluator for linear programs.
#[derive(Debug)]
pub struct LinearEvaluator<'p> {
    program: &'p Program,
}

impl<'p> LinearEvaluator<'p> {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the program is not linear — use
    /// [`Evaluator`](crate::eval::Evaluator) for general programs.
    pub fn new(program: &'p Program) -> LinearEvaluator<'p> {
        assert!(is_linear(program), "program is not linear");
        LinearEvaluator { program }
    }

    /// `Prog ⊢ g` with early exit.
    pub fn query(&self, goal: &GroundAtom) -> bool {
        self.run_until(Some(goal)).contains(goal)
    }

    /// Derives all atoms (or stops early once `stop_at` appears).
    pub fn run_until(&self, stop_at: Option<&GroundAtom>) -> HashSet<GroundAtom> {
        let mut derived: HashSet<GroundAtom> = HashSet::new();
        let mut queue: VecDeque<GroundAtom> = VecDeque::new();

        for rule in self.program.rules() {
            if rule.is_fact() {
                let g = rule.head.to_ground();
                if derived.insert(g.clone()) {
                    queue.push_back(g);
                }
            }
        }

        // Rules indexed by body predicate.
        let mut by_pred: HashMap<u32, Vec<usize>> = HashMap::new();
        for (ri, rule) in self.program.rules().iter().enumerate() {
            if let Some(b) = rule.body.first() {
                by_pred.entry(b.pred.0).or_default().push(ri);
            }
        }

        while let Some(atom) = queue.pop_front() {
            if let Some(goal) = stop_at {
                if *goal == atom {
                    return derived;
                }
            }
            let Some(rules) = by_pred.get(&atom.pred.0) else {
                continue;
            };
            for &ri in rules {
                let rule = &self.program.rules()[ri];
                let body = &rule.body[0];
                // Match the single body atom.
                let mut subst: HashMap<u32, crate::ast::Const> = HashMap::new();
                let mut ok = body.terms.len() == atom.args.len();
                if ok {
                    for (t, c) in body.terms.iter().zip(&atom.args) {
                        match t {
                            Term::Const(k) => {
                                if k != c {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Var(v) => match subst.get(v) {
                                Some(bound) if bound != c => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    subst.insert(*v, *c);
                                }
                            },
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let head = GroundAtom {
                    pred: rule.head.pred,
                    args: rule
                        .head
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => *c,
                            Term::Var(v) => *subst.get(v).expect("safe rule"),
                        })
                        .collect(),
                };
                if derived.insert(head.clone()) {
                    queue.push_back(head);
                }
            }
        }
        derived
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Program};
    use crate::eval::Evaluator;

    /// A linear "even path length" program over a cycle.
    fn even_cycle(n: u32) -> (Program, GroundAtom) {
        let mut p = Program::new();
        let at_even = p.predicate("at_even", 1);
        let at_odd = p.predicate("at_odd", 1);
        let consts: Vec<_> = (0..n).map(|i| p.constant(&format!("v{i}"))).collect();
        p.fact(at_even, vec![consts[0]]).unwrap();
        for i in 0..n {
            let j = ((i + 1) % n) as usize;
            // at_odd(next) :- at_even(cur) and vice versa, per edge.
            p.rule(
                Atom::new(at_odd, vec![Term::Const(consts[j])]),
                vec![Atom::new(at_even, vec![Term::Const(consts[i as usize])])],
            )
            .unwrap();
            p.rule(
                Atom::new(at_even, vec![Term::Const(consts[j])]),
                vec![Atom::new(at_odd, vec![Term::Const(consts[i as usize])])],
            )
            .unwrap();
        }
        let goal = GroundAtom::new(at_even, vec![consts[1]]);
        (p, goal)
    }

    #[test]
    fn linearity_check() {
        let (p, _) = even_cycle(4);
        assert!(is_linear(&p));
    }

    #[test]
    fn even_cycle_reachability() {
        // On an even cycle, v1 is reachable at even parity iff the cycle
        // length lets parity flip — going around the 4-cycle: positions at
        // even steps are v0, v2, v0, ... and odd steps v1, v3; reaching v1
        // at even parity requires going around an odd number of... with a
        // 4-cycle parity is fixed: v1 only at odd. So goal is NOT derivable.
        let (p, goal) = even_cycle(4);
        assert!(!LinearEvaluator::new(&p).query(&goal));
        // With a 3-cycle, parity flips around the loop: derivable.
        let (p3, goal3) = even_cycle(3);
        assert!(LinearEvaluator::new(&p3).query(&goal3));
    }

    #[test]
    fn agrees_with_general_evaluator() {
        for n in 2..6 {
            let (p, goal) = even_cycle(n);
            let lin = LinearEvaluator::new(&p).query(&goal);
            let gen = Evaluator::new(&p).query(&goal);
            assert_eq!(lin, gen, "n = {n}");
        }
    }

    #[test]
    fn variable_rules_propagate() {
        let mut p = Program::new();
        let q = p.predicate("q", 2);
        let r = p.predicate("r", 2);
        let a = p.constant("a");
        let b = p.constant("b");
        p.fact(q, vec![a, b]).unwrap();
        // r(Y, X) :- q(X, Y).
        p.rule(
            Atom::new(r, vec![Term::Var(1), Term::Var(0)]),
            vec![Atom::new(q, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        let db = LinearEvaluator::new(&p).run_until(None);
        assert!(db.contains(&GroundAtom::new(r, vec![b, a])));
    }

    #[test]
    #[should_panic(expected = "not linear")]
    fn nonlinear_rejected() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        p.rule(
            Atom::new(q, vec![Term::Var(0)]),
            vec![
                Atom::new(q, vec![Term::Var(0)]),
                Atom::new(q, vec![Term::Var(0)]),
            ],
        )
        .unwrap();
        LinearEvaluator::new(&p);
    }

    use crate::ast::Term;
}
