//! Datalog abstract syntax: constants, terms, atoms, rules, programs.
//!
//! Programs are *positive* Datalog: no negation. Rules must be *safe*
//! (every head variable occurs in the body; facts are ground). A rule with
//! at most one body atom is *linear*; a program of linear rules and facts
//! is a linear Datalog program (Section 4 of the paper).

use std::collections::HashMap;
use std::fmt;

/// An (opaque) constant. Constants are dense `u32` ids; a [`Program`] can
/// attach display names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(pub u32);

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A predicate identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

/// A term: a rule-local variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule-local variable (dense per rule).
    Var(u32),
    /// A constant.
    Const(Const),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(i: u32) -> Term {
        Term::Var(i)
    }

    /// Shorthand for a constant term.
    pub fn cst(c: u32) -> Term {
        Term::Const(Const(c))
    }
}

/// An atom `p(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate.
    pub pred: PredId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: PredId, terms: Vec<Term>) -> Atom {
        Atom { pred, terms }
    }

    /// Whether all terms are constants.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// The variables occurring in the atom.
    pub fn variables(&self) -> Vec<u32> {
        let mut vs: Vec<u32> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Converts a ground atom view of this atom.
    ///
    /// # Panics
    ///
    /// Panics if the atom is not ground.
    pub fn to_ground(&self) -> GroundAtom {
        GroundAtom {
            pred: self.pred,
            args: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => *c,
                    Term::Var(v) => panic!("atom is not ground: variable X{v}"),
                })
                .collect(),
        }
    }
}

/// A ground atom `p(c₁, …, cₙ)` — the objects inferred by evaluation and
/// stored in caches.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// The predicate.
    pub pred: PredId,
    /// The argument constants.
    pub args: Vec<Const>,
}

impl GroundAtom {
    /// Creates a ground atom.
    pub fn new(pred: PredId, args: Vec<Const>) -> GroundAtom {
        GroundAtom { pred, args }
    }
}

/// An inference rule `head :- body₁, …, bodyₜ`. Facts have empty bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body atoms (empty for facts).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Whether the rule is a fact (empty body).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether the rule is linear (at most one body atom).
    pub fn is_linear(&self) -> bool {
        self.body.len() <= 1
    }
}

/// Why a rule is rejected by [`Program`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A predicate is used with the wrong number of arguments.
    ArityMismatch {
        /// The offending predicate.
        pred: PredId,
        /// Its declared arity.
        expected: usize,
        /// The number of terms supplied.
        got: usize,
    },
    /// A head variable does not occur in the body (unsafe rule).
    UnsafeVariable {
        /// The unbound variable.
        var: u32,
    },
    /// An unknown predicate id.
    UnknownPredicate(PredId),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate p{} used with {got} arguments, declared with {expected}",
                pred.0
            ),
            RuleError::UnsafeVariable { var } => {
                write!(f, "head variable X{var} does not occur in the body")
            }
            RuleError::UnknownPredicate(p) => write!(f, "unknown predicate p{}", p.0),
        }
    }
}

impl std::error::Error for RuleError {}

#[derive(Debug, Clone)]
struct PredInfo {
    name: String,
    arity: usize,
}

/// A positive Datalog program: a predicate registry, constant names, and
/// validated rules.
///
/// # Example
///
/// ```
/// use parra_datalog::ast::{Atom, Program, Term};
///
/// let mut p = Program::new();
/// let edge = p.predicate("edge", 2);
/// let path = p.predicate("path", 2);
/// let a = p.constant("a");
/// let b = p.constant("b");
/// p.fact(edge, vec![a, b]).unwrap();
/// p.rule(
///     Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
///     vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
/// )
/// .unwrap();
/// assert_eq!(p.rules().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    preds: Vec<PredInfo>,
    pred_index: HashMap<String, PredId>,
    const_names: Vec<String>,
    const_index: HashMap<String, Const>,
    rules: Vec<Rule>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declares (or re-uses) a predicate with the given arity.
    ///
    /// # Panics
    ///
    /// Panics if the name was declared before with a different arity.
    pub fn predicate(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&id) = self.pred_index.get(name) {
            assert_eq!(
                self.preds[id.0 as usize].arity, arity,
                "predicate `{name}` re-declared with different arity"
            );
            return id;
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredInfo {
            name: name.to_owned(),
            arity,
        });
        self.pred_index.insert(name.to_owned(), id);
        id
    }

    /// Interns a named constant.
    pub fn constant(&mut self, name: &str) -> Const {
        if let Some(&c) = self.const_index.get(name) {
            return c;
        }
        let c = Const(self.const_names.len() as u32);
        self.const_names.push(name.to_owned());
        self.const_index.insert(name.to_owned(), c);
        c
    }

    /// The number of interned constants.
    pub fn n_constants(&self) -> usize {
        self.const_names.len()
    }

    /// The display name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.preds[p.0 as usize].name
    }

    /// The arity of a predicate.
    pub fn pred_arity(&self, p: PredId) -> usize {
        self.preds[p.0 as usize].arity
    }

    /// The display name of a constant, if it was interned by name.
    pub fn const_name(&self, c: Const) -> Option<&str> {
        self.const_names.get(c.0 as usize).map(String::as_str)
    }

    /// Looks up a predicate by name.
    pub fn lookup_pred(&self, name: &str) -> Option<PredId> {
        self.pred_index.get(name).copied()
    }

    /// All predicates.
    pub fn predicates(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// The validated rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Adds a fact `p(args)`.
    ///
    /// # Errors
    ///
    /// Rejects arity mismatches and unknown predicates.
    pub fn fact(&mut self, pred: PredId, args: Vec<Const>) -> Result<(), RuleError> {
        let head = Atom::new(pred, args.into_iter().map(Term::Const).collect());
        self.rule(head, Vec::new())
    }

    /// Adds a rule `head :- body`, validating arity and safety.
    ///
    /// # Errors
    ///
    /// See [`RuleError`].
    pub fn rule(&mut self, head: Atom, body: Vec<Atom>) -> Result<(), RuleError> {
        for atom in std::iter::once(&head).chain(body.iter()) {
            let info = self
                .preds
                .get(atom.pred.0 as usize)
                .ok_or(RuleError::UnknownPredicate(atom.pred))?;
            if info.arity != atom.terms.len() {
                return Err(RuleError::ArityMismatch {
                    pred: atom.pred,
                    expected: info.arity,
                    got: atom.terms.len(),
                });
            }
        }
        let body_vars: std::collections::HashSet<u32> =
            body.iter().flat_map(|a| a.variables()).collect();
        for v in head.variables() {
            if !body_vars.contains(&v) {
                return Err(RuleError::UnsafeVariable { var: v });
            }
        }
        self.rules.push(Rule { head, body });
        Ok(())
    }

    /// Renders a ground atom with names where available.
    pub fn display_ground(&self, g: &GroundAtom) -> String {
        let args: Vec<String> = g
            .args
            .iter()
            .map(|c| {
                self.const_name(*c)
                    .map(str::to_owned)
                    .unwrap_or_else(|| c.to_string())
            })
            .collect();
        format!("{}({})", self.pred_name(g.pred), args.join(","))
    }

    /// Total size: number of rules plus the number of atoms in all rules —
    /// the `|Prog|` of the paper's complexity statements.
    pub fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| {
                1 + r.body.len()
                    + r.head.terms.len()
                    + r.body.iter().map(|a| a.terms.len()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_interning() {
        let mut p = Program::new();
        let e1 = p.predicate("edge", 2);
        let e2 = p.predicate("edge", 2);
        assert_eq!(e1, e2);
        assert_eq!(p.pred_name(e1), "edge");
        assert_eq!(p.pred_arity(e1), 2);
    }

    #[test]
    #[should_panic(expected = "different arity")]
    fn arity_conflict_panics() {
        let mut p = Program::new();
        p.predicate("q", 1);
        p.predicate("q", 2);
    }

    #[test]
    fn constants_intern() {
        let mut p = Program::new();
        let a = p.constant("a");
        assert_eq!(p.constant("a"), a);
        assert_eq!(p.const_name(a), Some("a"));
        assert_eq!(p.n_constants(), 1);
    }

    #[test]
    fn fact_arity_checked() {
        let mut p = Program::new();
        let q = p.predicate("q", 2);
        let a = p.constant("a");
        let err = p.fact(q, vec![a]).unwrap_err();
        assert!(matches!(err, RuleError::ArityMismatch { .. }));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        let r = p.predicate("r", 1);
        let err = p
            .rule(
                Atom::new(q, vec![Term::Var(1)]),
                vec![Atom::new(r, vec![Term::Var(0)])],
            )
            .unwrap_err();
        assert_eq!(err, RuleError::UnsafeVariable { var: 1 });
    }

    #[test]
    fn linearity() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        p.rule(
            Atom::new(q, vec![Term::Var(0)]),
            vec![Atom::new(q, vec![Term::Var(0)])],
        )
        .unwrap();
        assert!(p.rules()[0].is_linear());
        assert!(!p.rules()[0].is_fact());
    }

    #[test]
    fn ground_atoms_and_display() {
        let mut p = Program::new();
        let q = p.predicate("q", 2);
        let a = p.constant("a");
        let b = p.constant("b");
        p.fact(q, vec![a, b]).unwrap();
        let g = p.rules()[0].head.to_ground();
        assert_eq!(p.display_ground(&g), "q(a,b)");
        assert!(p.rules()[0].head.is_ground());
    }

    #[test]
    fn atom_variables_sorted_dedup() {
        let a = Atom::new(
            PredId(0),
            vec![Term::Var(2), Term::Var(0), Term::Var(2), Term::cst(5)],
        );
        assert_eq!(a.variables(), vec![0, 2]);
        assert!(!a.is_ground());
    }

    #[test]
    fn program_size_counts_atoms() {
        let mut p = Program::new();
        let q = p.predicate("q", 1);
        let a = p.constant("a");
        p.fact(q, vec![a]).unwrap();
        p.rule(
            Atom::new(q, vec![Term::Var(0)]),
            vec![Atom::new(q, vec![Term::Var(0)])],
        )
        .unwrap();
        assert!(p.size() >= 4);
    }
}
