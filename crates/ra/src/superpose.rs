//! Superposition `ρ ▷ ρ'` (Section 3.2, Lemma 3.2), executable.
//!
//! The superposition of two non-conflicting computations executes `ρ` and
//! then re-executes the `env` part of `ρ'` on top of `last(ρ)`. Lemma 3.2:
//! if `ρ↓env # ρ'↓env` and `Msgs(ρ↓dis) = Msgs(ρ'↓dis)`, the result is
//! again an RA computation. [`superpose_env`] performs the construction —
//! including the thread-disjointness requirement, realized by re-indexing
//! `ρ'`'s `env` threads into a combined instance — and replays the result.

use crate::config::{Instance, ThreadId};
use crate::step::Transition;
use crate::trace::{ReplayError, Trace};
use std::fmt;
use std::sync::Arc;

/// Why a superposition is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuperposeError {
    /// The computations run over different systems.
    DifferentSystems,
    /// The `env` messages of the two computations conflict
    /// (`ρ↓env # ρ'↓env` fails).
    EnvConflict,
    /// `Msgs(ρ↓dis) ≠ Msgs(ρ'↓dis)`: the clone run saw different
    /// distinguished messages.
    DisMessagesDiffer,
    /// The combined computation failed to replay. Per Lemma 3.2 this cannot
    /// happen when the side conditions hold.
    Replay(ReplayError),
}

impl fmt::Display for SuperposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperposeError::DifferentSystems => {
                write!(f, "computations run over different systems")
            }
            SuperposeError::EnvConflict => write!(f, "env messages of ρ and ρ' conflict"),
            SuperposeError::DisMessagesDiffer => {
                write!(f, "Msgs(ρ↓dis) ≠ Msgs(ρ'↓dis)")
            }
            SuperposeError::Replay(e) => write!(f, "superposed computation invalid: {e}"),
        }
    }
}

impl std::error::Error for SuperposeError {}

/// Re-indexes the threads of a transition sequence.
pub fn remap_threads<F: Fn(ThreadId) -> ThreadId>(
    transitions: &[Transition],
    f: F,
) -> Vec<Transition> {
    transitions
        .iter()
        .map(|t| Transition {
            thread: f(t.thread),
            edge: t.edge,
            action: t.action.clone(),
        })
        .collect()
}

/// The superposition `ρ ▷ (ρ'↓env)` of Lemma 3.2.
///
/// Both computations must run over the same system (possibly with different
/// `env` counts). The result runs over a combined instance with
/// `ρ.n_env + ρ'.n_env` environment threads: `ρ`'s `env` threads keep their
/// identities, `ρ'`'s are shifted up, and the `dis` threads are shared
/// (their transitions are taken from `ρ` only).
///
/// # Errors
///
/// Rejects computations over different systems, with conflicting `env`
/// messages, or with different `dis` message sets; and reports a replay
/// error if the combined computation is invalid (by Lemma 3.2, impossible
/// when the side conditions hold — property-tested).
pub fn superpose_env(rho: &Trace, rho2: &Trace) -> Result<Trace, SuperposeError> {
    if rho.instance().system() != rho2.instance().system() {
        return Err(SuperposeError::DifferentSystems);
    }
    if !rho.env_messages().non_conflicting(&rho2.env_messages()) {
        return Err(SuperposeError::EnvConflict);
    }
    if rho.dis_messages() != rho2.dis_messages() {
        return Err(SuperposeError::DisMessagesDiffer);
    }

    let n_env1 = rho.instance().n_env();
    let n_env2 = rho2.instance().n_env();
    let n_env_total = n_env1 + n_env2;
    let combined = Instance::from_arc(Arc::new(rho.instance().system().clone()), n_env_total);

    // ρ's transitions: env ids unchanged, dis ids shifted to the end.
    let part1 = remap_threads(rho.transitions(), |tid| {
        if tid.0 < n_env1 {
            tid
        } else {
            ThreadId(tid.0 - n_env1 + n_env_total)
        }
    });
    // ρ'↓env: env ids shifted past ρ's env block.
    let part2 = remap_threads(&rho2.env_projection(), |tid| {
        debug_assert!(tid.0 < n_env2);
        ThreadId(tid.0 + n_env1)
    });

    let mut all = part1;
    all.extend(part2);
    Trace::from_transitions(combined, all).map_err(SuperposeError::Replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifting::Lifting;
    use crate::step::monotone_successors;
    use parra_program::builder::SystemBuilder;
    use parra_program::system::{ParamSystem, ThreadKind};

    /// env: r <- y; x := 1  ‖  dis: y := 1
    fn sys() -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        d.store(y, 1);
        let d = d.finish();
        b.build(env, vec![d])
    }

    fn lcg(seed: u64) -> impl FnMut(usize) -> usize {
        let mut s = seed;
        move |k| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize % k.max(1)
        }
    }

    /// Build ρ and a "clone candidate" ρ' with the same dis messages but
    /// env messages in the holes of a spaced-out ρ.
    #[test]
    fn superposition_of_spaced_runs() {
        let inst = Instance::new(sys(), 1);
        let tr = Trace::random(inst, 30, lcg(42));
        if tr.env_messages().is_empty() {
            return; // nothing to superpose in this sample
        }
        // Space ρ out by factor 2: odd slots become holes.
        let spaced = Lifting::spacing(&tr, 2).apply(&tr).unwrap();
        // ρ': same run, but env stores shifted into the holes (2t - 1) and
        // dis stores at the same spots (2t).
        let n_env = tr.instance().n_env();
        let env_ts: std::collections::BTreeSet<_> = tr
            .env_messages()
            .iter()
            .map(|m| (m.var, m.timestamp()))
            .collect();
        let shifted = Lifting::from_fn(&tr, |x, t| {
            if env_ts.contains(&(x, t)) {
                crate::timestamp::Timestamp(2 * t.0 - 1)
            } else {
                crate::timestamp::Timestamp(2 * t.0)
            }
        })
        .apply(&tr)
        .unwrap();
        let result = superpose_env(&spaced, &shifted).expect("Lemma 3.2");
        assert_eq!(result.instance().n_env(), 2 * n_env);
        // All spaced env messages and all shifted env messages coexist.
        for m in spaced.env_messages().iter() {
            assert!(result.last().memory.contains(m));
        }
        for m in shifted.env_messages().iter() {
            assert!(result.last().memory.contains(m));
        }
        // dis transitions appear exactly once (from ρ).
        let dis_count = result
            .transitions()
            .iter()
            .filter(|t| matches!(result.instance().kind(t.thread), ThreadKind::Dis(_)))
            .count();
        assert_eq!(dis_count, tr.dis_projection().len());
    }

    #[test]
    fn conflicting_env_messages_rejected() {
        let inst = Instance::new(sys(), 1);
        let tr = {
            // Force an env store: dis stores y, env loads y, env stores x.
            let mut tr = Trace::new(inst);
            loop {
                let succs = monotone_successors(tr.instance(), tr.last());
                match succs.into_iter().next() {
                    Some(t) => tr.push(t).unwrap(),
                    None => break,
                }
            }
            tr
        };
        if tr.env_messages().is_empty() {
            panic!("expected env messages");
        }
        // ρ' = ρ: identical env messages conflict (same var, same ts).
        let err = superpose_env(&tr, &tr).unwrap_err();
        assert_eq!(err, SuperposeError::EnvConflict);
    }

    #[test]
    fn differing_dis_messages_rejected() {
        let inst = Instance::new(sys(), 1);
        // ρ: only the dis store happens. ρ': nothing happens.
        let mut rho = Trace::new(inst.clone());
        let dis_store = monotone_successors(rho.instance(), rho.last())
            .into_iter()
            .find(|t| t.thread == ThreadId(1))
            .unwrap();
        rho.push(dis_store).unwrap();
        let rho2 = Trace::new(inst);
        let err = superpose_env(&rho, &rho2).unwrap_err();
        assert_eq!(err, SuperposeError::DisMessagesDiffer);
    }

    #[test]
    fn empty_superposition_is_identity() {
        let inst = Instance::new(sys(), 1);
        let rho = Trace::new(inst.clone());
        let rho2 = Trace::new(inst);
        let result = superpose_env(&rho, &rho2).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.instance().n_env(), 2);
    }

    #[test]
    fn remap_is_pure_relabeling() {
        let inst = Instance::new(sys(), 2);
        let tr = Trace::random(inst, 10, lcg(5));
        let remapped = remap_threads(tr.transitions(), |t| ThreadId(t.0 + 7));
        for (a, b) in tr.transitions().iter().zip(&remapped) {
            assert_eq!(a.edge, b.edge);
            assert_eq!(a.action, b.action);
            assert_eq!(b.thread.0, a.thread.0 + 7);
        }
    }
}
