//! Campaign warm-cache benchmark and regression gate.
//!
//! Materializes the whole litmus suite as `.ra` files, runs a cold
//! campaign over them (every input verified, store populated), then a
//! warm re-run over the same store (every key already settled). The
//! campaign layer's contract is that the warm pass re-verifies nothing;
//! the gate enforces it structurally (≥90% of inputs must be skipped —
//! in practice 100%) and keeps the cold wall-clock under the shared
//! 25%-and-20ms regression rule.
//!
//! ```text
//! bench_campaign [--out FILE]        # measure and write FILE (default BENCH_campaign.json)
//! bench_campaign --check BASELINE    # measure and fail (exit 1) on regression
//! ```

use parra_campaign::{plan, run_campaign, CampaignOptions, Manifest, Store};
use parra_core::verify::{EngineId, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use parra_obs::Recorder;
use std::process::ExitCode;

/// Relative wall-clock tolerance of the `--check` gate.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which drift is timer noise.
const FLOOR_US: u64 = 20_000;

/// Minimum fraction of inputs the warm re-run must skip, in permille.
const MIN_SKIP_PERMILLE: u64 = 900;

struct Measurement {
    inputs: u64,
    cold_us: u64,
    warm_us: u64,
    warm_verified: u64,
    skip_permille: u64,
}

fn measure() -> Measurement {
    let scratch = std::env::temp_dir().join(format!("parra-bench-campaign-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let corpus = scratch.join("corpus");
    std::fs::create_dir_all(&corpus).expect("create corpus dir");
    let mut inputs: Vec<String> = Vec::new();
    for bench in parra_litmus::all() {
        let path = corpus.join(format!("{}.ra", bench.name));
        std::fs::write(
            &path,
            parra_program::pretty::system_to_string(&bench.system),
        )
        .expect("write litmus system");
        inputs.push(path.display().to_string());
    }

    let copts = CampaignOptions {
        engines: vec![EngineId::SimplifiedReach],
        race: false,
        engine_label: EngineId::SimplifiedReach.to_string(),
        options: VerifierOptions {
            threads: 1,
            ..Default::default()
        },
        shard: None,
    };
    let manifest = Manifest {
        engine: copts.engine_label.clone(),
        options_fp: copts.options_fp(),
        unroll: None,
        timeout_us: None,
        memory_budget: None,
        shard: None,
        inputs: inputs.clone(),
    };
    let store = Store::create(&scratch.join("store"), &manifest).expect("create store");

    let sweep = |label: &str| {
        let entries = plan(&inputs, &store, &copts).expect("plan");
        let start = std::time::Instant::now();
        let summary = run_campaign(
            &store,
            &entries,
            &copts,
            &Recorder::disabled(),
            |_, _, _| {},
        )
        .unwrap_or_else(|e| panic!("{label} sweep: {e}"));
        assert_eq!(
            summary.errors, 0,
            "{label} sweep hit errors — the litmus corpus should verify cleanly"
        );
        (start.elapsed().as_micros() as u64, summary)
    };
    let (cold_us, cold) = sweep("cold");
    assert_eq!(
        cold.verified, cold.assigned,
        "cold sweep must verify everything"
    );
    let (warm_us, warm) = sweep("warm");

    let skip_permille = warm
        .cached
        .saturating_mul(1000)
        .checked_div(warm.assigned)
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&scratch);
    Measurement {
        inputs: inputs.len() as u64,
        cold_us,
        warm_us,
        warm_verified: warm.verified,
        skip_permille,
    }
}

fn to_json(m: &Measurement) -> String {
    let mut w = ObjWriter::new();
    w.num_field("inputs", m.inputs);
    w.num_field("cold_us", m.cold_us);
    w.num_field("warm_us", m.warm_us);
    w.num_field("warm_verified", m.warm_verified);
    w.num_field("skip_permille", m.skip_permille);
    let mut buf = w.finish();
    buf.push('\n');
    buf
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

fn check(m: &Measurement, baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let root = json::parse(&text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let base_cold = root
        .get("cold_us")
        .and_then(Value::as_u64)
        .ok_or("baseline missing numeric `cold_us`")?;
    let mut failures = Vec::new();
    // The structural gate: a warm re-run over an unchanged corpus must
    // skip at least 90% of inputs. This does not depend on the baseline
    // — it is the campaign layer's contract.
    if m.skip_permille < MIN_SKIP_PERMILLE {
        failures.push(format!(
            "warm re-run skipped only {}‰ of inputs (contract: ≥{}‰; {} re-verified)",
            m.skip_permille, MIN_SKIP_PERMILLE, m.warm_verified
        ));
    }
    if regresses(base_cold, m.cold_us) {
        failures.push(format!(
            "cold sweep {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
            m.cold_us,
            base_cold,
            (TOLERANCE - 1.0) * 100.0,
            FLOOR_US / 1000
        ));
    }
    println!(
        "campaign: {} inputs, cold {:>9} µs (baseline {:>9}), warm {:>9} µs, \
         warm skipped {}‰ {}",
        m.inputs,
        m.cold_us,
        base_cold,
        m.warm_us,
        m.skip_permille,
        if failures.is_empty() { "ok" } else { "FAILED" }
    );
    if failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("campaign bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let m = measure();
    match flag("--check") {
        Some(baseline) => match check(&m, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_campaign: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_campaign.json".into());
            let jsonv = to_json(&m);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_campaign: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            println!(
                "campaign: {} inputs, cold {} µs, warm {} µs ({}‰ skipped, {} re-verified)",
                m.inputs, m.cold_us, m.warm_us, m.skip_permille, m.warm_verified
            );
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
    }

    #[test]
    fn json_exposes_the_gate_fields() {
        let m = Measurement {
            inputs: 10,
            cold_us: 1_000_000,
            warm_us: 1_000,
            warm_verified: 0,
            skip_permille: 1000,
        };
        let v = json::parse(to_json(&m).trim()).unwrap();
        assert_eq!(v.get("cold_us").and_then(Value::as_u64), Some(1_000_000));
        assert_eq!(v.get("skip_permille").and_then(Value::as_u64), Some(1000));
    }
}
