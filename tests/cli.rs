//! End-to-end tests of the `parra` binary: flag/path parsing, the
//! observability surface (`--json`, `--stats`, `--trace-out`), and
//! `--all-engines` verdict aggregation.

use parra::obs::json;
use parra::prelude::*;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn example(name: &str) -> String {
    format!("{}/examples/systems/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn json_output_parses_and_matches_legacy_stats() {
    let input = example("handshake.ra");
    let out = Command::new(BIN)
        .args(["verify", "--engine", "simplified", "--json", &input])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "handshake is unsafe; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let v = json::parse(stdout.trim()).expect("stdout is one JSON object");
    assert_eq!(v.get("engine").unwrap().as_str(), Some("simplified-reach"));
    assert_eq!(v.get("verdict").unwrap().as_str(), Some("UNSAFE"));

    // The report must agree with an in-process run of the same engine on
    // the same input (the engine is deterministic).
    let sys = parse_system(&std::fs::read_to_string(&input).unwrap()).unwrap();
    let r = Verifier::new(&sys, VerifierOptions::default())
        .unwrap()
        .run(EngineId::SimplifiedReach);
    let stats = v.get("stats").unwrap();
    assert_eq!(
        stats.get("states").unwrap().as_u64(),
        Some(r.stats.states as u64)
    );
    assert_eq!(
        stats.get("worlds").unwrap().as_u64(),
        Some(r.stats.worlds as u64)
    );
    assert_eq!(
        stats.get("peak_env_msgs").unwrap().as_u64(),
        Some(r.stats.peak_env_msgs as u64)
    );
    assert_eq!(
        v.get("env_thread_bound").unwrap().as_u64(),
        r.env_thread_bound
    );
    assert_eq!(
        v.get("witness").unwrap().as_arr().unwrap().len(),
        r.witness_lines.len()
    );
}

#[test]
fn json_emits_one_object_per_engine() {
    let out = Command::new(BIN)
        .args([
            "verify",
            "--all-engines",
            "--json",
            &example("handshake.ra"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let engines: Vec<String> = stdout
        .lines()
        .map(|l| {
            json::parse(l)
                .expect("each line is a JSON object")
                .get("engine")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(
        engines,
        [
            "simplified-reach",
            "cache-datalog",
            "linear-datalog",
            "bounded-concrete"
        ]
    );
}

/// Regression test: `load()` used to scan for the first bare argument
/// when locating the input path, so a flag value like `--engine datalog`
/// or a `--trace-out` file name could be mistaken for the input file.
#[test]
fn flag_values_are_not_mistaken_for_the_input_path() {
    let out = Command::new(BIN)
        .args(["verify", "--engine", "datalog", &example("handshake.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let trace = std::env::temp_dir().join("parra_cli_trace_test.json");
    let out = Command::new(BIN)
        .args([
            "verify",
            "--trace-out",
            trace.to_str().unwrap(),
            &example("handshake.ra"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let events = json::parse(&text).expect("chrome trace is valid JSON");
    assert!(events
        .as_arr()
        .unwrap()
        .iter()
        .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("engine:simplified-reach") }));
    std::fs::remove_file(&trace).ok();

    // A missing input still errors out cleanly.
    let out = Command::new(BIN)
        .args(["verify", "--engine", "datalog"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing input file"));
}

/// Regression test: `--all-engines` used to report the verdict of the
/// *last* engine, so a Safe system ended Unknown because the (inherently
/// incomplete) concrete engine runs last. Decisive verdicts must win.
#[test]
fn all_engines_aggregation_prefers_decisive_verdicts() {
    let out = Command::new(BIN)
        .args(["verify", "--all-engines", &example("barrier.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "barrier is safe and exact engines prove it; stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(BIN)
        .args(["verify", "--all-engines", &example("handshake.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "handshake is unsafe");
}

/// `--threads N` and `PARRA_THREADS` select the worker count; reports
/// are identical whichever way it is set, and bad values error cleanly.
#[test]
fn threads_flag_is_parsed_and_does_not_change_reports() {
    let input = example("handshake.ra");
    let run = |extra_args: &[&str], env: Option<(&str, &str)>| {
        let mut cmd = Command::new(BIN);
        cmd.args(["verify", "--engine", "simplified", "--json"])
            .args(extra_args)
            .arg(&input);
        if let Some((k, v)) = env {
            cmd.env(k, v);
        }
        cmd.output().expect("binary runs")
    };

    let seq = run(&["--threads", "1"], None);
    let par = run(&["--threads", "4"], None);
    let via_env = run(&[], Some(("PARRA_THREADS", "4")));
    assert_eq!(seq.status.code(), Some(1));
    assert_eq!(par.status.code(), Some(1));
    assert_eq!(via_env.status.code(), Some(1));
    // The whole JSON report is thread-count independent (duration aside).
    let strip_durations = |out: &[u8]| {
        let v = json::parse(String::from_utf8_lossy(out).trim()).expect("JSON report");
        format!(
            "{:?} {:?} {:?} {:?}",
            v.get("verdict"),
            v.get("stats").unwrap().get("states"),
            v.get("stats").unwrap().get("worlds"),
            v.get("witness")
        )
    };
    assert_eq!(strip_durations(&seq.stdout), strip_durations(&par.stdout));
    assert_eq!(
        strip_durations(&seq.stdout),
        strip_durations(&via_env.stdout)
    );

    // An unparsable value is a usage error, not a panic or a silent
    // fallback; the flag value must not be mistaken for the input path.
    let out = Command::new(BIN)
        .args(["verify", "--threads", "zero", &input])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

/// `parra fuzz` with a fixed seed and case budget is bit-for-bit
/// deterministic: two invocations print the same summary, and `--json`
/// reports the same case/failure counts (wall-clock duration aside).
#[test]
fn fuzz_subcommand_is_deterministic_across_invocations() {
    let run = || {
        Command::new(BIN)
            .args([
                "fuzz",
                "--oracle",
                "engines-agree",
                "--cases",
                "25",
                "--seed",
                "7",
            ])
            .output()
            .expect("binary runs")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout, "fuzz summary must be reproducible");
    let line = String::from_utf8(a.stdout).unwrap();
    assert!(
        line.contains("oracle=engines-agree")
            && line.contains("seed=7")
            && line.contains("cases=25")
            && line.contains("failures=0"),
        "unexpected summary: {line}"
    );

    let out = Command::new(BIN)
        .args([
            "fuzz",
            "--oracle",
            "round-trip",
            "--cases",
            "10",
            "--seed",
            "3",
            "--json",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let v = json::parse(String::from_utf8_lossy(&out.stdout).trim())
        .expect("stdout is one JSON object");
    assert_eq!(v.get("oracle").unwrap().as_str(), Some("round-trip"));
    assert_eq!(v.get("cases").unwrap().as_u64(), Some(10));
    assert_eq!(v.get("failures").unwrap().as_u64(), Some(0));
}

/// `parra fuzz --minimize` on a passing corpus entry reports "nothing to
/// minimize" per oracle and exits 0; an unknown oracle is a usage error.
#[test]
fn fuzz_minimize_and_oracle_flag_validation() {
    let corpus_file = format!(
        "{}/corpus/engines-agree-cas-mutex.ra",
        env!("CARGO_MANIFEST_DIR")
    );
    let out = Command::new(BIN)
        .args([
            "fuzz",
            "--oracle",
            "engines-agree",
            "--minimize",
            &corpus_file,
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("passes; nothing to minimize"),
        "stdout: {stdout}"
    );

    let out = Command::new(BIN)
        .args(["fuzz", "--oracle", "no-such-oracle", "--cases", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(64));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown oracle"), "stderr: {err}");
    assert!(err.contains("engines-agree"), "stderr: {err}");
}

/// Regression test: `--concretize` used to be silently ignored under
/// `--json`. The witness must now land in the report either way, and the
/// human fallback message must name the §4.3-seeded cap.
#[test]
fn concretize_works_under_json_and_names_its_bound() {
    let input = example("handshake.ra");
    let out = Command::new(BIN)
        .args(["verify", "--json", "--concretize", &input])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("JSON report");
    let w = v.get("concrete_witness").expect("field present");
    let n_env = w.get("n_env").and_then(|n| n.as_u64()).expect("n_env");
    assert!(n_env >= 1);
    let steps = w.get("steps").and_then(|s| s.as_arr()).expect("steps");
    assert!(!steps.is_empty());

    // Without --concretize the field is null.
    let out = Command::new(BIN)
        .args(["verify", "--json", &input])
        .output()
        .expect("binary runs");
    let v = json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("JSON report");
    assert!(v.get("concrete_witness").unwrap().is_null());

    // Human output still prints the interleaving.
    let out = Command::new(BIN)
        .args(["verify", "--concretize", &input])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("concrete interleaving"), "stdout: {stdout}");
}

/// `--timeout 0` degrades to INTERRUPTED (exit 2) with the deadline
/// reason in the notes and JSON; `--memory-budget` parses suffixes and
/// rejects garbage.
#[test]
fn timeout_zero_interrupts_with_exit_code_2() {
    let input = example("barrier.ra");
    let out = Command::new(BIN)
        .args(["verify", "--timeout", "0", "--json", &input])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("JSON report");
    assert_eq!(v.get("interrupted").unwrap().as_str(), Some("deadline"));
    assert_eq!(
        v.get("verdict").unwrap().as_str(),
        Some("INTERRUPTED(deadline)")
    );

    let out = Command::new(BIN)
        .args(["verify", "--timeout", "0", &input])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("interrupted (deadline)"),
        "stdout: {stdout}"
    );

    // A generous memory budget parses and does not disturb the verdict.
    let out = Command::new(BIN)
        .args(["verify", "--memory-budget", "4g", &example("handshake.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));

    let out = Command::new(BIN)
        .args(["verify", "--memory-budget", "lots", &input])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(64));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--memory-budget"));
}

/// `parra batch` over the examples directory emits one JSON line per
/// `.ra` file in sorted order, and the exit code reflects the worst
/// verdict (handshake is unsafe → 1).
#[test]
fn batch_emits_one_json_line_per_file() {
    let dir = format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(BIN)
        .args(["batch", &dir])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<_> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    let mut verdicts = Vec::new();
    for line in &lines {
        let v = json::parse(line).expect("each line is a JSON object");
        let file = v.get("file").unwrap().as_str().unwrap().to_string();
        assert!(file.ends_with(".ra"), "{file}");
        assert!(v.get("error").unwrap().is_null(), "{line}");
        verdicts.push((
            file,
            v.get("verdict").unwrap().as_str().unwrap().to_string(),
        ));
    }
    assert!(
        verdicts
            .iter()
            .any(|(f, v)| f.ends_with("handshake.ra") && v == "UNSAFE"),
        "{verdicts:?}"
    );
    // Sorted order: barrier first, spinlock last.
    assert!(verdicts[0].0.ends_with("barrier.ra"));
    assert!(verdicts[4].0.ends_with("spinlock.ra"));
}

/// One panicking input must not take down the rest of the batch: the
/// poisoned file gets an `error` line, every other file still verifies.
#[test]
fn batch_survives_an_injected_panic() {
    let dir = format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(BIN)
        .args(["batch", &dir])
        .env("PARRA_INJECT_PANIC", "rcu")
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "handshake is still unsafe; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<_> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    let mut saw_panic = false;
    for line in &lines {
        let v = json::parse(line).expect("JSON line");
        let file = v.get("file").unwrap().as_str().unwrap().to_string();
        if file.ends_with("rcu.ra") {
            saw_panic = true;
            assert!(v.get("verdict").unwrap().is_null(), "{line}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains("panicked"), "{err}");
        } else {
            assert!(v.get("error").unwrap().is_null(), "{line}");
        }
    }
    assert!(saw_panic, "stdout: {stdout}");
}

/// Per-file limits in batch mode: a zero timeout interrupts every file
/// (exit 2, no UNSAFE was reached) but still prints one line per input.
#[test]
fn batch_with_zero_timeout_interrupts_every_file() {
    let dir = format!("{}/examples/systems", env!("CARGO_MANIFEST_DIR"));
    let out = Command::new(BIN)
        .args(["batch", "--timeout", "0", &dir])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<_> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "stdout: {stdout}");
    for line in &lines {
        let v = json::parse(line).expect("JSON line");
        assert_eq!(v.get("interrupted").unwrap().as_str(), Some("deadline"));
    }
}

/// `parra fuzz --timeout` bounds the run by wall clock: a zero timeout
/// completes immediately with an interruption note instead of hanging on
/// the unbounded case target.
#[test]
fn fuzz_timeout_stops_the_run() {
    let out = Command::new(BIN)
        .args(["fuzz", "--oracle", "round-trip", "--timeout", "0", "--json"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("JSON summary");
    assert_eq!(v.get("interrupted").unwrap().as_str(), Some("deadline"));
    assert_eq!(v.get("cases").unwrap().as_u64(), Some(0));
}

#[test]
fn stats_flag_prints_span_tree_and_metrics() {
    let out = Command::new(BIN)
        .args(["verify", "--stats", &example("handshake.ra")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("engine:simplified-reach"), "stderr: {err}");
    assert!(err.contains("reach.run"), "stderr: {err}");
    assert!(
        err.contains("simplified-reach/worlds_explored"),
        "stderr: {err}"
    );
}
