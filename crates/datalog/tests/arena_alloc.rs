//! Allocation regression for the tuple arena: after a `reserve`, the
//! steady-state insert path (`TupleStore::intern` and `lookup`) performs
//! **zero** heap allocations per tuple. This is the property that makes
//! the interned representation worth having — a regression that sneaks a
//! per-derivation `Vec` or clone back in shows up here as a nonzero
//! counter, not as a quiet benchmark slide.
//!
//! The whole integration-test binary runs under a counting allocator
//! (test binaries get their own process, so the shim does not leak into
//! other suites).

use parra_datalog::ast::{Const, PredId};
use parra_datalog::TupleStore;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The tests share one process-global allocation counter, so their
/// measured windows must not overlap: the harness runs tests on
/// parallel threads by default, and another test's (or the harness's
/// own) allocations landing inside a window turns a true zero into a
/// flaky nonzero. Every test holds this lock across its measurement.
static SERIAL: Mutex<()> = Mutex::new(());

/// Counts every allocation and reallocation; frees are irrelevant to the
/// steady-state property.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const TUPLES: u32 = 2_000;
const ARITY: usize = 3;

#[test]
fn steady_state_intern_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap();
    let pred = PredId(0);
    let mut store = TupleStore::new();
    store.reserve(TUPLES as usize, TUPLES as usize * ARITY);

    let before = allocations();
    let mut args = [Const(0); ARITY];
    for i in 0..TUPLES {
        args[0] = Const(i);
        args[1] = Const(i ^ 1);
        args[2] = Const(i % 7);
        let (id, fresh) = store.intern(pred, &args);
        assert!(fresh);
        assert_eq!(store.args(id), &args);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "interning {TUPLES} reserved tuples allocated {} times — the \
         zero-allocation insert path regressed",
        after - before
    );
    assert_eq!(store.len(), TUPLES as usize);
}

#[test]
fn lookup_and_duplicate_intern_allocate_nothing() {
    let _guard = SERIAL.lock().unwrap();
    let pred = PredId(0);
    let mut store = TupleStore::new();
    store.reserve(TUPLES as usize, TUPLES as usize * ARITY);
    let mut args = [Const(0); ARITY];
    for i in 0..TUPLES {
        args[0] = Const(i);
        args[1] = Const(i);
        args[2] = Const(i);
        store.intern(pred, &args);
    }

    let before = allocations();
    for i in 0..TUPLES {
        args[0] = Const(i);
        args[1] = Const(i);
        args[2] = Const(i);
        assert!(store.lookup(pred, &args).is_some(), "tuple {i} vanished");
        let (_, fresh) = store.intern(pred, &args);
        assert!(!fresh, "tuple {i} was re-interned as new");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "lookups and duplicate interns allocated {} times",
        after - before
    );
}

/// Without a reserve the store must still work — growth allocates, but
/// only O(log n) times (amortized doubling), never per tuple.
#[test]
fn unreserved_growth_allocates_logarithmically() {
    let _guard = SERIAL.lock().unwrap();
    let pred = PredId(0);
    let mut store = TupleStore::new();
    let before = allocations();
    let mut args = [Const(0); ARITY];
    for i in 0..TUPLES {
        args[0] = Const(i);
        args[1] = Const(i + 1);
        args[2] = Const(i + 2);
        store.intern(pred, &args);
    }
    let grown = allocations() - before;
    // 4 growable buffers + the hash table, each doubling ~log2(2000) ≈ 11
    // times from small starts: far below one allocation per tuple.
    assert!(
        grown < TUPLES as usize / 10,
        "{grown} allocations for {TUPLES} unreserved interns — growth is \
         no longer amortized"
    );
}
