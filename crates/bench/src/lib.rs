#![warn(missing_docs)]

//! # parra-bench — the experiment harness
//!
//! One function per table/figure of the paper (see `DESIGN.md` §6 for the
//! experiment index). The `experiments` binary prints them all; the
//! std-only micro-benches in `benches/` (driven by [`micro`]) time the
//! same workloads.

pub mod experiments;
pub mod micro;
pub mod table;

pub use experiments::*;
