//! The full Theorem 4.1 pipeline on a tiny system: safety verification →
//! `makeP` Cache-Datalog program → EDB specialization (bodies ≤ 2) →
//! Lemma 4.2 cache-to-linear translation → *linear* Datalog query — with
//! the verdict preserved at every stage.
//!
//! The translation blows up combinatorially (it is a complexity
//! construction), so the system here is minimal: one env store and the
//! query for the stored message.

use parra_core::makep::{DatalogTarget, MakeP, MakePLimits};
use parra_datalog::cache::{cache_schedule, prove_with_cache, verify_schedule};
use parra_datalog::eval::Evaluator;
use parra_datalog::linear::{is_linear, LinearEvaluator};
use parra_datalog::specialize::specialize_edb;
use parra_datalog::translate::cache_to_linear;
use parra_program::builder::SystemBuilder;
use parra_program::system::ParamSystem;
use parra_program::value::Val;
use parra_simplified::state::Budget;

/// env: x := 1 — a single env store, no dis threads (T = 0).
fn tiny_system() -> (ParamSystem, parra_program::ident::VarId) {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let mut env = b.program("env");
    env.store(x, 1);
    let env = env.finish();
    (b.build(env, vec![]), x)
}

/// env: r <- x; assume r == 1 — the goal value is never stored.
fn tiny_safe_system() -> (ParamSystem, parra_program::ident::VarId) {
    let mut b = SystemBuilder::new(2);
    let x = b.var("x");
    let mut env = b.program("env");
    let r = env.reg("r");
    env.load(r, x).assume_eq(r, 1);
    let env = env.finish();
    (b.build(env, vec![]), x)
}

fn pipeline(sys: &ParamSystem, x: parra_program::ident::VarId, expect: bool) {
    let budget = Budget::exact(sys).unwrap();
    let mk = MakeP::new(sys, budget, MakePLimits::default()).unwrap();
    let guesses = mk.guesses().unwrap();
    assert_eq!(guesses.len(), 1, "env-only system has a single guess");
    let (prog, goal) = mk.program(&guesses[0], DatalogTarget::MessageGenerated(x, Val(1)));

    // Stage 1: ordinary evaluation of the makeP program.
    assert_eq!(Evaluator::new(&prog).query(&goal), expect);

    // Stage 2: specialize the timestamp side-conditions away; bodies
    // shrink to at most two (thread + message) atoms.
    let edb = MakeP::edb_predicates(&prog);
    let specialized = specialize_edb(&prog, &edb);
    assert!(specialized.rules().iter().all(|r| r.body.len() <= 2));
    assert_eq!(Evaluator::new(&specialized).query(&goal), expect);

    if expect {
        // Stage 3: Lemma 4.6 — a cache schedule from the derivation.
        let schedule = cache_schedule(&specialized, &goal).expect("derivable");
        assert!(verify_schedule(
            &specialized,
            &goal,
            &schedule,
            schedule.peak
        ));

        // Stage 4: exact Cache-Datalog provability at the schedule's peak.
        assert!(prove_with_cache(&specialized, &goal, schedule.peak));

        // Stage 5: Lemma 4.2 — the cache-bounded query as linear Datalog.
        let t = cache_to_linear(&specialized, &goal, schedule.peak).unwrap();
        assert!(is_linear(&t.program));
        assert!(LinearEvaluator::new(&t.program).query(&t.goal));
    } else {
        // The whole pipeline must remain negative.
        let k = 4;
        assert!(!prove_with_cache(&specialized, &goal, k));
        let t = cache_to_linear(&specialized, &goal, k).unwrap();
        assert!(is_linear(&t.program));
        assert!(!LinearEvaluator::new(&t.program).query(&t.goal));
    }
}

#[test]
fn unsafe_system_through_the_whole_pipeline() {
    let (sys, x) = tiny_system();
    pipeline(&sys, x, true);
}

#[test]
fn safe_system_through_the_whole_pipeline() {
    let (sys, x) = tiny_safe_system();
    pipeline(&sys, x, false);
}
