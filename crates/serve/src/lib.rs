#![warn(missing_docs)]

//! # parra-serve — the long-lived verification service
//!
//! Every `parra verify` invocation pays the full startup cost — parse,
//! classify, goal-transform, query planning — for one verdict. This
//! crate turns the verifier into a *service*: a daemon that holds the
//! warm state (a [`VerifierCache`](parra_core::VerifierCache) of
//! prepared verifiers and a
//! [`SharedPlanCache`](parra_core::SharedPlanCache) of Datalog query
//! plans) across requests, so the marginal cost of a repeated query is
//! the engine run alone.
//!
//! The design splits cleanly in two:
//!
//! * [`proto`] — the line-delimited JSON protocol (version
//!   [`proto::PROTO_VERSION`]): request parsing with stable error codes,
//!   response rendering with a deterministic/volatile field split, and
//!   [`proto::canonical_response`] — the projection under which serve
//!   responses are reproducible byte-for-byte across daemon lifetimes,
//!   client interleavings, and cache states.
//! * [`server`] — transport-agnostic execution: admission control
//!   ([`parra_limits::AdmissionGate`] — bounded in-flight depth plus a
//!   live-heap watermark), per-request budgets anchored at admission,
//!   panic-isolated engine runs, and an optional flight-recorder event
//!   stream with per-request attribution that `parra report` ingests.
//!
//! The `parra serve` subcommand wires [`server::Server`] to a Unix
//! socket or stdio; everything here also runs in-process, which is how
//! the parity/robustness suites, the `serve-roundtrip` fuzz oracle, and
//! `bench_serve` exercise it without managing daemon processes.

pub mod proto;
pub mod server;

pub use proto::{canonical_response, ErrorCode, ProtoError, Request, PROTO_VERSION};
pub use server::{selection_from_label, ServeConfig, Server};
