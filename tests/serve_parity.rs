//! Serve/CLI parity: a verdict must not depend on *how* the verifier is
//! invoked. Every litmus benchmark goes through a spawned `parra serve
//! --stdio` daemon and through the `Verifier` API directly, at 1 and 4
//! worker threads; the canonical response projections (verdicts, notes,
//! witnesses, thread bounds — everything except timing) must be
//! byte-identical, the raced aggregate must match a direct race, and the
//! daemon's `--events-out` stream must carry exactly the deterministic
//! event fields a direct recorded run produces.

use parra::obs::json::{self, ObjWriter, Value};
use parra::obs::{Level, Recorder};
use parra::prelude::*;
use parra::serve::canonical_response;
use parra_litmus::all;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_parra");

fn tmp(name: &str) -> String {
    format!("{}/{name}", env!("CARGO_TARGET_TMPDIR"))
}

/// A `parra serve --stdio` daemon as a child process: one request line
/// in, one response line out.
struct Daemon {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Daemon {
        let mut child = Command::new(BIN)
            .arg("serve")
            .arg("--stdio")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn parra serve --stdio");
        let stdin = child.stdin.take().expect("daemon stdin");
        let stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().expect("flush request");
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("read response");
        assert!(!resp.trim().is_empty(), "daemon closed mid-conversation");
        resp.trim_end().to_string()
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"proto":1,"type":"shutdown"}}"#);
        let mut ack = String::new();
        let _ = self.stdout.read_line(&mut ack);
        drop(self.stdin);
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon exited {status}");
    }
}

/// Renders a direct `run_selection` outcome in the serve response shape,
/// so `canonical_response` projects both sides onto the same bytes.
fn direct_response(name: &str, engine_label: &str, sel: &parra::core::SelectionOutcome) -> String {
    let mut w = ObjWriter::new();
    w.num_field("proto", parra::serve::PROTO_VERSION);
    w.str_field("id", name);
    w.str_field("type", "result");
    w.str_field("file", name);
    w.str_field("engine", engine_label);
    w.str_field("verdict", &sel.verdict.to_string());
    match sel.interrupted {
        Some(r) if !sel.verdict.is_decided() => w.str_field("interrupted", r.as_str()),
        _ => w.raw_field("interrupted", "null"),
    }
    w.raw_field("error", "null");
    let reports: Vec<String> = sel.results.iter().map(|r| r.report.to_json()).collect();
    w.raw_field("reports", &format!("[{}]", reports.join(",")));
    w.raw_field("volatile", "{}");
    w.finish()
}

/// The whole litmus suite through the daemon and through the API, at 1
/// and 4 threads: canonical responses must be byte-identical. Each
/// benchmark is also requested twice so the warm (verifier-cache hit)
/// response is checked against the same direct run — the warm-cache
/// contract says a cache can never change a deterministic field.
#[test]
fn served_responses_match_direct_runs_on_the_whole_suite() {
    for threads in [1usize, 4] {
        let mut daemon = Daemon::spawn(&["--threads", &threads.to_string()]);
        for bench in all() {
            let direct = {
                let options = VerifierOptions {
                    threads,
                    ..Default::default()
                };
                let v = Verifier::new(&bench.system, options)
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
                v.run_selection(&[EngineId::SimplifiedReach], false)
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
            };
            let expected =
                canonical_response(&direct_response(bench.name, "simplified-reach", &direct))
                    .expect("direct response canonicalizes");
            let req = format!(
                r#"{{"proto":1,"id":"{0}","type":"verify","litmus":"{0}"}}"#,
                bench.name
            );
            for pass in ["cold", "warm"] {
                let served = daemon.request(&req);
                let got = canonical_response(&served).unwrap_or_else(|e| {
                    panic!("{} ({pass}): response does not parse: {e}", bench.name)
                });
                assert_eq!(
                    got, expected,
                    "{} (threads={threads}, {pass}): served response diverged from the direct run",
                    bench.name
                );
            }
        }
        daemon.shutdown();
    }
}

/// Raced requests: which engine wins is wall-clock-bound, so losers'
/// race notes and interruption metadata are volatile — but the aggregate
/// verdict is not, and must equal a direct race over the same portfolio.
#[test]
fn raced_serve_verdicts_match_the_direct_race_aggregate() {
    let mut daemon = Daemon::spawn(&["--race", "--threads", "2"]);
    for bench in all() {
        let direct = {
            let options = VerifierOptions {
                threads: 2,
                ..Default::default()
            };
            let v = Verifier::new(&bench.system, options)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            v.run_selection(&EngineId::ALL, true)
                .unwrap_or_else(|e| panic!("{}: race disagreement: {e}", bench.name))
        };
        let served = daemon.request(&format!(
            r#"{{"proto":1,"id":"{0}","type":"verify","litmus":"{0}"}}"#,
            bench.name
        ));
        let v = json::parse(&served).expect("response parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("result"));
        assert_eq!(v.get("engine").and_then(Value::as_str), Some("race"));
        assert_eq!(
            v.get("verdict").and_then(Value::as_str),
            Some(direct.verdict.to_string().as_str()),
            "{}: raced serve verdict diverged from the direct race",
            bench.name
        );
        let reports = v.get("reports").and_then(Value::as_arr).expect("reports");
        assert_eq!(reports.len(), EngineId::ALL.len(), "{}", bench.name);
    }
    daemon.shutdown();
}

/// The daemon's `--events-out` stream must carry, per request, exactly
/// the deterministic event fields (`seq`, `scope`, `kind`, `fields`,
/// and the `file` attribution) that a direct recorded run of the same
/// benchmark renders — the flight-recorder contract, unchanged by the
/// serve transport.
#[test]
fn served_event_stream_matches_a_direct_recorded_run() {
    let picks = ["mp", "sb", "rcu"];
    let path = tmp("serve_parity_events.jsonl");
    let mut daemon = Daemon::spawn(&["--threads", "1", "--events-out", &path]);
    for name in picks {
        daemon.request(&format!(
            r#"{{"proto":1,"id":"{name}","type":"verify","litmus":"{name}"}}"#
        ));
    }
    daemon.shutdown();

    let served = std::fs::read_to_string(&path).expect("event log written");
    assert!(!served.is_empty(), "daemon wrote no events");
    let mut served_lines = served.lines();

    for name in picks {
        let bench = parra_litmus::by_name(name).expect("benchmark exists");
        let rec = Recorder::enabled(Level::Summary);
        let options = VerifierOptions {
            threads: 1,
            ..Default::default()
        };
        let v =
            parra::core::verify::Verifier::new_with_recorder(&bench.system, options, rec.clone())
                .expect("direct verifier");
        v.run_selection(&[EngineId::SimplifiedReach], false)
            .expect("direct run");
        let direct = rec.render_events_jsonl(&[("file", name)]);
        for (i, expect) in direct.lines().enumerate() {
            let got = served_lines
                .next()
                .unwrap_or_else(|| panic!("{name}: event stream ended at event {i}"));
            assert_eq!(
                deterministic_key(got),
                deterministic_key(expect),
                "{name}: event {i} diverged between serve and direct"
            );
        }
    }
    assert_eq!(
        served_lines.next(),
        None,
        "daemon emitted more events than the direct runs"
    );

    // And the stream is a valid flight-recorder log end to end.
    let out = Command::new(BIN)
        .args(["report", "--check-schema", &path])
        .output()
        .expect("report runs");
    assert!(
        out.status.success(),
        "check-schema failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The deterministic projection of one event line: everything except
/// the wall-clock timestamp and the `volatile` section.
fn deterministic_key(line: &str) -> (u64, String, String, Value, String) {
    let v = json::parse(line).expect("event line is valid JSON");
    (
        v.get("seq").unwrap().as_u64().unwrap(),
        v.get("scope").unwrap().as_str().unwrap().to_string(),
        v.get("kind").unwrap().as_str().unwrap().to_string(),
        v.get("fields").unwrap().clone(),
        v.get("file")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
    )
}
