//! Expressions `e(r̄)` over thread-local registers.
//!
//! The paper does not insist on a particular shape of expressions but
//! requires an interpretation `⟦e⟧ : Domⁿ → Dom` respecting the arity. We
//! provide the usual arithmetic/boolean operators; all arithmetic wraps
//! modulo the domain size so the interpretation is total.

use crate::ident::RegId;
use crate::value::{Dom, Val};
use std::fmt;

/// A register valuation `rv ∈ RVal = Reg → Dom`, indexed by [`RegId`].
///
/// # Example
///
/// ```
/// use parra_program::expr::RegVal;
/// use parra_program::ident::RegId;
/// use parra_program::value::Val;
///
/// let mut rv = RegVal::new(2);
/// assert_eq!(rv.get(RegId(0)), Val::INIT);
/// rv.set(RegId(1), Val(3));
/// assert_eq!(rv.get(RegId(1)), Val(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegVal {
    vals: Vec<Val>,
}

impl RegVal {
    /// A valuation with `n_regs` registers, all set to `d_init = 0`.
    pub fn new(n_regs: usize) -> RegVal {
        RegVal {
            vals: vec![Val::INIT; n_regs],
        }
    }

    /// The value of register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range for this valuation.
    pub fn get(&self, r: RegId) -> Val {
        self.vals[r.index()]
    }

    /// Sets register `r` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range for this valuation.
    pub fn set(&mut self, r: RegId, v: Val) {
        self.vals[r.index()] = v;
    }

    /// Returns a copy with register `r` updated to `v` (the paper's
    /// `rv[r ↦ d]`).
    pub fn with(&self, r: RegId, v: Val) -> RegVal {
        let mut rv = self.clone();
        rv.set(r, v);
        rv
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether there are no registers.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Iterates over the register values in register order.
    pub fn iter(&self) -> impl Iterator<Item = Val> + '_ {
        self.vals.iter().copied()
    }
}

impl fmt::Display for RegVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Logical negation: `0 ↦ 1`, non-zero `↦ 0`.
    Not,
}

/// Binary operators. Comparisons and logical operators yield `0`/`1`;
/// arithmetic wraps modulo the domain size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    /// Addition modulo `|Dom|`.
    Add,
    /// Subtraction modulo `|Dom|`.
    Sub,
    /// Multiplication modulo `|Dom|`.
    Mul,
    /// Equality test.
    Eq,
    /// Disequality test.
    Ne,
    /// Strictly-less test.
    Lt,
    /// At-most test.
    Le,
    /// Strictly-greater test.
    Gt,
    /// At-least test.
    Ge,
    /// Logical conjunction (non-zero = true).
    And,
    /// Logical disjunction (non-zero = true).
    Or,
}

impl fmt::Display for Binop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Binop::Add => "+",
            Binop::Sub => "-",
            Binop::Mul => "*",
            Binop::Eq => "==",
            Binop::Ne => "!=",
            Binop::Lt => "<",
            Binop::Le => "<=",
            Binop::Gt => ">",
            Binop::Ge => ">=",
            Binop::And => "&&",
            Binop::Or => "||",
        };
        f.write_str(s)
    }
}

/// An expression `e(r̄)` over registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant `d ∈ Dom`.
    Const(Val),
    /// The current value of a register.
    Reg(RegId),
    /// A unary operation.
    Unop(Unop, Box<Expr>),
    /// A binary operation.
    Binop(Binop, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant expression.
    pub fn val(v: u32) -> Expr {
        Expr::Const(Val(v))
    }

    /// Register read.
    pub fn reg(r: RegId) -> Expr {
        Expr::Reg(r)
    }

    /// The constant `1` (logical truth).
    pub fn truth() -> Expr {
        Expr::val(1)
    }

    /// Logical negation of `self`.
    #[allow(clippy::should_implement_trait)] // DSL naming mirrors the syntax
    pub fn not(self) -> Expr {
        Expr::Unop(Unop::Not, Box::new(self))
    }

    /// Builds a binary operation node.
    pub fn binop(op: Binop, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binop(Binop::Eq, self, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::binop(Binop::Ne, self, rhs)
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binop(Binop::And, self, rhs)
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binop(Binop::Or, self, rhs)
    }

    /// `self + rhs` (modulo the domain size).
    #[allow(clippy::should_implement_trait)] // DSL naming mirrors the syntax
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binop(Binop::Add, self, rhs)
    }

    /// Evaluates the expression under register valuation `rv`; the
    /// interpretation `⟦e⟧` of the paper.
    ///
    /// All intermediate results are wrapped into `dom`, so the result is
    /// always a domain value.
    ///
    /// # Panics
    ///
    /// Panics if the expression mentions a register outside `rv`.
    pub fn eval(&self, rv: &RegVal, dom: Dom) -> Val {
        // Boolean results are wrapped into the domain too, so the
        // interpretation is total even for the degenerate one-value domain.
        let b = |v: bool| dom.wrap(v as u64);
        match self {
            Expr::Const(v) => dom.wrap(v.0 as u64),
            Expr::Reg(r) => rv.get(*r),
            Expr::Unop(Unop::Not, e) => b(!e.eval(rv, dom).as_bool()),
            Expr::Binop(op, a, b2) => {
                let x = a.eval(rv, dom);
                let y = b2.eval(rv, dom);
                match op {
                    Binop::Add => dom.wrap(x.0 as u64 + y.0 as u64),
                    Binop::Sub => {
                        let m = dom.size() as u64;
                        dom.wrap(x.0 as u64 + m - (y.0 as u64 % m))
                    }
                    Binop::Mul => dom.wrap(x.0 as u64 * y.0 as u64),
                    Binop::Eq => b(x == y),
                    Binop::Ne => b(x != y),
                    Binop::Lt => b(x < y),
                    Binop::Le => b(x <= y),
                    Binop::Gt => b(x > y),
                    Binop::Ge => b(x >= y),
                    Binop::And => b(x.as_bool() && y.as_bool()),
                    Binop::Or => b(x.as_bool() || y.as_bool()),
                }
            }
        }
    }

    /// All registers mentioned by the expression (its arity support `r̄`).
    pub fn registers(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        self.collect_registers(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_registers(&self, out: &mut Vec<RegId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => out.push(*r),
            Expr::Unop(_, e) => e.collect_registers(out),
            Expr::Binop(_, a, b) => {
                a.collect_registers(out);
                b.collect_registers(out);
            }
        }
    }

    /// The maximal register index mentioned, if any. Used to validate that a
    /// program declares enough registers.
    pub fn max_register(&self) -> Option<RegId> {
        self.registers().into_iter().max()
    }
}

impl From<Val> for Expr {
    fn from(v: Val) -> Self {
        Expr::Const(v)
    }
}

impl From<RegId> for Expr {
    fn from(r: RegId) -> Self {
        Expr::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(vals: &[u32]) -> RegVal {
        let mut r = RegVal::new(vals.len());
        for (i, &v) in vals.iter().enumerate() {
            r.set(RegId(i as u32), Val(v));
        }
        r
    }

    #[test]
    fn constants_wrap_into_domain() {
        let dom = Dom::new(3);
        assert_eq!(Expr::val(7).eval(&RegVal::new(0), dom), Val(1));
    }

    #[test]
    fn register_reads() {
        let dom = Dom::new(4);
        let e = Expr::reg(RegId(1));
        assert_eq!(e.eval(&rv(&[0, 3]), dom), Val(3));
    }

    #[test]
    fn arithmetic_is_modular() {
        let dom = Dom::new(4);
        let v = rv(&[3, 2]);
        let add = Expr::binop(Binop::Add, Expr::reg(RegId(0)), Expr::reg(RegId(1)));
        let sub = Expr::binop(Binop::Sub, Expr::reg(RegId(1)), Expr::reg(RegId(0)));
        let mul = Expr::binop(Binop::Mul, Expr::reg(RegId(0)), Expr::reg(RegId(1)));
        assert_eq!(add.eval(&v, dom), Val(1)); // 3+2 = 5 ≡ 1 (mod 4)
        assert_eq!(sub.eval(&v, dom), Val(3)); // 2-3 = -1 ≡ 3 (mod 4)
        assert_eq!(mul.eval(&v, dom), Val(2)); // 6 ≡ 2 (mod 4)
    }

    #[test]
    fn comparisons_and_logic() {
        let dom = Dom::new(4);
        let v = rv(&[1, 2]);
        let a = Expr::reg(RegId(0));
        let b = Expr::reg(RegId(1));
        assert_eq!(a.clone().eq(b.clone()).eval(&v, dom), Val(0));
        assert_eq!(a.clone().ne(b.clone()).eval(&v, dom), Val(1));
        assert_eq!(
            Expr::binop(Binop::Lt, a.clone(), b.clone()).eval(&v, dom),
            Val(1)
        );
        assert_eq!(
            Expr::binop(Binop::Ge, a.clone(), b.clone()).eval(&v, dom),
            Val(0)
        );
        assert_eq!(a.clone().and(b.clone()).eval(&v, dom), Val(1));
        assert_eq!(Expr::val(0).or(b).eval(&v, dom), Val(1));
        assert_eq!(a.not().eval(&v, dom), Val(0));
        assert_eq!(Expr::val(0).not().eval(&v, dom), Val(1));
    }

    #[test]
    fn registers_are_collected_sorted_dedup() {
        let e = Expr::reg(RegId(2))
            .add(Expr::reg(RegId(0)))
            .and(Expr::reg(RegId(2)));
        assert_eq!(e.registers(), vec![RegId(0), RegId(2)]);
        assert_eq!(e.max_register(), Some(RegId(2)));
        assert_eq!(Expr::val(1).max_register(), None);
    }

    #[test]
    fn regval_with_is_persistent() {
        let v = rv(&[0, 0]);
        let w = v.with(RegId(0), Val(1));
        assert_eq!(v.get(RegId(0)), Val(0));
        assert_eq!(w.get(RegId(0)), Val(1));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn regval_display() {
        assert_eq!(rv(&[1, 0, 2]).to_string(), "[1,0,2]");
    }
}
