//! Serve warm-cache benchmark and regression gate.
//!
//! Runs the whole litmus suite through an in-process `parra serve`
//! server twice: a cold pass (every request prepares its verifier and
//! plans its Datalog queries) and a warm pass against the same server
//! (every request must hit the shared prepared-verifier cache and the
//! shared plan cache). The serve layer's warm-cache contract is enforced
//! structurally — every warm request is a cache hit and its reports
//! carry **zero** `plan` phase time, i.e. warm requests skip parse/plan
//! entirely — and the cold wall-clock is kept under the shared
//! 25%-and-20ms regression rule.
//!
//! ```text
//! bench_serve [--out FILE]        # measure and write FILE (default BENCH_serve.json)
//! bench_serve --check BASELINE    # measure and fail (exit 1) on regression
//! ```

use parra_core::verify::{EngineId, VerifierOptions};
use parra_obs::json::{self, ObjWriter, Value};
use parra_serve::{ServeConfig, Server};
use std::process::ExitCode;

/// Relative wall-clock tolerance of the `--check` gate.
const TOLERANCE: f64 = 1.25;

/// Absolute wall-clock floor (µs) below which drift is timer noise.
const FLOOR_US: u64 = 20_000;

#[derive(Clone, Copy)]
struct Measurement {
    requests: u64,
    cold_us: u64,
    warm_us: u64,
    warm_hit_permille: u64,
    cold_plan_us: u64,
    warm_plan_us: u64,
}

/// Total `plan` phase time (µs) across a response's engine reports;
/// panics on error responses — the litmus suite must serve cleanly.
fn plan_us_of(resp: &str) -> u64 {
    let v = json::parse(resp).expect("serve response parses");
    assert!(
        v.get("error").map(Value::is_null).unwrap_or(false),
        "serve error: {resp}"
    );
    v.get("reports")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|r| {
            r.get("phases")
                .and_then(|p| p.get("plan"))
                .and_then(Value::as_u64)
        })
        .sum()
}

fn measure() -> Measurement {
    // Cache Datalog so every cold report carries a real `plan` phase —
    // the phase whose disappearance on warm hits is the gated contract.
    // The null events sink turns request recording on (phase timers are
    // no-ops under a disabled recorder) without I/O in the timed path.
    let server = Server::new(ServeConfig {
        options: VerifierOptions {
            threads: 1,
            ..Default::default()
        },
        engine: EngineId::CacheDatalog.to_string(),
        ..Default::default()
    })
    .with_events_sink(Box::new(std::io::sink()));
    let requests: Vec<String> = parra_litmus::all()
        .iter()
        .map(|b| {
            format!(
                r#"{{"proto":1,"id":"{0}","type":"verify","litmus":"{0}"}}"#,
                b.name
            )
        })
        .collect();
    let sweep = |label: &str| {
        let start = std::time::Instant::now();
        let plan_us: u64 = requests
            .iter()
            .map(|r| {
                plan_us_of(
                    &server
                        .process_line(r)
                        .unwrap_or_else(|| panic!("{label} sweep: no response")),
                )
            })
            .sum();
        (start.elapsed().as_micros() as u64, plan_us)
    };
    let (cold_us, cold_plan_us) = sweep("cold");
    let (hits_after_cold, misses) = server.cache_counters();
    assert_eq!(hits_after_cold, 0, "cold sweep must miss every entry");
    assert_eq!(misses, requests.len() as u64);
    let (warm_us, warm_plan_us) = sweep("warm");
    let (hits, _) = server.cache_counters();
    let warm_hit_permille = hits
        .saturating_mul(1000)
        .checked_div(requests.len() as u64)
        .unwrap_or(0);
    Measurement {
        requests: requests.len() as u64,
        cold_us,
        warm_us,
        warm_hit_permille,
        cold_plan_us,
        warm_plan_us,
    }
}

fn to_json(m: &Measurement) -> String {
    let mut w = ObjWriter::new();
    w.num_field("requests", m.requests);
    w.num_field("cold_us", m.cold_us);
    w.num_field("warm_us", m.warm_us);
    w.num_field("warm_hit_permille", m.warm_hit_permille);
    w.num_field("cold_plan_us", m.cold_plan_us);
    w.num_field("warm_plan_us", m.warm_plan_us);
    let mut buf = w.finish();
    buf.push('\n');
    buf
}

/// Whether `current` wall-clock regresses past `base` under the
/// 25%-and-20ms rule.
fn regresses(base: u64, current: u64) -> bool {
    current as f64 > base as f64 * TOLERANCE && current > base + FLOOR_US
}

/// The warm-cache contract, independent of any baseline: every warm
/// request hits the verifier cache, warm reports carry no plan time, and
/// the instrument itself is live (cold plans took measurable time).
fn structural_failures(m: &Measurement) -> Vec<String> {
    let mut failures = Vec::new();
    if m.warm_hit_permille < 1000 {
        failures.push(format!(
            "warm sweep hit the verifier cache on only {}‰ of requests (contract: 1000‰)",
            m.warm_hit_permille
        ));
    }
    if m.warm_plan_us != 0 {
        failures.push(format!(
            "warm reports carry {} µs of `plan` phase (contract: 0 — warm requests skip planning)",
            m.warm_plan_us
        ));
    }
    if m.cold_plan_us == 0 {
        failures.push(
            "cold sweep recorded no `plan` phase at all — the gate's instrument is broken".into(),
        );
    }
    failures
}

fn check(m: &Measurement, baseline_path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let root = json::parse(&text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let base_cold = root
        .get("cold_us")
        .and_then(Value::as_u64)
        .ok_or("baseline missing numeric `cold_us`")?;
    let mut failures = structural_failures(m);
    if regresses(base_cold, m.cold_us) {
        failures.push(format!(
            "cold sweep {} µs vs baseline {} µs (>{:.0}% and >{} ms floor)",
            m.cold_us,
            base_cold,
            (TOLERANCE - 1.0) * 100.0,
            FLOOR_US / 1000
        ));
    }
    println!(
        "serve: {} requests, cold {:>9} µs (baseline {:>9}), warm {:>9} µs, \
         warm hits {}‰, warm plan {} µs {}",
        m.requests,
        m.cold_us,
        base_cold,
        m.warm_us,
        m.warm_hit_permille,
        m.warm_plan_us,
        if failures.is_empty() { "ok" } else { "FAILED" }
    );
    if failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("serve bench regression:");
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(ExitCode::from(1))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let m = measure();
    match flag("--check") {
        Some(baseline) => match check(&m, &baseline) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("bench_serve: {msg}");
                ExitCode::from(64)
            }
        },
        None => {
            let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
            let jsonv = to_json(&m);
            if let Err(e) = std::fs::write(&out, &jsonv) {
                eprintln!("bench_serve: cannot write `{out}`: {e}");
                return ExitCode::from(64);
            }
            println!(
                "serve: {} requests, cold {} µs ({} µs planning), warm {} µs \
                 ({}‰ cache hits, {} µs planning)",
                m.requests,
                m.cold_us,
                m.cold_plan_us,
                m.warm_us,
                m.warm_hit_permille,
                m.warm_plan_us
            );
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_rule_needs_both_ratio_and_floor() {
        assert!(!regresses(1_000, 10_000)); // tiny baseline: under the floor
        assert!(!regresses(100_000, 119_000)); // under 25%
        assert!(regresses(100_000, 126_000)); // over both
    }

    #[test]
    fn json_exposes_the_gate_fields() {
        let m = Measurement {
            requests: 26,
            cold_us: 500_000,
            warm_us: 50_000,
            warm_hit_permille: 1000,
            cold_plan_us: 30_000,
            warm_plan_us: 0,
        };
        let v = json::parse(to_json(&m).trim()).unwrap();
        assert_eq!(v.get("cold_us").and_then(Value::as_u64), Some(500_000));
        assert_eq!(
            v.get("warm_hit_permille").and_then(Value::as_u64),
            Some(1000)
        );
        assert_eq!(v.get("warm_plan_us").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn structural_gate_enforces_the_warm_cache_contract() {
        let ok = Measurement {
            requests: 26,
            cold_us: 1,
            warm_us: 1,
            warm_hit_permille: 1000,
            cold_plan_us: 10,
            warm_plan_us: 0,
        };
        assert!(structural_failures(&ok).is_empty());
        let misses = Measurement {
            warm_hit_permille: 960,
            ..ok
        };
        assert_eq!(structural_failures(&misses).len(), 1);
        let replans = Measurement {
            warm_plan_us: 5,
            ..ok
        };
        assert_eq!(structural_failures(&replans).len(), 1);
        let dead_instrument = Measurement {
            cold_plan_us: 0,
            ..ok
        };
        assert_eq!(structural_failures(&dead_instrument).len(), 1);
    }
}
