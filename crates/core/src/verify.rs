//! The verifier facade: classification, goal transformation, engine
//! orchestration, statistics, and the §4.3 thread-count bound.
//!
//! The engine-specific decision procedures live behind the
//! [`Engine`](crate::engine::Engine) trait in [`crate::engine`]; this
//! module owns the shared plumbing every run goes through — recorder
//! scoping, resource governance, run-scoped cancellation, panic
//! containment, and the [`RunReport`].

use crate::makep::{MakePError, MakePLimits};
use parra_datalog::plan::PlanCache;
use parra_limits::{CancelToken, InterruptReason, ResourceBudget};
use parra_obs::json::ObjWriter;
use parra_obs::{GaugeSnapshot, HistSnapshot, Phase, PhaseTimer, Recorder};
use parra_program::classify::{Complexity, SystemClass};
use parra_program::system::ParamSystem;
use parra_program::transform;
use parra_ra::explore::{ExploreLimits, ExploreOutcome, Explorer, Target};
use parra_ra::Instance;
use parra_search::Threads;
use parra_simplified::reach::ReachLimits;
use parra_simplified::state::Budget;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A [`PlanCache`] shared across verifiers — the warm-cache backbone of
/// long-lived hosts like `parra serve`: every Datalog engine run of every
/// request plans against the same cache, so a query shape planned once is
/// never re-planned, whichever request (or guess) meets it next.
///
/// Cloning is shallow ([`Arc`]); the shared cache is protected by a
/// [`Mutex`] exactly like the per-run local caches the engines fall back
/// to when no shared cache is configured.
#[derive(Clone, Default)]
pub struct SharedPlanCache(Arc<Mutex<PlanCache>>);

impl SharedPlanCache {
    /// An empty shared cache.
    pub fn new() -> SharedPlanCache {
        SharedPlanCache::default()
    }

    /// The underlying lock, in the shape the engine fleet consumes.
    pub fn as_mutex(&self) -> &Mutex<PlanCache> {
        &self.0
    }
}

impl fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // PlanCache itself is opaque (and may be locked); identity plus
        // sharing degree is the useful part.
        write!(f, "SharedPlanCache(refs={})", Arc::strong_count(&self.0))
    }
}

/// Which decision procedure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineId {
    /// The direct search on the simplified semantics (Section 3) —
    /// the default: exact for the decidable class.
    SimplifiedReach,
    /// The `makeP` Datalog encoding (Section 4): enumerate guesses,
    /// evaluate queries. Exact for the decidable class; also reports the
    /// cache-schedule peak (Lemmas 4.4/4.6).
    CacheDatalog,
    /// The `makeP` encoding with the full certificate route: the winning
    /// guess's derivation is turned into a Lemma 4.6 cache schedule,
    /// replayed under the `⊢ₖ` Cache semantics, and — where the program
    /// falls in the ≤2-atom-body fragment — cross-checked through the
    /// Lemma 4.2 cache→linear translation. Same verdicts as
    /// [`EngineId::CacheDatalog`], plus the certification notes and an
    /// inference-step witness.
    LinearDatalog,
    /// Bounded concrete-RA exploration of instances — an
    /// under-approximation: can prove `Unsafe`, never `Safe`.
    BoundedConcrete,
}

impl EngineId {
    /// Every engine, in the canonical portfolio order (exact engines
    /// first). This is the `--all-engines` selection and the default
    /// `--race` field.
    pub const ALL: [EngineId; 4] = [
        EngineId::SimplifiedReach,
        EngineId::CacheDatalog,
        EngineId::LinearDatalog,
        EngineId::BoundedConcrete,
    ];
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineId::SimplifiedReach => "simplified-reach",
            EngineId::CacheDatalog => "cache-datalog",
            EngineId::LinearDatalog => "linear-datalog",
            EngineId::BoundedConcrete => "bounded-concrete",
        };
        f.write_str(s)
    }
}

/// The verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No instance of any size reaches an assertion violation.
    Safe,
    /// Some instance reaches a violation.
    Unsafe,
    /// The engine could not decide (bounds hit, or an inherently
    /// incomplete engine found nothing).
    Unknown,
    /// The resource governor stopped the run (deadline, memory budget, or
    /// cancellation) before a verdict. Semantically a flavor of
    /// [`Unknown`](Verdict::Unknown) — it aggregates identically and maps
    /// to the same exit code — but it carries the reason and signals that
    /// the partial statistics describe an unfinished search.
    Interrupted(InterruptReason),
}

impl Verdict {
    /// Whether this verdict decides the system (`Safe` or `Unsafe`).
    pub fn is_decided(self) -> bool {
        matches!(self, Verdict::Safe | Verdict::Unsafe)
    }

    /// The interruption reason, when the run was cut short.
    pub fn interrupt_reason(self) -> Option<InterruptReason> {
        match self {
            Verdict::Interrupted(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => f.write_str("SAFE"),
            Verdict::Unsafe => f.write_str("UNSAFE"),
            Verdict::Unknown => f.write_str("UNKNOWN"),
            Verdict::Interrupted(r) => write!(f, "INTERRUPTED({r})"),
        }
    }
}

/// Statistics of a run (fields are engine-dependent; unused ones are 0).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Saturated abstract states (SimplifiedReach) or canonical concrete
    /// states (BoundedConcrete).
    pub states: usize,
    /// Pre-closure worlds explored (SimplifiedReach).
    pub worlds: usize,
    /// Peak env-message set size (SimplifiedReach).
    pub peak_env_msgs: usize,
    /// makeP guesses evaluated (CacheDatalog).
    pub guesses: usize,
    /// Ground atoms derived in the successful (or largest) Datalog run.
    pub datalog_atoms: usize,
    /// Rules in the emitted Datalog program (CacheDatalog).
    pub datalog_rules: usize,
    /// Cache-schedule peak over intensional atoms (CacheDatalog, unsafe
    /// runs) — the empirical Lemma 4.4 number.
    pub cache_peak: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// The result of a verification.
#[derive(Debug, Clone)]
pub struct VerificationResult {
    /// The verdict.
    pub verdict: Verdict,
    /// The engine that produced it.
    pub engine: EngineId,
    /// Run statistics.
    pub stats: Stats,
    /// For `Unsafe` via [`EngineId::SimplifiedReach`]: the §4.3 bound on the
    /// number of `env` threads sufficient to exhibit the bug.
    pub env_thread_bound: Option<u64>,
    /// For `Unsafe` via [`EngineId::SimplifiedReach`]: a human-readable
    /// witness (the dis steps between saturations).
    pub witness_lines: Vec<String>,
    /// Notes (approximations applied, limits hit).
    pub notes: Vec<String>,
    /// The structured report superseding the flat [`Stats`] view (which is
    /// kept for compatibility). Populated by [`Verifier::run`].
    pub report: RunReport,
}

/// The structured report of one engine run: the legacy [`Stats`] plus
/// every metric the engine emitted through its [`Recorder`] scope, a
/// cache-occupancy time series (CacheDatalog), and the witness/notes.
/// Renders to JSON with [`RunReport::to_json`] (the CLI's `--json`).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The engine that ran.
    pub engine: EngineId,
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock duration.
    pub duration: Duration,
    /// The flat compatibility view.
    pub stats: Stats,
    /// Counter deltas attributed to this run (name without the engine
    /// prefix, value). `phase/…_us` counters are split out into
    /// [`phases`](RunReport::phases).
    pub counters: Vec<(String, u64)>,
    /// Phase-attributed time, `(phase name, µs)` — from the engines'
    /// [`PhaseTimer`]s. These are CPU-time-like sums: phases timed inside
    /// a worker fleet can exceed the run's wall-clock duration.
    pub phases: Vec<(String, u64)>,
    /// Gauges under this engine's scope (name, snapshot).
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// Histograms under this engine's scope (name, snapshot).
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Running intensional-cache occupancy after each schedule step of the
    /// successful guess (CacheDatalog, unsafe runs) — the Lemma 4.6 series.
    pub cache_occupancy: Vec<u64>,
    /// The §4.3 env-thread bound, when derived.
    pub env_thread_bound: Option<u64>,
    /// Witness lines, when unsafe.
    pub witness: Vec<String>,
    /// Notes.
    pub notes: Vec<String>,
    /// Why the governor stopped the run, when it did (mirrors
    /// [`Verdict::Interrupted`] for JSON consumers).
    pub interrupted: Option<InterruptReason>,
    /// The concrete-RA interleaving reproducing an `Unsafe` verdict, when
    /// concretization was requested and succeeded.
    pub concrete: Option<ConcreteWitness>,
}

impl RunReport {
    /// An empty report for `engine` (placeholder until [`Verifier::run`]
    /// fills it in).
    pub fn empty(engine: EngineId) -> RunReport {
        RunReport {
            engine,
            verdict: Verdict::Unknown,
            duration: Duration::ZERO,
            stats: Stats::default(),
            counters: Vec::new(),
            phases: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            cache_occupancy: Vec::new(),
            env_thread_bound: None,
            witness: Vec::new(),
            notes: Vec::new(),
            interrupted: None,
            concrete: None,
        }
    }

    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.str_field("engine", &self.engine.to_string());
        w.str_field("verdict", &self.verdict.to_string());
        w.num_field("duration_us", self.duration.as_micros() as u64);
        let mut stats = ObjWriter::new();
        stats.num_field("states", self.stats.states as u64);
        stats.num_field("worlds", self.stats.worlds as u64);
        stats.num_field("peak_env_msgs", self.stats.peak_env_msgs as u64);
        stats.num_field("guesses", self.stats.guesses as u64);
        stats.num_field("datalog_atoms", self.stats.datalog_atoms as u64);
        stats.num_field("datalog_rules", self.stats.datalog_rules as u64);
        stats.num_field("cache_peak", self.stats.cache_peak as u64);
        stats.num_field("duration_us", self.stats.duration.as_micros() as u64);
        w.raw_field("stats", &stats.finish());
        let mut counters = ObjWriter::new();
        for (name, v) in &self.counters {
            counters.num_field(name, *v);
        }
        w.raw_field("counters", &counters.finish());
        let mut phases = ObjWriter::new();
        for (name, v) in &self.phases {
            phases.num_field(name, *v);
        }
        w.raw_field("phases", &phases.finish());
        let mut gauges = ObjWriter::new();
        for (name, g) in &self.gauges {
            let mut one = ObjWriter::new();
            one.num_field("value", g.value);
            one.num_field("peak", g.peak);
            gauges.raw_field(name, &one.finish());
        }
        w.raw_field("gauges", &gauges.finish());
        let mut hists = ObjWriter::new();
        for (name, h) in &self.histograms {
            let mut one = ObjWriter::new();
            one.num_field("count", h.count);
            one.num_field("sum", h.sum);
            one.num_field("max", h.max);
            one.raw_field("mean", &format!("{:.3}", h.mean()));
            one.num_field("p50", h.p50());
            one.num_field("p90", h.p90());
            one.num_field("p99", h.p99());
            hists.raw_field(name, &one.finish());
        }
        w.raw_field("histograms", &hists.finish());
        w.num_arr_field("cache_occupancy", &self.cache_occupancy);
        match self.env_thread_bound {
            Some(b) => w.num_field("env_thread_bound", b),
            None => w.raw_field("env_thread_bound", "null"),
        }
        w.str_arr_field("witness", &self.witness);
        w.str_arr_field("notes", &self.notes);
        match self.interrupted {
            Some(r) => w.str_field("interrupted", r.as_str()),
            None => w.raw_field("interrupted", "null"),
        }
        match &self.concrete {
            Some(c) => {
                let mut one = ObjWriter::new();
                one.num_field("n_env", c.n_env as u64);
                one.str_arr_field("steps", &c.steps);
                w.raw_field("concrete_witness", &one.finish());
            }
            None => w.raw_field("concrete_witness", "null"),
        }
        w.finish()
    }
}

/// Options controlling verification.
#[derive(Debug, Clone)]
pub struct VerifierOptions {
    /// Unroll `dis` loops to this depth before verification (the
    /// bounded-model-checking usage of Section 4); `None` requires `dis`
    /// to be loop-free already.
    pub unroll_dis: Option<usize>,
    /// Limits for the simplified-semantics search.
    pub reach_limits: ReachLimits,
    /// Limits for makeP.
    pub makep_limits: MakePLimits,
    /// Max `env` threads and exploration limits for the concrete baseline.
    pub concrete_max_env: usize,
    /// Concrete exploration limits.
    pub concrete_limits: ExploreLimits,
    /// Worker threads for the state-space engines and the Datalog guess
    /// fleet. Reports are identical for every value (the searches commit
    /// results in a deterministic merge order); `1` is the sequential
    /// legacy path. Defaults to [`Threads::resolve`]`(None)`:
    /// `PARRA_THREADS` if set, else the machine's parallelism.
    pub threads: usize,
    /// Wall-clock budget per engine run (each engine under `--all-engines`
    /// gets the full timeout); `None` is unlimited. An exhausted budget
    /// yields [`Verdict::Interrupted`] with partial statistics.
    pub timeout: Option<Duration>,
    /// Absolute wall-clock deadline, taking precedence over
    /// [`timeout`](VerifierOptions::timeout) when set. Long-lived hosts
    /// (`parra serve`) anchor a per-request timeout at *admission* —
    /// `Instant::now() + timeout` when the request is accepted — so the
    /// budget window cannot silently shrink between admission and the
    /// engine actually starting, and every engine of an `--all-engines`
    /// request shares one request-level envelope.
    pub deadline_at: Option<Instant>,
    /// Approximate live-heap budget in bytes per engine run; `None` is
    /// unlimited. Enforced only when the process installed
    /// `parra_limits::TrackingAlloc` as its global allocator (the `parra`
    /// binary does).
    pub memory_budget: Option<usize>,
    /// Cooperative cancellation shared by every engine run of this
    /// verifier.
    pub cancel: CancelToken,
    /// A query-plan cache shared *across* verifiers; `None` keeps the
    /// engines' per-run local caches. Purely an amortization: plans are
    /// deterministic functions of the emitted program, so sharing never
    /// changes a verdict, a note, or a deterministic event field.
    pub plan_cache: Option<SharedPlanCache>,
    /// Test hook: panic inside the named engine's run, to exercise
    /// [`Verifier::run_isolated`]'s panic containment without an
    /// artificially broken system.
    pub fail_point_panic: Option<EngineId>,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            unroll_dis: None,
            reach_limits: ReachLimits::default(),
            makep_limits: MakePLimits::default(),
            concrete_max_env: 4,
            concrete_limits: ExploreLimits::default(),
            threads: Threads::resolve(None).get(),
            timeout: None,
            deadline_at: None,
            memory_budget: None,
            cancel: CancelToken::new(),
            plan_cache: None,
            fail_point_panic: None,
        }
    }
}

impl VerifierOptions {
    /// A stable fingerprint of the *verdict-relevant* options — the part
    /// of this struct that can change what a completed run answers, as
    /// opposed to whether it completes:
    ///
    /// * included: unroll depth and every engine search limit (a larger
    ///   limit can turn `Unknown` into `Safe`/`Unsafe`, so records taken
    ///   under different limits are different experiments);
    /// * excluded: `threads` (verdicts are thread-count-deterministic by
    ///   the engines' merge-order contract), `timeout`/`deadline_at`/
    ///   `memory_budget` (exhaustion degrades to `Interrupted`, which
    ///   campaign resumes re-run anyway), `plan_cache` (plans are
    ///   deterministic; sharing is invisible to verdicts), and the
    ///   `cancel`/`fail_point_panic` plumbing.
    ///
    /// The campaign layer keys its experiment store on this string; its
    /// format is stable within one store version.
    pub fn fingerprint(&self) -> String {
        format!(
            "unroll={:?};reach={},{},{};makep={},{};concrete={},{},{}",
            self.unroll_dis,
            self.reach_limits.max_states,
            self.reach_limits.max_env_size,
            self.reach_limits.max_worlds,
            self.makep_limits.max_guesses,
            self.makep_limits.max_env_states,
            self.concrete_max_env,
            self.concrete_limits.max_depth,
            self.concrete_limits.max_states,
        )
    }
}

/// Errors preparing a verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// The system is outside every supported class (env uses CAS).
    Undecidable(Complexity),
    /// `dis` threads have loops and no unroll bound was given.
    NeedsUnrolling,
    /// makeP rejected the system.
    MakeP(MakePError),
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifierError::Undecidable(c) => write!(
                f,
                "system class is {c}: parameterized safety verification is not \
                 supported (Theorem 1.1)"
            ),
            VerifierError::NeedsUnrolling => write!(
                f,
                "dis threads have loops; pass VerifierOptions::unroll_dis for \
                 bounded model checking"
            ),
            VerifierError::MakeP(e) => write!(f, "makeP: {e}"),
        }
    }
}

impl std::error::Error for VerifierError {}

/// Best-effort rendering of a panic payload (`&str` and `String` cover
/// every `panic!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The verifier: owns the (goal-transformed) system and dispatches engines.
#[derive(Debug, Clone)]
pub struct Verifier {
    original_class: SystemClass,
    pub(crate) goal: transform::GoalSystem,
    pub(crate) budget: Budget,
    pub(crate) options: VerifierOptions,
    notes: Vec<String>,
    pub(crate) rec: Recorder,
    /// Time spent in the preparation (classify/unroll/goal-transform)
    /// phase. Preparation is shared by every engine run of this
    /// verifier, so it is attributed as the `plan` phase exactly once —
    /// to the first report — rather than re-counted per run.
    plan_us: u64,
    /// Whether some run already claimed the `plan` phase. Shared across
    /// clones: a cloned verifier reuses the same preparation work.
    plan_attributed: Arc<AtomicBool>,
}

impl Verifier {
    /// Prepares a verifier: classifies the system, unrolls `dis` loops if
    /// requested, and applies the `assert false ↦ x# := d#` goal
    /// transformation (Section 4.1).
    ///
    /// # Errors
    ///
    /// See [`VerifierError`].
    pub fn new(sys: &ParamSystem, options: VerifierOptions) -> Result<Verifier, VerifierError> {
        Verifier::new_with_recorder(sys, options, Recorder::disabled())
    }

    /// [`Verifier::new`] with an observability recorder: the preparation
    /// phases get `classify` / `transform` spans, and every engine run
    /// records its metrics under a `{engine}/` scope.
    pub fn new_with_recorder(
        sys: &ParamSystem,
        options: VerifierOptions,
        rec: Recorder,
    ) -> Result<Verifier, VerifierError> {
        let phase_timer = PhaseTimer::new(&rec);
        let plan_guard = phase_timer.start(Phase::Plan);
        let original_class = {
            let _span = rec.span("classify");
            SystemClass::of(sys)
        };
        if !original_class.env.nocas {
            return Err(VerifierError::Undecidable(original_class.complexity()));
        }
        let span = rec.span("transform");
        let mut notes = Vec::new();
        let sys = if original_class.dis.iter().all(|d| d.acyc) {
            sys.clone()
        } else {
            match options.unroll_dis {
                Some(bound) => {
                    notes.push(format!(
                        "dis loops unrolled to depth {bound}: Safe verdicts are \
                         relative to the unrolling (bounded model checking)"
                    ));
                    transform::unroll_dis(sys, bound)
                }
                None => return Err(VerifierError::NeedsUnrolling),
            }
        };
        let goal = transform::assert_to_goal(&sys);
        let budget = Budget::exact(&goal.system).expect("dis is loop-free after unrolling");
        drop(span);
        drop(plan_guard);
        let plan_us = phase_timer.get_us(Phase::Plan);
        Ok(Verifier {
            original_class,
            goal,
            budget,
            options,
            notes,
            rec,
            plan_us,
            plan_attributed: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Replaces the recorder (builder style).
    pub fn with_recorder(mut self, rec: Recorder) -> Verifier {
        self.rec = rec;
        self
    }

    /// A request-scoped clone of this verifier: the prepared system (the
    /// classify/unroll/goal-transform work) is reused, while the options
    /// and recorder are replaced with the new request's. This is the warm
    /// path of a long-lived host: a cache hit skips preparation entirely,
    /// so the clone carries *no* `plan` phase — `plan_us` stays with the
    /// preparing verifier and the shared `plan_attributed` flag keeps the
    /// phase claimed exactly once across all clones.
    pub fn rescoped(&self, options: VerifierOptions, rec: Recorder) -> Verifier {
        let mut v = self.clone();
        v.options = options;
        v.rec = rec;
        v
    }

    /// The class of the original system.
    pub fn class(&self) -> &SystemClass {
        &self.original_class
    }

    /// The goal-transformed system the engines run on.
    pub fn goal_system(&self) -> &ParamSystem {
        &self.goal.system
    }

    /// The timestamp budget in use.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The deadline/memory half of a run's resource budget — without a
    /// cancellation token; callers attach a run- or race-scoped child of
    /// [`VerifierOptions::cancel`]. Built fresh per sequential run so
    /// the wall-clock deadline starts when the engine does (under
    /// `--all-engines`, each engine gets the full timeout); built once
    /// per race so `--timeout` bounds the race as a whole.
    pub(crate) fn base_budget(&self) -> ResourceBudget {
        let mut gov = ResourceBudget::unlimited();
        if let Some(at) = self.options.deadline_at {
            // An admission-anchored absolute deadline wins over the
            // relative timeout: the host already fixed the window.
            gov = gov.with_deadline_at(at);
        } else if let Some(t) = self.options.timeout {
            gov = gov.with_deadline(t);
        }
        if let Some(m) = self.options.memory_budget {
            gov = gov.with_memory_limit(m);
        }
        gov
    }

    /// Runs the selected engine.
    ///
    /// Cancellation is scoped to this run: the engine polls a fresh
    /// child of [`VerifierOptions::cancel`], and a cancellation that
    /// interrupted this run is acknowledged (consumed) on the parent
    /// before returning — so the *next* run under the same options
    /// starts armed but not stillborn, instead of every subsequent
    /// engine reporting `Interrupted(cancelled)` forever.
    pub fn run(&self, engine: EngineId) -> VerificationResult {
        let run_cancel = self.options.cancel.child();
        let result = self
            .engine(engine)
            .run(&self.base_budget(), &run_cancel, &self.rec);
        if result.verdict == Verdict::Interrupted(InterruptReason::Cancelled) {
            self.options.cancel.acknowledge();
        }
        result
    }

    /// Shared instrumentation wrapping every engine body: scopes the
    /// recorder to `{engine}/`, attaches the cancel token to the budget,
    /// emits `run_start`/`run_end` events, and attributes counter deltas
    /// and phase times to the run's [`RunReport`]. The
    /// [`Engine`](crate::engine::Engine) impls call this; everything
    /// engine-specific happens inside `body`.
    pub(crate) fn instrumented(
        &self,
        engine: EngineId,
        budget: &ResourceBudget,
        cancel: &CancelToken,
        rec: &Recorder,
        body: impl FnOnce(&Recorder, &ResourceBudget) -> VerificationResult,
    ) -> VerificationResult {
        let start = Instant::now();
        // Metrics for this run land under `{engine}/`; the before/after
        // snapshot delta attributes counters to this run even when the
        // same Verifier runs the same engine repeatedly.
        let scope = rec.scoped(&format!("{engine}/"));
        let before = rec.snapshot();
        scope.event_with(
            "run_start",
            &[],
            &[("threads", self.options.threads as u64)],
        );
        let gov = budget.clone().with_cancel(cancel.clone());
        let mut result = {
            let span = rec.span(&format!("engine:{engine}"));
            if self.options.fail_point_panic == Some(engine) {
                panic!("fail point: injected panic in {engine}");
            }
            let r = body(&scope, &gov);
            span.arg_str("verdict", &r.verdict.to_string());
            r
        };
        if let Verdict::Interrupted(reason) = result.verdict {
            scope.counter(&format!("interrupted_{reason}")).incr();
        }
        result.stats.duration = start.elapsed();
        result.notes.extend(self.notes.iter().cloned());

        let after = rec.snapshot();
        let prefix = format!("{engine}/");
        let mut report = RunReport::empty(engine);
        report.verdict = result.verdict;
        report.duration = result.stats.duration;
        report.stats = result.stats.clone();
        let (phase_counters, counters): (Vec<_>, Vec<_>) = after
            .counter_deltas(&before, &prefix)
            .into_iter()
            .partition(|(n, _)| n.starts_with("phase/"));
        report.counters = counters;
        report.phases = phase_counters
            .into_iter()
            .map(|(n, v)| {
                let name = n
                    .strip_prefix("phase/")
                    .and_then(|r| r.strip_suffix("_us"))
                    .unwrap_or(&n)
                    .to_string();
                (name, v)
            })
            .collect();
        // Preparation is shared by every run of this verifier, so the
        // `plan` phase is claimed by the first report only — re-counting
        // it per engine would inflate aggregate phase breakdowns.
        if self.plan_us > 0 && !self.plan_attributed.swap(true, Ordering::Relaxed) {
            report.phases.push(("plan".to_string(), self.plan_us));
            report.phases.sort();
        }
        report.gauges = after
            .gauges
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|n| (n.to_string(), *v)))
            .collect();
        report.histograms = after
            .hists
            .iter()
            .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|n| (n.to_string(), v.clone())))
            .collect();
        report.cache_occupancy = std::mem::take(&mut result.report.cache_occupancy);
        report.env_thread_bound = result.env_thread_bound;
        report.witness = result.witness_lines.clone();
        report.notes = result.notes.clone();
        report.interrupted = result.verdict.interrupt_reason();
        if rec.is_enabled() {
            // The run_end event carries the deterministic verdict in
            // `fields`; durations, phase times, threads, and the stats
            // (fleet maxima are schedule-dependent) go in `volatile`.
            let mut vol: Vec<(String, u64)> = vec![
                (
                    "duration_us".to_string(),
                    report.duration.as_micros() as u64,
                ),
                ("threads".to_string(), self.options.threads as u64),
                ("states".to_string(), report.stats.states as u64),
                ("worlds".to_string(), report.stats.worlds as u64),
                ("guesses".to_string(), report.stats.guesses as u64),
            ];
            for (name, v) in &report.phases {
                vol.push((format!("phase/{name}_us"), *v));
            }
            let vol: Vec<(&str, u64)> = vol.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            scope.event_with(
                "run_end",
                &[("verdict", report.verdict.to_string().into())],
                &vol,
            );
        }
        result.report = report;
        result
    }

    /// [`Verifier::run`] with panic containment: a panicking engine (a
    /// bug, or the [`VerifierOptions::fail_point_panic`] hook) becomes an
    /// `Unknown` result carrying the panic message as a note, instead of
    /// unwinding through `--all-engines` or `parra batch` and killing the
    /// other runs.
    pub fn run_isolated(&self, engine: EngineId) -> VerificationResult {
        let run_cancel = self.options.cancel.child();
        let result = self.catch_panics(engine, &self.rec, || {
            self.engine(engine)
                .run(&self.base_budget(), &run_cancel, &self.rec)
        });
        if result.verdict == Verdict::Interrupted(InterruptReason::Cancelled) {
            self.options.cancel.acknowledge();
        }
        result
    }

    /// Panic containment shared by [`Verifier::run_isolated`] and the
    /// race jobs: a panic degrades to `Unknown` with a diagnostic note,
    /// and a degraded `run_end` event closes the `run_start` the panic
    /// orphaned — `parra report` run pairing and `--check-schema` stay
    /// sound even for a crashed engine.
    pub(crate) fn catch_panics(
        &self,
        engine: EngineId,
        rec: &Recorder,
        f: impl FnOnce() -> VerificationResult,
    ) -> VerificationResult {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                let note = format!("engine panicked: {msg}; verdict degraded to UNKNOWN");
                if rec.is_enabled() {
                    // The panic message may carry addresses or other
                    // nondeterminism, so only the fixed marker goes in
                    // the deterministic fields; the note has the text.
                    rec.scoped(&format!("{engine}/")).event_with(
                        "run_end",
                        &[
                            ("verdict", Verdict::Unknown.to_string().into()),
                            ("panic", 1u64.into()),
                        ],
                        &[],
                    );
                }
                let mut report = RunReport::empty(engine);
                report.notes = vec![note.clone()];
                VerificationResult {
                    verdict: Verdict::Unknown,
                    engine,
                    stats: Stats::default(),
                    env_thread_bound: None,
                    witness_lines: vec![],
                    notes: vec![note],
                    report,
                }
            }
        }
    }

    pub(crate) fn trivially_safe(&self, engine: EngineId) -> Option<VerificationResult> {
        if self.goal.had_assert {
            return None;
        }
        Some(VerificationResult {
            verdict: Verdict::Safe,
            engine,
            stats: Stats::default(),
            env_thread_bound: None,
            witness_lines: vec![],
            notes: vec!["program contains no assertions".into()],
            report: RunReport::empty(engine),
        })
    }

    /// Concretizes an `Unsafe` verdict: searches concrete-RA instances —
    /// up to the §4.3 thread bound of `result` (capped at `max_env`) —
    /// for an actual interleaving reaching the goal.
    ///
    /// This is the executable half of Theorem 3.4's soundness direction:
    /// an abstract bug replayed as a plain RA execution a user can read.
    /// Returns `None` if the verdict was not `Unsafe`, or if the bounded
    /// search cannot reproduce it within `max_env` threads and the default
    /// exploration limits (a larger instance or deeper search is needed).
    pub fn concretize(
        &self,
        result: &VerificationResult,
        max_env: usize,
    ) -> Option<ConcreteWitness> {
        if result.verdict != Verdict::Unsafe {
            return None;
        }
        let cap = result
            .env_thread_bound
            .map(|b| (b as usize).min(max_env))
            .unwrap_or(max_env);
        let sys = &self.goal.system;
        for n_env in 0..=cap {
            let explorer = Explorer::new(
                Instance::new(sys.clone(), n_env),
                self.options.concrete_limits,
            )
            .with_threads(self.options.threads);
            let report = explorer.run(Target::MessageGenerated(
                self.goal.goal_var,
                self.goal.goal_val,
            ));
            if report.outcome == ExploreOutcome::Unsafe {
                return Some(ConcreteWitness {
                    n_env,
                    steps: report
                        .witness
                        .unwrap_or_default()
                        .into_iter()
                        .map(|s| s.description)
                        .collect(),
                });
            }
        }
        None
    }

    /// [`Verifier::concretize`] with the env-thread cap chosen from the
    /// result itself: the §4.3 bound when the run derived one (clamped to
    /// [`MAX_CONCRETIZE_ENV`] — the bound is sufficient but can be
    /// astronomically large), else [`DEFAULT_CONCRETIZE_ENV`]. The outcome
    /// records which cap was searched so callers can say so.
    pub fn concretize_auto(&self, result: &VerificationResult) -> ConcretizeOutcome {
        let (cap, from_bound) = match result.env_thread_bound {
            Some(b) => ((b as usize).min(MAX_CONCRETIZE_ENV), true),
            None => (DEFAULT_CONCRETIZE_ENV, false),
        };
        ConcretizeOutcome {
            witness: self.concretize(result, cap),
            max_env_searched: cap,
            from_bound,
        }
    }
}

/// Default env-thread cap for concretization when no §4.3 bound is
/// available (e.g. a Datalog-engine verdict).
pub const DEFAULT_CONCRETIZE_ENV: usize = 6;

/// Hard cap on the concretization search even when the §4.3 bound is
/// larger: each extra env thread multiplies the concrete state space.
pub const MAX_CONCRETIZE_ENV: usize = 12;

/// The outcome of [`Verifier::concretize_auto`].
#[derive(Debug, Clone)]
pub struct ConcretizeOutcome {
    /// The concrete interleaving, when one was found.
    pub witness: Option<ConcreteWitness>,
    /// The env-thread cap that was searched (inclusive).
    pub max_env_searched: usize,
    /// Whether the cap came from the result's §4.3 `env_thread_bound`
    /// (clamped) rather than the default.
    pub from_bound: bool,
}

/// A concrete-RA interleaving reproducing an abstract `Unsafe` verdict.
#[derive(Debug, Clone)]
pub struct ConcreteWitness {
    /// The number of `env` threads in the exhibiting instance.
    pub n_env: usize,
    /// The interleaving, one rendered instruction per step.
    pub steps: Vec<String>,
}

/// Combines per-engine verdicts (`--all-engines`) into one.
///
/// An `Unsafe` from any engine is a sound witness and wins; `Safe` (only
/// the exact engines claim it) beats `Unknown`; all-`Unknown` stays
/// `Unknown` — a bounded or truncated run is never promoted to `Safe`.
/// `Interrupted` runs aggregate exactly like `Unknown`: an interrupted
/// engine neither contradicts a completed `Safe` nor weakens an `Unsafe`
/// witness, and a run consisting only of interrupted/unknown engines is
/// `Unknown`.
///
/// # Errors
///
/// A `Safe` next to an `Unsafe` is a contradiction — one of the exact
/// engines is wrong — and surfaces as an error naming the disagreeing
/// engines, never as a silent last-run-wins.
pub fn aggregate_verdicts(verdicts: &[(EngineId, Verdict)]) -> Result<Verdict, String> {
    let any_unsafe = verdicts.iter().any(|(_, v)| *v == Verdict::Unsafe);
    let any_safe = verdicts.iter().any(|(_, v)| *v == Verdict::Safe);
    if any_unsafe && any_safe {
        let list = verdicts
            .iter()
            .map(|(e, v)| format!("{e}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        return Err(format!(
            "engines disagree ({list}); this indicates a bug in an exact engine"
        ));
    }
    Ok(if any_unsafe {
        Verdict::Unsafe
    } else if any_safe {
        Verdict::Safe
    } else {
        Verdict::Unknown
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parra_program::builder::SystemBuilder;

    fn handshake(safe: bool) -> ParamSystem {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let y = b.var("y");
        let mut env = b.program("env");
        let r = env.reg("r");
        env.load(r, y).assume_eq(r, 1).store(x, 1);
        let env = env.finish();
        let mut d = b.program("d");
        let s = d.reg("s");
        if !safe {
            d.store(y, 1);
        }
        d.load(s, x).assume_eq(s, 1).assert_false();
        let d = d.finish();
        b.build(env, vec![d])
    }

    #[test]
    fn all_engines_on_unsafe_handshake() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r1 = v.run(EngineId::SimplifiedReach);
        assert_eq!(r1.verdict, Verdict::Unsafe);
        assert!(!r1.witness_lines.is_empty());
        assert!(r1.env_thread_bound.unwrap() >= 1);
        let r2 = v.run(EngineId::CacheDatalog);
        assert_eq!(r2.verdict, Verdict::Unsafe);
        assert!(r2.stats.guesses >= 1);
        assert!(r2.stats.cache_peak >= 1);
        let r3 = v.run(EngineId::BoundedConcrete);
        assert_eq!(r3.verdict, Verdict::Unsafe);
        let r4 = v.run(EngineId::LinearDatalog);
        assert_eq!(r4.verdict, Verdict::Unsafe);
        assert!(r4.stats.cache_peak >= 1);
        assert!(
            r4.notes.iter().any(|n| n.contains("certified under")),
            "missing certification note: {:?}",
            r4.notes
        );
        assert!(!r4.witness_lines.is_empty());
        assert!(r4.witness_lines[0].starts_with("infer "));
    }

    #[test]
    fn linear_engine_on_safe_handshake() {
        let sys = handshake(true);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::LinearDatalog);
        assert_eq!(r.verdict, Verdict::Safe);
        assert!(r.witness_lines.is_empty());
    }

    #[test]
    fn all_engines_on_safe_handshake() {
        let sys = handshake(true);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        assert_eq!(v.run(EngineId::SimplifiedReach).verdict, Verdict::Safe);
        assert_eq!(v.run(EngineId::CacheDatalog).verdict, Verdict::Safe);
        // The concrete engine can never prove parameterized safety.
        assert_eq!(v.run(EngineId::BoundedConcrete).verdict, Verdict::Unknown);
    }

    #[test]
    fn admission_deadline_overrides_relative_timeout() {
        // A host anchored the window at admission; an already-spent
        // absolute deadline must interrupt even under a generous
        // relative timeout.
        let sys = handshake(false);
        let opts = VerifierOptions {
            timeout: Some(Duration::from_secs(3600)),
            deadline_at: Some(Instant::now()),
            ..Default::default()
        };
        let v = Verifier::new(&sys, opts).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Interrupted(InterruptReason::Deadline));
    }

    #[test]
    fn rescoped_clone_shares_preparation_but_not_options() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let first = v.run(EngineId::SimplifiedReach);
        assert_eq!(first.verdict, Verdict::Unsafe);
        // The warm clone gets fresh options; its runs must not re-claim
        // the plan phase the first run already took.
        let warm = v.rescoped(VerifierOptions::default(), Recorder::disabled());
        let again = warm.run(EngineId::SimplifiedReach);
        assert_eq!(again.verdict, Verdict::Unsafe);
        assert!(
            !again.report.phases.iter().any(|(n, _)| n == "plan"),
            "rescoped run re-claimed the plan phase: {:?}",
            again.report.phases
        );
    }

    #[test]
    fn assert_free_system_trivially_safe() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 1);
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Safe);
        assert!(r.notes.iter().any(|n| n.contains("no assertions")));
    }

    #[test]
    fn env_cas_rejected() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let mut env = b.program("env");
        env.cas(x, 0, 1).assert_false();
        let env = env.finish();
        let sys = b.build(env, vec![]);
        let err = Verifier::new(&sys, VerifierOptions::default()).unwrap_err();
        assert!(matches!(err, VerifierError::Undecidable(_)));
    }

    #[test]
    fn looping_dis_needs_unrolling() {
        let mut b = SystemBuilder::new(2);
        let x = b.var("x");
        let env = {
            let mut p = b.program("env");
            p.skip();
            p.finish()
        };
        let mut d = b.program("d");
        let r = d.reg("r");
        d.star(|p| {
            p.load(r, x);
        });
        d.assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let err = Verifier::new(&sys, VerifierOptions::default()).unwrap_err();
        assert_eq!(err, VerifierError::NeedsUnrolling);
        // With unrolling it becomes checkable (and trivially unsafe: the
        // assert is reachable by exiting the loop immediately).
        let opts = VerifierOptions {
            unroll_dis: Some(2),
            ..Default::default()
        };
        let v = Verifier::new(&sys, opts).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Unsafe);
        assert!(r.notes.iter().any(|n| n.contains("unrolled")));
    }

    #[test]
    fn concretize_reproduces_abstract_bugs() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let abstract_result = v.run(EngineId::SimplifiedReach);
        assert_eq!(abstract_result.verdict, Verdict::Unsafe);
        let concrete = v
            .concretize(&abstract_result, 4)
            .expect("the bug concretizes");
        assert!(concrete.n_env >= 1);
        assert!(concrete.steps.iter().any(|s| s.contains("$goal := 1")));
        // Safe results do not concretize.
        let safe_sys = handshake(true);
        let vs = Verifier::new(&safe_sys, VerifierOptions::default()).unwrap();
        let safe = vs.run(EngineId::SimplifiedReach);
        assert!(vs.concretize(&safe, 4).is_none());
    }

    #[test]
    fn run_report_mirrors_stats_and_records_metrics() {
        let sys = handshake(false);
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let v = Verifier::new_with_recorder(&sys, VerifierOptions::default(), rec.clone()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.report.verdict, r.verdict);
        assert_eq!(r.report.stats.states, r.stats.states);
        assert_eq!(r.report.witness, r.witness_lines);
        assert!(
            r.report
                .counters
                .iter()
                .any(|(n, v)| n == "worlds_explored" && *v > 0),
            "simplified-reach counters missing: {:?}",
            r.report.counters
        );
        assert!(r.report.gauges.iter().any(|(n, _)| n == "env_msgs"));
        // The datalog engine attaches the Lemma 4.6 occupancy series.
        let r2 = v.run(EngineId::CacheDatalog);
        assert_eq!(r2.verdict, Verdict::Unsafe);
        assert!(!r2.report.cache_occupancy.is_empty());
        assert_eq!(
            r2.report.cache_occupancy.iter().copied().max().unwrap(),
            r2.stats.cache_peak as u64
        );
        assert!(r2
            .report
            .counters
            .iter()
            .any(|(n, v)| n == "guesses_enumerated" && *v >= 1));
        // The spans include the engine runs and the prep phases.
        let spans = rec.spans();
        assert!(spans.iter().any(|s| s.name == "classify"));
        assert!(spans.iter().any(|s| s.name == "engine:simplified-reach"));
    }

    #[test]
    fn run_report_json_roundtrips() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::CacheDatalog);
        let json = parra_obs::json::parse(&r.report.to_json()).expect("valid JSON");
        assert_eq!(json.get("engine").unwrap().as_str(), Some("cache-datalog"));
        assert_eq!(json.get("verdict").unwrap().as_str(), Some("UNSAFE"));
        let stats = json.get("stats").unwrap();
        assert_eq!(
            stats.get("guesses").unwrap().as_u64(),
            Some(r.stats.guesses as u64)
        );
        assert_eq!(
            stats.get("cache_peak").unwrap().as_u64(),
            Some(r.stats.cache_peak as u64)
        );
        let occ = json.get("cache_occupancy").unwrap().as_arr().unwrap();
        assert_eq!(occ.len(), r.report.cache_occupancy.len());
        // With a disabled recorder the metric maps are empty but present.
        assert_eq!(
            json.get("counters").unwrap(),
            &parra_obs::json::Value::Obj(Default::default())
        );
    }

    /// EngineId agreement on a CAS-heavy example.
    #[test]
    fn engines_agree_on_cas_example() {
        let mut b = SystemBuilder::new(3);
        let x = b.var("x");
        let mut env = b.program("env");
        env.store(x, 2);
        let env = env.finish();
        let mut d = b.program("d");
        let r = d.reg("r");
        d.cas(x, 0, 1).load(r, x).assume_eq(r, 2).assert_false();
        let d = d.finish();
        let sys = b.build(env, vec![d]);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r1 = v.run(EngineId::SimplifiedReach);
        let r2 = v.run(EngineId::CacheDatalog);
        assert_eq!(r1.verdict, Verdict::Unsafe);
        assert_eq!(r2.verdict, Verdict::Unsafe);
    }

    /// Soundness of reporting: a bounded/truncated run maps to `Unknown`,
    /// never `Safe` — in the verdict, the `RunReport`, and the notes.
    #[test]
    fn truncated_runs_report_unknown_not_safe() {
        let sys = handshake(true); // genuinely safe: any Safe claim would be a lie under bounds
        let tight = VerifierOptions {
            reach_limits: ReachLimits {
                max_states: 1,
                max_env_size: 200_000,
                max_worlds: 256,
            },
            ..Default::default()
        };
        let v = Verifier::new(&sys, tight).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.report.verdict, Verdict::Unknown);
        assert!(r.notes.iter().any(|n| n.contains("limits hit")));

        // The concrete engine under a depth bound that is hit: bounded
        // safety is `Unknown`, with a bounds-hit note.
        let shallow = VerifierOptions {
            concrete_limits: ExploreLimits {
                max_depth: 1,
                max_states: 200_000,
            },
            ..Default::default()
        };
        let v = Verifier::new(&sys, shallow).unwrap();
        let r = v.run(EngineId::BoundedConcrete);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.report.verdict, Verdict::Unknown);
        assert!(r.notes.iter().any(|n| n.contains("bounds hit")));
    }

    #[test]
    fn aggregation_unsafe_wins_and_unknown_never_promotes() {
        use EngineId::*;
        use Verdict::*;
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, Unsafe), (BoundedConcrete, Unknown)]),
            Ok(Unsafe)
        );
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, Safe), (BoundedConcrete, Unknown)]),
            Ok(Safe)
        );
        // Bounded-safe results (Unknown) never aggregate to Safe.
        assert_eq!(
            aggregate_verdicts(&[(BoundedConcrete, Unknown), (CacheDatalog, Unknown)]),
            Ok(Unknown)
        );
        assert_eq!(aggregate_verdicts(&[]), Ok(Unknown));
        let err =
            aggregate_verdicts(&[(SimplifiedReach, Safe), (CacheDatalog, Unsafe)]).unwrap_err();
        assert!(err.contains("disagree"));
        assert!(err.contains("simplified-reach=SAFE"));
        assert!(err.contains("cache-datalog=UNSAFE"));
    }

    /// A spent deadline degrades every engine to `Interrupted(Deadline)`
    /// — never `Safe` — with the reason mirrored in the report and notes.
    #[test]
    fn zero_timeout_interrupts_every_engine() {
        let sys = handshake(true); // genuinely safe: Safe here would be a lie
        let opts = VerifierOptions {
            timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let v = Verifier::new_with_recorder(&sys, opts, rec.clone()).unwrap();
        for engine in [
            EngineId::SimplifiedReach,
            EngineId::CacheDatalog,
            EngineId::LinearDatalog,
            EngineId::BoundedConcrete,
        ] {
            let r = v.run(engine);
            assert_eq!(
                r.verdict,
                Verdict::Interrupted(InterruptReason::Deadline),
                "{engine}"
            );
            assert!(!r.verdict.is_decided());
            assert_eq!(r.report.interrupted, Some(InterruptReason::Deadline));
            assert!(
                r.notes.iter().any(|n| n.contains("interrupted (deadline)")),
                "{engine} notes: {:?}",
                r.notes
            );
            let json = r.report.to_json();
            assert!(json.contains("\"interrupted\":\"deadline\""), "{json}");
        }
        let snap = rec.snapshot();
        let hits: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.ends_with("/interrupted_deadline"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(hits, 4, "counters: {:?}", snap.counters);
    }

    /// Regression: a cancellation that interrupts engine A must not leak
    /// into engine B's run. The token used to be a single shared flag
    /// that was never re-armed, so after one cancelled run every
    /// subsequent engine under `--all-engines` (or the next file in
    /// `parra batch`) was instantly `Interrupted(cancelled)`.
    #[test]
    fn cancelling_engine_a_does_not_starve_engine_b() {
        let cancel = CancelToken::new();
        let opts = VerifierOptions {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), opts).unwrap();
        cancel.cancel();
        let a = v.run(EngineId::SimplifiedReach);
        assert_eq!(a.verdict, Verdict::Interrupted(InterruptReason::Cancelled));
        // The run consumed the request: engine B gets a clean slate.
        let b = v.run(EngineId::CacheDatalog);
        assert_eq!(
            b.verdict,
            Verdict::Unsafe,
            "engine B was starved: {:?}",
            b.notes
        );
        // And the same holds through the isolated path.
        cancel.cancel();
        let c = v.run_isolated(EngineId::SimplifiedReach);
        assert_eq!(c.verdict, Verdict::Interrupted(InterruptReason::Cancelled));
        let d = v.run_isolated(EngineId::LinearDatalog);
        assert_eq!(d.verdict, Verdict::Unsafe);
    }

    /// Regression: shared preparation time (`plan`) used to be pushed
    /// into every report's phases, so aggregate phase breakdowns counted
    /// it once per engine; it belongs to exactly one report.
    #[test]
    fn plan_time_is_attributed_to_one_report_only() {
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let v = Verifier::new_with_recorder(&handshake(false), VerifierOptions::default(), rec)
            .unwrap();
        let has_plan = |r: &VerificationResult| r.report.phases.iter().any(|(n, _)| n == "plan");
        let first = v.run(EngineId::SimplifiedReach);
        assert!(
            has_plan(&first),
            "first report should carry the plan phase: {:?}",
            first.report.phases
        );
        for engine in [
            EngineId::CacheDatalog,
            EngineId::LinearDatalog,
            EngineId::SimplifiedReach,
        ] {
            let later = v.run(engine);
            assert!(
                !has_plan(&later),
                "{engine} re-counted the shared plan time: {:?}",
                later.report.phases
            );
        }
    }

    /// Regression: a panicking engine used to leave an orphan
    /// `run_start` in the flight-recorder log; the degraded result must
    /// close it with a `run_end` (verdict UNKNOWN, panic marker) so
    /// `parra report` pairing and `--check-schema` stay sound.
    #[test]
    fn panicking_engine_still_emits_run_end_event() {
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let opts = VerifierOptions {
            fail_point_panic: Some(EngineId::SimplifiedReach),
            ..Default::default()
        };
        let v = Verifier::new_with_recorder(&handshake(false), opts, rec.clone()).unwrap();
        let r = v.run_isolated(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Unknown);
        let events = rec.events();
        let in_scope = |kind: &str| {
            events
                .iter()
                .filter(|e| e.scope == "simplified-reach/" && e.kind == kind)
                .count()
        };
        assert_eq!(in_scope("run_start"), 1);
        assert_eq!(in_scope("run_end"), 1, "panic orphaned the run_start");
        let end = events
            .iter()
            .find(|e| e.scope == "simplified-reach/" && e.kind == "run_end")
            .unwrap();
        assert!(
            end.fields
                .iter()
                .any(|(k, v)| k == "verdict" && *v == parra_obs::EventValue::Str("UNKNOWN".into())),
            "degraded run_end fields: {:?}",
            end.fields
        );
        assert!(
            end.fields.iter().any(|(k, _)| k == "panic"),
            "degraded run_end should carry the panic marker: {:?}",
            end.fields
        );
    }

    /// A pre-cancelled token interrupts with `Cancelled`, and a witness
    /// found before the budget trips still wins (interruption never
    /// weakens a sound `Unsafe`).
    #[test]
    fn cancelled_token_interrupts_and_unsafe_still_decides_without_budget() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let opts = VerifierOptions {
            cancel,
            ..Default::default()
        };
        let v = Verifier::new(&handshake(true), opts).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Interrupted(InterruptReason::Cancelled));

        // Generous limits never change a decided verdict.
        let generous = VerifierOptions {
            timeout: Some(Duration::from_secs(3600)),
            memory_budget: Some(usize::MAX),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), generous).unwrap();
        assert_eq!(v.run(EngineId::SimplifiedReach).verdict, Verdict::Unsafe);
    }

    /// A completed run under generous limits is byte-identical (modulo
    /// wall-clock durations) to an unlimited run, at every thread count.
    #[test]
    fn generous_budget_reports_match_unlimited_byte_for_byte() {
        fn canonical_json(mut report: RunReport) -> String {
            report.duration = Duration::ZERO;
            report.stats.duration = Duration::ZERO;
            report.to_json()
        }
        for safe in [false, true] {
            let sys = handshake(safe);
            for threads in [1, 4] {
                let unlimited = Verifier::new(
                    &sys,
                    VerifierOptions {
                        threads,
                        ..Default::default()
                    },
                )
                .unwrap();
                let governed = Verifier::new(
                    &sys,
                    VerifierOptions {
                        threads,
                        timeout: Some(Duration::from_secs(3600)),
                        memory_budget: Some(usize::MAX),
                        ..Default::default()
                    },
                )
                .unwrap();
                for engine in [EngineId::SimplifiedReach, EngineId::BoundedConcrete] {
                    assert_eq!(
                        canonical_json(unlimited.run(engine).report),
                        canonical_json(governed.run(engine).report),
                        "{engine}, safe={safe}, threads={threads}"
                    );
                }
            }
        }
    }

    /// `run_isolated` turns an engine panic into `Unknown` with a
    /// diagnostic note instead of tearing the process down.
    #[test]
    fn engine_panic_degrades_to_unknown() {
        let opts = VerifierOptions {
            fail_point_panic: Some(EngineId::SimplifiedReach),
            ..Default::default()
        };
        let v = Verifier::new(&handshake(false), opts).unwrap();
        let r = v.run_isolated(EngineId::SimplifiedReach);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(
            r.notes.iter().any(|n| n.contains("engine panicked")),
            "notes: {:?}",
            r.notes
        );
        assert!(r.report.notes.iter().any(|n| n.contains("engine panicked")));
        // Other engines are unaffected by the fail point.
        assert_eq!(
            v.run_isolated(EngineId::CacheDatalog).verdict,
            Verdict::Unsafe
        );
    }

    /// Interrupted aggregates exactly like Unknown: Unsafe wins, Safe is
    /// reported when some engine decided it, and interrupted-only runs
    /// stay undecided.
    #[test]
    fn aggregation_interrupted_never_promotes_to_safe() {
        use EngineId::*;
        use Verdict::*;
        let deadline = Interrupted(InterruptReason::Deadline);
        let memory = Interrupted(InterruptReason::Memory);
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, deadline), (CacheDatalog, Unsafe)]),
            Ok(Unsafe)
        );
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, Safe), (BoundedConcrete, deadline)]),
            Ok(Safe)
        );
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, deadline), (CacheDatalog, memory)]),
            Ok(Unknown)
        );
        assert_eq!(
            aggregate_verdicts(&[(SimplifiedReach, deadline), (BoundedConcrete, Unknown)]),
            Ok(Unknown)
        );
    }

    /// `concretize_auto` seeds its env-thread cap from the §4.3 bound
    /// when the result carries one, and falls back to the default cap.
    #[test]
    fn concretize_auto_seeds_cap_from_cost_bound() {
        let sys = handshake(false);
        let v = Verifier::new(&sys, VerifierOptions::default()).unwrap();
        let r = v.run(EngineId::SimplifiedReach);
        let bound = r.env_thread_bound.expect("unsafe run carries the bound") as usize;
        let out = v.concretize_auto(&r);
        assert!(out.from_bound);
        assert_eq!(out.max_env_searched, bound.min(MAX_CONCRETIZE_ENV));
        let w = out.witness.expect("the bug concretizes");
        assert!(w.n_env <= out.max_env_searched);

        // Without a bound (datalog verdicts carry none) the default cap
        // applies.
        let r2 = v.run(EngineId::CacheDatalog);
        assert_eq!(r2.verdict, Verdict::Unsafe);
        if r2.env_thread_bound.is_none() {
            let out2 = v.concretize_auto(&r2);
            assert!(!out2.from_bound);
            assert_eq!(out2.max_env_searched, DEFAULT_CONCRETIZE_ENV);
        }
    }

    /// The thread count is plumbed through every engine and never changes
    /// a verdict or the deterministic stats.
    #[test]
    fn verifier_reports_identical_across_thread_counts() {
        for safe in [false, true] {
            let sys = handshake(safe);
            let base = Verifier::new(
                &sys,
                VerifierOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            let par = Verifier::new(
                &sys,
                VerifierOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            for engine in [EngineId::SimplifiedReach, EngineId::BoundedConcrete] {
                let a = base.run(engine);
                let b = par.run(engine);
                assert_eq!(a.verdict, b.verdict, "{engine}, safe={safe}");
                assert_eq!(a.stats.states, b.stats.states, "{engine}, safe={safe}");
                assert_eq!(a.stats.worlds, b.stats.worlds, "{engine}, safe={safe}");
                assert_eq!(a.witness_lines, b.witness_lines, "{engine}, safe={safe}");
                assert_eq!(a.env_thread_bound, b.env_thread_bound, "{engine}");
            }
            // The datalog fleet races guesses, so only the verdict is
            // pinned there.
            assert_eq!(
                base.run(EngineId::CacheDatalog).verdict,
                par.run(EngineId::CacheDatalog).verdict,
                "safe={safe}"
            );
        }
    }
}
