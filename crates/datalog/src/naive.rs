//! The reference evaluator: unindexed semi-naive evaluation.
//!
//! This is the pre-rewrite evaluation engine, kept verbatim as a simple,
//! obviously-correct oracle. The optimized [`Evaluator`](crate::eval::Evaluator)
//! is pinned against it by the `eval-agree` fuzz oracle and the before/after
//! benchmarks: joins scan the whole per-predicate bucket, every derived
//! atom is cloned into a `HashMap`, and provenance is always recorded.
//! It should never be used on a hot path.

use crate::ast::{Atom, Const, GroundAtom, PredId, Program, Rule, Term};
use parra_limits::{InterruptReason, ResourceBudget};
use parra_obs::{Counter, Recorder};
use std::collections::{HashMap, VecDeque};

/// The set of derived ground atoms, with one recorded derivation each.
#[derive(Debug, Clone, Default)]
pub struct NaiveDatabase {
    /// Atom → its index in `atoms`.
    index: HashMap<GroundAtom, usize>,
    /// All derived atoms in derivation order.
    atoms: Vec<GroundAtom>,
    /// For each atom: the rule index and the database indices of the body
    /// atoms used to derive it first.
    derivations: Vec<(usize, Vec<usize>)>,
    /// Per-predicate index into `atoms`.
    by_pred: HashMap<PredId, Vec<usize>>,
    /// Set when the governor stopped evaluation before the fixpoint.
    interrupted: Option<InterruptReason>,
}

impl NaiveDatabase {
    /// Whether `g` was derived.
    pub fn contains(&self, g: &GroundAtom) -> bool {
        self.index.contains_key(g)
    }

    /// Number of derived atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether nothing was derived.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The derived atoms in derivation order.
    pub fn atoms(&self) -> &[GroundAtom] {
        &self.atoms
    }

    /// Why the governor stopped evaluation early, if it did. A `Some`
    /// database may be missing derivable atoms.
    pub fn interrupted(&self) -> Option<InterruptReason> {
        self.interrupted
    }

    /// The recorded derivation of the atom at `idx`.
    pub fn derivation(&self, idx: usize) -> (usize, &[usize]) {
        let (r, ref body) = self.derivations[idx];
        (r, body)
    }

    fn insert(&mut self, g: GroundAtom, rule: usize, body: Vec<usize>) -> Option<usize> {
        if self.index.contains_key(&g) {
            return None;
        }
        let idx = self.atoms.len();
        self.index.insert(g.clone(), idx);
        self.by_pred.entry(g.pred).or_default().push(idx);
        self.atoms.push(g);
        self.derivations.push((rule, body));
        Some(idx)
    }
}

/// How many delta-queue pops the naive evaluator processes between
/// governor checks (it is unindexed, so even one pop can be slow — this
/// keeps check overhead negligible while still bounding the lag).
pub const GOV_CHECK_EVERY: u32 = 256;

/// A variable substitution during rule matching.
type Subst = HashMap<u32, Const>;

fn match_atom(pattern: &Atom, ground: &GroundAtom, subst: &mut Subst) -> bool {
    if pattern.pred != ground.pred || pattern.terms.len() != ground.args.len() {
        return false;
    }
    let mut added: Vec<u32> = Vec::new();
    for (t, c) in pattern.terms.iter().zip(&ground.args) {
        let ok = match t {
            Term::Const(k) => k == c,
            Term::Var(v) => match subst.get(v) {
                Some(bound) => bound == c,
                None => {
                    subst.insert(*v, *c);
                    added.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in added {
                subst.remove(&v);
            }
            return false;
        }
    }
    true
}

fn instantiate(head: &Atom, subst: &Subst) -> GroundAtom {
    GroundAtom {
        pred: head.pred,
        args: head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *subst.get(v).expect("safe rule: head var bound"),
            })
            .collect(),
    }
}

/// The reference bottom-up evaluator.
///
/// # Example
///
/// ```
/// use parra_datalog::naive::NaiveEvaluator;
/// use parra_datalog::parser::{parse_ground_atom, parse_program};
///
/// let mut prog = parse_program(
///     "edge(a, b). edge(b, c).
///      path(X, Y) :- edge(X, Y).
///      path(X, Z) :- path(X, Y), edge(Y, Z).",
/// )?;
/// let goal = parse_ground_atom(&mut prog, "path(a, c)")?;
/// assert!(NaiveEvaluator::new(&prog).query(&goal));
/// # Ok::<(), parra_datalog::parser::ParseError>(())
/// ```
#[derive(Debug)]
pub struct NaiveEvaluator<'p> {
    program: &'p Program,
    rec: Recorder,
    gov: ResourceBudget,
}

impl<'p> NaiveEvaluator<'p> {
    /// Creates a reference evaluator for `program`.
    pub fn new(program: &'p Program) -> NaiveEvaluator<'p> {
        NaiveEvaluator {
            program,
            rec: Recorder::disabled(),
            gov: ResourceBudget::unlimited(),
        }
    }

    /// The same evaluator reporting metrics through `rec`, under the same
    /// names as the optimized [`Evaluator`](crate::eval::Evaluator) —
    /// `rules_fired`, `join_attempts`, `atoms/{pred}`,
    /// `eval_interrupted_{reason}`, and the `eval.run` span — so traces
    /// from both engines line up in reports. (The optimized engine
    /// additionally reports index counters this engine has no analogue
    /// for: `index_builds`, `index_hits`, `arena_atoms`, `arena_bytes`.)
    pub fn with_recorder(mut self, rec: Recorder) -> NaiveEvaluator<'p> {
        self.rec = rec;
        self
    }

    /// The same evaluator governed by `gov`, checked every
    /// [`GOV_CHECK_EVERY`] delta atoms (this engine has no natural round
    /// boundary). An exhausted budget marks the returned database
    /// [`NaiveDatabase::interrupted`].
    pub fn with_governor(mut self, gov: ResourceBudget) -> NaiveEvaluator<'p> {
        self.gov = gov;
        self
    }

    /// Computes the least model, stopping early if `stop_at` is derived.
    pub fn run_until(&self, stop_at: Option<&GroundAtom>) -> NaiveDatabase {
        let _span = self.rec.span_debug("eval.run");
        let db = self.run_until_inner(stop_at);
        if self.rec.is_enabled() {
            for p in self.program.predicates() {
                let n = db.by_pred.get(&p).map_or(0, Vec::len) as u64;
                if n > 0 {
                    self.rec
                        .counter(&format!("atoms/{}", self.program.pred_name(p)))
                        .add(n);
                }
            }
        }
        db
    }

    fn run_until_inner(&self, stop_at: Option<&GroundAtom>) -> NaiveDatabase {
        let fired = self.rec.counter("rules_fired");
        let joins = self.rec.counter("join_attempts");
        let mut db = NaiveDatabase::default();
        let mut queue: VecDeque<usize> = VecDeque::new();

        // Facts.
        for (ri, rule) in self.program.rules().iter().enumerate() {
            if rule.is_fact() {
                let g = rule.head.to_ground();
                if let Some(idx) = db.insert(g, ri, Vec::new()) {
                    fired.incr();
                    queue.push_back(idx);
                }
            }
        }
        if let Some(goal) = stop_at {
            if db.contains(goal) {
                return db;
            }
        }

        // Index rules by the predicates occurring in their bodies.
        let mut by_body_pred: HashMap<PredId, Vec<(usize, usize)>> = HashMap::new();
        for (ri, rule) in self.program.rules().iter().enumerate() {
            for (bi, atom) in rule.body.iter().enumerate() {
                by_body_pred.entry(atom.pred).or_default().push((ri, bi));
            }
        }

        // Semi-naive: each new atom is matched as the "delta" occurrence.
        // The governor is checked up-front (so an already-exhausted budget
        // interrupts even the smallest program) and then periodically.
        if let Err(reason) = self.gov.check() {
            self.note_interrupt(reason);
            db.interrupted = Some(reason);
            return db;
        }
        let mut pops: u32 = 0;
        while let Some(new_idx) = queue.pop_front() {
            pops = pops.wrapping_add(1);
            if pops.is_multiple_of(GOV_CHECK_EVERY) {
                if let Err(reason) = self.gov.check() {
                    self.note_interrupt(reason);
                    db.interrupted = Some(reason);
                    return db;
                }
                // This engine is sequential, so pop order — and hence this
                // event stream — is deterministic by construction.
                if self.rec.is_enabled() {
                    self.rec.event_with(
                        "round",
                        &[
                            ("round", u64::from(pops / GOV_CHECK_EVERY - 1).into()),
                            ("delta", queue.len().into()),
                            ("atoms", db.len().into()),
                        ],
                        &self.gov.headroom().volatile_fields(),
                    );
                }
            }
            let new_atom = db.atoms[new_idx].clone();
            let Some(uses) = by_body_pred.get(&new_atom.pred) else {
                continue;
            };
            for &(ri, bi) in uses.clone().iter() {
                let rule = &self.program.rules()[ri];
                let mut subst = Subst::new();
                joins.incr();
                if !match_atom(&rule.body[bi], &new_atom, &mut subst) {
                    continue;
                }
                let mut used = vec![0usize; rule.body.len()];
                used[bi] = new_idx;
                if self.join_rest(
                    rule, ri, bi, 0, &mut subst, &mut used, &mut db, &mut queue, &fired,
                ) && stop_at.map(|g| db.contains(g)).unwrap_or(false)
                {
                    return db;
                }
            }
            if let Some(goal) = stop_at {
                if db.contains(goal) {
                    return db;
                }
            }
        }
        db
    }

    /// Computes the full least model.
    pub fn run(&self) -> NaiveDatabase {
        self.run_until(None)
    }

    /// `Prog ⊢ g`: query evaluation with early exit.
    pub fn query(&self, goal: &GroundAtom) -> bool {
        self.run_until(Some(goal)).contains(goal)
    }

    fn note_interrupt(&self, reason: InterruptReason) {
        self.rec
            .counter(&format!("eval_interrupted_{}", reason.as_str()))
            .incr();
    }

    /// Joins the remaining body atoms (all but `skip`) against the
    /// database; returns true if anything was inserted.
    #[allow(clippy::too_many_arguments)]
    fn join_rest(
        &self,
        rule: &Rule,
        ri: usize,
        skip: usize,
        from: usize,
        subst: &mut Subst,
        used: &mut Vec<usize>,
        db: &mut NaiveDatabase,
        queue: &mut VecDeque<usize>,
        fired: &Counter,
    ) -> bool {
        let mut next = from;
        if next == skip {
            next += 1;
        }
        if next >= rule.body.len() {
            let g = instantiate(&rule.head, subst);
            if let Some(idx) = db.insert(g, ri, used.clone()) {
                fired.incr();
                queue.push_back(idx);
                return true;
            }
            return false;
        }
        let pattern = &rule.body[next];
        // Snapshot of the per-predicate candidates: atoms added during
        // this join are matched later via their own delta turn.
        let candidates: Vec<usize> = db.by_pred.get(&pattern.pred).cloned().unwrap_or_default();
        let mut inserted = false;
        for idx in candidates {
            let ground = db.atoms[idx].clone();
            let before: Vec<(u32, Option<Const>)> = pattern
                .variables()
                .into_iter()
                .map(|v| (v, subst.get(&v).copied()))
                .collect();
            if match_atom(pattern, &ground, subst) {
                used[next] = idx;
                if self.join_rest(rule, ri, skip, next + 1, subst, used, db, queue, fired) {
                    inserted = true;
                }
            }
            // Restore bindings introduced by this match.
            for (v, old) in before {
                match old {
                    Some(c) => {
                        subst.insert(v, c);
                    }
                    None => {
                        subst.remove(&v);
                    }
                }
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> (Program, PredId, Vec<Const>) {
        let mut p = Program::new();
        let edge = p.predicate("edge", 2);
        let path = p.predicate("path", 2);
        let names = ["a", "b", "c", "d"];
        let consts: Vec<Const> = names.iter().map(|n| p.constant(n)).collect();
        for w in consts.windows(2) {
            p.fact(edge, vec![w[0], w[1]]).unwrap();
        }
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
        )
        .unwrap();
        p.rule(
            Atom::new(path, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(path, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
            ],
        )
        .unwrap();
        (p, path, consts)
    }

    #[test]
    fn transitive_closure() {
        let (p, path, c) = tc_program();
        let db = NaiveEvaluator::new(&p).run();
        let n_paths = db.atoms().iter().filter(|a| a.pred == path).count();
        assert_eq!(n_paths, 6);
        assert!(db.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
        assert!(!db.contains(&GroundAtom::new(path, vec![c[3], c[0]])));
    }

    #[test]
    fn query_early_exit() {
        let (p, path, c) = tc_program();
        let goal = GroundAtom::new(path, vec![c[0], c[1]]);
        assert!(NaiveEvaluator::new(&p).query(&goal));
        let bad = GroundAtom::new(path, vec![c[1], c[0]]);
        assert!(!NaiveEvaluator::new(&p).query(&bad));
    }

    #[test]
    fn exhausted_deadline_interrupts_before_fixpoint() {
        let (p, path, c) = tc_program();
        let gov = ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        let db = NaiveEvaluator::new(&p).with_governor(gov).run();
        assert_eq!(db.interrupted(), Some(InterruptReason::Deadline));
        // The transitive closure was not reached: no non-fact paths.
        assert!(!db.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
    }

    #[test]
    fn generous_budget_reaches_same_fixpoint() {
        let (p, path, c) = tc_program();
        let gov = ResourceBudget::unlimited().with_deadline(std::time::Duration::from_secs(3600));
        let base = NaiveEvaluator::new(&p).run();
        let governed = NaiveEvaluator::new(&p).with_governor(gov).run();
        assert_eq!(governed.interrupted(), None);
        assert_eq!(governed.len(), base.len());
        assert!(governed.contains(&GroundAtom::new(path, vec![c[0], c[3]])));
    }

    #[test]
    fn metric_and_span_names_match_the_optimized_evaluator() {
        use crate::eval::Evaluator;
        use parra_obs::Level;

        let (p, _path, _c) = tc_program();
        let naive_rec = Recorder::enabled(Level::Debug);
        let eval_rec = Recorder::enabled(Level::Debug);
        NaiveEvaluator::new(&p)
            .with_recorder(naive_rec.clone())
            .run();
        Evaluator::new(&p).with_recorder(eval_rec.clone()).run();

        let ns = naive_rec.snapshot();
        let es = eval_rec.snapshot();
        // Every counter the naive engine reports exists under the same
        // name in the optimized engine's snapshot.
        for name in ns.counters.keys() {
            assert!(es.counters.contains_key(name), "eval missing {name}");
        }
        // The optimized engine's extras are exactly its index/arena
        // machinery, which the naive engine has no analogue for.
        // (`phase/*` counters are the PhaseTimer's — reports pull them
        // out as phase attributions, not evaluation metrics.)
        let extras: Vec<&str> = es
            .counters
            .keys()
            .filter(|n| !ns.counters.contains_key(*n) && !n.starts_with("phase/"))
            .map(String::as_str)
            .collect();
        assert_eq!(extras, vec!["index_builds", "index_hits"]);
        // Both engines define "fired" as a successful insert, so the
        // values agree exactly — as do the per-predicate atom counts,
        // since both reach the same fixpoint.
        assert_eq!(ns.counters["rules_fired"], es.counters["rules_fired"]);
        assert_eq!(ns.counters["atoms/path"], es.counters["atoms/path"]);
        assert_eq!(ns.counters["atoms/edge"], es.counters["atoms/edge"]);
        assert!(ns.counters["join_attempts"] > 0);
        assert!(es.counters["join_attempts"] > 0);
        // Both wrap evaluation in the same debug span.
        for rec in [&naive_rec, &eval_rec] {
            let spans = rec.spans();
            assert!(
                spans.iter().any(|s| s.name == "eval.run"),
                "missing eval.run span"
            );
        }
    }

    #[test]
    fn interrupt_reason_counter_matches_eval_naming() {
        let (p, _path, _c) = tc_program();
        let rec = Recorder::enabled(parra_obs::Level::Summary);
        let gov = ResourceBudget::unlimited().with_deadline(std::time::Duration::ZERO);
        NaiveEvaluator::new(&p)
            .with_recorder(rec.clone())
            .with_governor(gov)
            .run();
        assert_eq!(rec.snapshot().counters["eval_interrupted_deadline"], 1);
    }

    #[test]
    fn derivations_always_recorded() {
        let (p, path, c) = tc_program();
        let db = NaiveEvaluator::new(&p).run();
        let goal = GroundAtom::new(path, vec![c[0], c[3]]);
        let idx = db.atoms().iter().position(|a| *a == goal).expect("derived");
        let (_rule, body) = db.derivation(idx);
        assert!(!body.is_empty());
        let (_, fact_body) = db.derivation(0);
        assert!(fact_body.is_empty());
    }
}
